//! Offline stand-in for `parking_lot` built on `std::sync` (non-poisoning
//! facade: panics while holding a lock abort the test anyway).

use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

//! No-op derive macros: the stub `serde` crate blanket-implements its
//! traits, so the derives only need to swallow the attribute.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for `crossbeam` (scoped threads + mpmc-ish channels)
//! built on `std`. Covers the API subset this repo uses; `spawn` closures
//! receive `()` instead of `&Scope` (every caller ignores the argument).

pub mod thread {
    use std::any::Any;
    use std::thread as sthread;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope sthread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: sthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(sthread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    #[derive(Debug)]
    pub struct RecvError;

    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            guard.try_recv().map_err(|_| RecvError)
        }
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        bounded(1 << 20)
    }
}

//! Offline stand-in for `serde_json`: compiles callers, emits placeholders.

use std::fmt;

#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: serialization unavailable offline")
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("{}".to_string())
}

pub fn to_string_pretty<T: ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("{}".to_string())
}

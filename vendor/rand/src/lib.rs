//! Offline stand-in for the `rand` crate (API subset used by this repo).
//! Functionally a real PRNG (xoshiro256**), deterministic per seed, but the
//! streams differ from upstream `rand`.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}
impl Standard for u64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Stub of `rand::thread_rng`. Exists so `clippy.toml`'s
/// `disallowed-methods` entry resolves to a real path; workspace code
/// must never call it (sheriff-lint DET03 + clippy both fire). The stub
/// is deliberately deterministic — even the escape hatch cannot smuggle
/// OS entropy into a run.
#[deprecated(note = "ambient randomness is banned (DET03); seed an StdRng explicitly")]
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::seed_from_u64(0x5EED)
}

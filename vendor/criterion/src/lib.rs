//! Offline stand-in for `criterion`: each benchmark runs its closure once
//! (a smoke test) instead of measuring.

use std::fmt;
use std::time::Instant;

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Self { _private: () }
    }
}

pub struct Bencher {
    _private: (),
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let _ = f();
        let _ = start.elapsed();
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let input = setup();
        let _ = routine(input);
    }
}

/// Batch sizing hint; irrelevant to the run-once stub.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new<S: fmt::Display, P: fmt::Display>(function: S, parameter: P) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self(parameter.to_string())
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        eprintln!("bench(stub): {id}");
        f(&mut Bencher { _private: () });
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench(stub): {}", id.0);
        f(&mut Bencher { _private: () }, input);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }
}

/// Run-once group: same surface as criterion's, no measurement.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        eprintln!("bench(stub): {}/{id}", self.name);
        f(&mut Bencher { _private: () });
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        eprintln!("bench(stub): {}/{}", self.name, id.0);
        f(&mut Bencher { _private: () }, input);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Offline stand-in for `proptest`: deterministic random testing without
//! shrinking. Covers the API subset this repo uses — `proptest!` with
//! optional `#![proptest_config]`, range/tuple/vec/any strategies,
//! `prop_map`, and the `prop_assert*`/`prop_assume` macros.

/// Deterministic per-test-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        Self(h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// Runner configuration (`cases` is the only knob this stub honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
    (A, B, C, D, E, F, G, H, I);
    (A, B, C, D, E, F, G, H, I, J);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() * 2e6 - 1e6
    }
}

pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.max_exclusive - self.min).max(1) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy {
            element,
            min: size.start,
            max_exclusive: size.end,
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
    pub use crate as prop;
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when the assumption fails (expands to an early
/// return from the per-case closure the `proptest!` macro wraps around the
/// body).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = (<$crate::ProptestConfig as Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let ($($arg,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                    let run = || $body;
                    run();
                }
            }
        )*
    };
}

//! Offline stand-in for `serde`: blanket-implemented marker traits plus
//! no-op derives. Serialization itself is not supported (serde_json stub
//! emits placeholders).

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub trait DeserializeOwned: Sized {}
impl<T> DeserializeOwned for T {}

//! The VM-migration cost model (Sec. III-C, Eqn. 1) and the six-stage
//! pre-copy live-migration timeline (Fig. 2; Clark et al. \[17\]).
//!
//! `Cost(v_i, v_p) = C_r + C_d·D(e)·χ^p_i + Σ_{e∈P(v_i,v_p)} (δ·T(e) + η·P(e))`
//!
//! with `T(e) = m.capacity / B(e)` and `P(e) = B(e)/C(e)`. Sec. V-A shows
//! the transmission term can be collapsed to a function `G(v_i, v_p)` of
//! the endpoints by choosing the cheapest rack-to-rack path once
//! (Floyd–Warshall); [`RackMetric`] precomputes exactly that.

use crate::config::SimConfig;
use dcn_topology::path::dijkstra;
use dcn_topology::{Dcn, RackId};
use serde::{Deserialize, Serialize};

/// Precomputed rack-to-rack metric: for every ordered rack pair, the
/// physical distance and the two path-sum terms of Eqn. 1 along the
/// minimum-transmission-cost path.
///
/// `T(e) = cap / B(e)` is linear in the VM capacity, so storing
/// `Σ 1/B(e)` and `Σ B(e)/C(e)` lets one precomputation serve every VM
/// size: `G(v_i, v_p) = δ·cap·inv_bw + η·util`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RackMetric {
    n: usize,
    /// Physical shortest-path distance `D(v_i, v_p)` between racks.
    distance: Vec<f64>,
    /// `Σ 1/B(e)` along the chosen path.
    inv_bw: Vec<f64>,
    /// `Σ B(e)/C(e)` along the chosen path.
    util: Vec<f64>,
    /// Hop count of the chosen path (search-space statistics).
    hops: Vec<u32>,
}

impl RackMetric {
    /// Build the metric from the current link state of `dcn`. Paths are
    /// chosen to minimise the per-edge transmission cost
    /// `δ/B(e) + η·B(e)/C(e)` (the paper's reference-VM collapse); links
    /// below the bandwidth threshold `B_t` are unusable (Sec. III-C).
    pub fn build(dcn: &Dcn, cfg: &SimConfig) -> Self {
        let g = &dcn.graph;
        let n_racks = dcn.rack_count();
        let n_nodes = g.node_count();
        let mut distance = vec![f64::INFINITY; n_racks * n_racks];
        let mut inv_bw = vec![f64::INFINITY; n_racks * n_racks];
        let mut util = vec![0.0; n_racks * n_racks];
        let mut hops = vec![0u32; n_racks * n_racks];

        let bt = cfg.bandwidth_threshold;
        let edge_cost = |l: &dcn_topology::Link| {
            if l.usable(bt) {
                cfg.delta / l.available_bw + cfg.eta * l.utility_rate()
            } else {
                // unusable link: effectively removed from the path search
                1e15
            }
        };

        // node -> rack reverse map
        let mut node_rack = vec![usize::MAX; n_nodes];
        for (r, &node) in dcn.rack_nodes.iter().enumerate() {
            node_rack[node] = r;
        }

        for src_rack in 0..n_racks {
            let src_node = dcn.rack_nodes[src_rack];
            let (dist, prev) = dijkstra(g, src_node, &edge_cost);
            for (dst_rack, &dst_node) in dcn.rack_nodes.iter().enumerate() {
                let idx = src_rack * n_racks + dst_rack;
                if src_rack == dst_rack {
                    distance[idx] = 0.0;
                    inv_bw[idx] = 0.0;
                    continue;
                }
                if !dist[dst_node].is_finite() || dist[dst_node] >= 1e14 {
                    continue; // unreachable under B_t
                }
                // walk the predecessor chain accumulating link terms
                let mut d = 0.0;
                let mut ib = 0.0;
                let mut ut = 0.0;
                let mut h = 0u32;
                let mut cur = dst_node;
                while cur != src_node {
                    let p = prev[cur] as usize;
                    let e = g.edge_between(p, cur).expect("path edge exists");
                    let l = g.link(e);
                    d += l.distance;
                    ib += 1.0 / l.available_bw;
                    ut += l.utility_rate();
                    h += 1;
                    cur = p;
                }
                distance[idx] = d;
                inv_bw[idx] = ib;
                util[idx] = ut;
                hops[idx] = h;
            }
        }
        Self {
            n: n_racks,
            distance,
            inv_bw,
            util,
            hops,
        }
    }

    /// Number of racks covered.
    #[inline]
    pub fn rack_count(&self) -> usize {
        self.n
    }

    /// Physical distance `D(v_i, v_p)` along the chosen path.
    #[inline]
    pub fn distance(&self, from: RackId, to: RackId) -> f64 {
        self.distance[from.index() * self.n + to.index()]
    }

    /// Hop count of the chosen path.
    #[inline]
    pub fn hops(&self, from: RackId, to: RackId) -> u32 {
        self.hops[from.index() * self.n + to.index()]
    }

    /// The transmission term `G(v_i, v_p) = Σ (δ·T(e) + η·P(e))` for a VM
    /// of size `vm_capacity`.
    #[inline]
    pub fn transmission_cost(
        &self,
        cfg: &SimConfig,
        vm_capacity: f64,
        from: RackId,
        to: RackId,
    ) -> f64 {
        let idx = from.index() * self.n + to.index();
        cfg.delta * vm_capacity * self.inv_bw[idx] + cfg.eta * self.util[idx]
    }

    /// Full migration cost of Eqn. 1. `chi` is the dependency-change
    /// indicator χ (0 or 1, from `DependencyGraph::chi`).
    pub fn migration_cost(
        &self,
        cfg: &SimConfig,
        vm_capacity: f64,
        from: RackId,
        to: RackId,
        chi: f64,
    ) -> f64 {
        if from == to {
            // intra-rack reshuffle: only the fixed VM-copy cost applies
            return cfg.c_r;
        }
        cfg.c_r
            + cfg.c_d * self.distance(from, to) * chi
            + self.transmission_cost(cfg, vm_capacity, from, to)
    }

    /// Whether a destination rack is reachable under the bandwidth
    /// threshold.
    #[inline]
    pub fn reachable(&self, from: RackId, to: RackId) -> bool {
        self.distance[from.index() * self.n + to.index()].is_finite()
    }
}

/// Durations of the six stages of pre-copy live migration (Fig. 2):
/// t₁ initialization+reservation, t₂ iterative pre-copy, t₃ stop-and-copy,
/// t₄ commitment+activation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationTimeline {
    /// Initialization + reservation time.
    pub t1: f64,
    /// Iterative pre-copy time.
    pub t2: f64,
    /// Stop-and-copy downtime (the paper cites ~60 ms and sets its cost to
    /// zero).
    pub t3: f64,
    /// Commitment + activation time.
    pub t4: f64,
    /// Pre-copy rounds executed.
    pub rounds: u32,
}

impl MigrationTimeline {
    /// Total wall-clock duration.
    pub fn total(&self) -> f64 {
        self.t1 + self.t2 + self.t3 + self.t4
    }

    /// Service downtime (only the stop-and-copy stage).
    pub fn downtime(&self) -> f64 {
        self.t3
    }
}

/// Model the iterative pre-copy process: each round retransmits the pages
/// dirtied during the previous round. With dirty rate `r` (MB/s) and
/// bandwidth `bw` (MB/s), round `i` transfers `ram·(r/bw)^i`; iteration
/// stops when the residual fits under `stop_threshold` or `max_rounds` is
/// hit, and the residual is moved during stop-and-copy.
pub fn precopy_timeline(
    ram_mb: f64,
    dirty_rate: f64,
    bandwidth: f64,
    stop_threshold_mb: f64,
    max_rounds: u32,
) -> MigrationTimeline {
    assert!(bandwidth > 0.0, "bandwidth must be positive");
    assert!(ram_mb >= 0.0 && dirty_rate >= 0.0);
    const T1: f64 = 0.5; // init + reservation (s)
    const T4: f64 = 0.2; // commitment + activation (s)

    let ratio = dirty_rate / bandwidth;
    let mut residual = ram_mb;
    let mut t2 = 0.0;
    let mut rounds = 0u32;
    // first round always sends all of RAM (stage 3 of Sec. III-C)
    loop {
        t2 += residual / bandwidth;
        rounds += 1;
        residual *= ratio;
        if residual <= stop_threshold_mb || rounds >= max_rounds || ratio >= 1.0 {
            break;
        }
    }
    MigrationTimeline {
        t1: T1,
        t2,
        t3: residual / bandwidth,
        t4: T4,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::fattree::{self, FatTreeConfig};

    fn setup() -> (Dcn, SimConfig, RackMetric) {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let cfg = SimConfig::paper();
        let metric = RackMetric::build(&dcn, &cfg);
        (dcn, cfg, metric)
    }

    #[test]
    fn self_distance_zero_and_symmetric() {
        let (dcn, _, m) = setup();
        for r in 0..dcn.rack_count() {
            let r = RackId::from_index(r);
            assert_eq!(m.distance(r, r), 0.0);
        }
        let a = RackId(0);
        let b = RackId(5);
        assert!((m.distance(a, b) - m.distance(b, a)).abs() < 1e-9);
    }

    #[test]
    fn same_pod_cheaper_than_cross_pod() {
        let (_, cfg, m) = setup();
        // racks 0,1 share a pod; rack 2 is in the next pod
        let same = m.migration_cost(&cfg, 10.0, RackId(0), RackId(1), 1.0);
        let cross = m.migration_cost(&cfg, 10.0, RackId(0), RackId(2), 1.0);
        assert!(same < cross, "{same} !< {cross}");
    }

    #[test]
    fn cost_includes_cr_and_scales_with_chi() {
        let (_, cfg, m) = setup();
        let no_dep = m.migration_cost(&cfg, 10.0, RackId(0), RackId(1), 0.0);
        let dep = m.migration_cost(&cfg, 10.0, RackId(0), RackId(1), 1.0);
        assert!(no_dep >= cfg.c_r);
        assert!((dep - no_dep - cfg.c_d * m.distance(RackId(0), RackId(1))).abs() < 1e-9);
    }

    #[test]
    fn intra_rack_cost_is_cr_only() {
        let (_, cfg, m) = setup();
        assert_eq!(
            m.migration_cost(&cfg, 10.0, RackId(3), RackId(3), 1.0),
            cfg.c_r
        );
    }

    #[test]
    fn transmission_cost_linear_in_vm_size() {
        let (_, cfg, m) = setup();
        let g10 = m.transmission_cost(&cfg, 10.0, RackId(0), RackId(1));
        let g20 = m.transmission_cost(&cfg, 20.0, RackId(0), RackId(1));
        let g30 = m.transmission_cost(&cfg, 30.0, RackId(0), RackId(1));
        assert!(g20 > g10);
        // affine in capacity: equal increments
        assert!((g30 - g20 - (g20 - g10)).abs() < 1e-9);
        // the capacity-independent η-term is non-negative
        let util_term = g10 - (g20 - g10);
        assert!(util_term >= -1e-12);
    }

    #[test]
    fn saturated_links_make_racks_unreachable() {
        let (mut dcn, cfg, _) = setup();
        // saturate every edge link of rack 0
        let node = dcn.rack_node(RackId(0));
        let edges: Vec<_> = dcn.graph.neighbors(node).iter().map(|&(_, e)| e).collect();
        for e in edges {
            let cap = dcn.graph.link(e).capacity;
            dcn.graph.link_mut(e).consume(cap);
        }
        let m = RackMetric::build(&dcn, &cfg);
        assert!(!m.reachable(RackId(0), RackId(1)));
        assert!(m.reachable(RackId(1), RackId(2)));
    }

    #[test]
    fn hop_counts_match_fattree_structure() {
        let (_, _, m) = setup();
        // same pod: rack -> agg -> rack = 2 hops
        assert_eq!(m.hops(RackId(0), RackId(1)), 2);
        // cross pod: rack -> agg -> core -> agg -> rack = 4 hops
        assert_eq!(m.hops(RackId(0), RackId(2)), 4);
    }

    #[test]
    fn precopy_converges_when_dirty_rate_below_bw() {
        let t = precopy_timeline(1024.0, 100.0, 1000.0, 1.0, 30);
        assert!(t.rounds >= 2);
        assert!(t.downtime() * 1000.0 < 20.0, "downtime {}s", t.t3);
        // total transfer ≥ one full RAM copy
        assert!(t.t2 >= 1024.0 / 1000.0);
    }

    #[test]
    fn precopy_bails_out_when_dirty_rate_exceeds_bw() {
        let t = precopy_timeline(1024.0, 2000.0, 1000.0, 1.0, 30);
        assert_eq!(t.rounds, 1, "ratio >= 1 must stop after the first copy");
        // everything dirtied again: stop-and-copy moves a full RAM's worth
        assert!(t.t3 >= 1024.0 * (2.0) / 1000.0 - 1e-9);
    }

    #[test]
    fn timeline_total_sums_stages() {
        let t = precopy_timeline(512.0, 50.0, 500.0, 1.0, 10);
        assert!((t.total() - (t.t1 + t.t2 + t.t3 + t.t4)).abs() < 1e-12);
    }
}

//! Per-VM workload profiles `W^k_ij = [CPU, MEM, IO, TRF]` (Sec. IV-A),
//! each element normalised to [0, 1], backed by synthetic traces.

use serde::{Deserialize, Serialize};
use timeseries::generator::{
    cpu_trace, disk_io_trace, memory_trace, weekly_traffic_trace, TraceConfig,
};
use timeseries::MinMaxScaler;

/// One snapshot of a VM's workload profile, every element in [0, 1].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// CPU load fraction.
    pub cpu: f64,
    /// Memory utilisation fraction.
    pub mem: f64,
    /// Disk-I/O rate fraction.
    pub io: f64,
    /// Uplink network traffic fraction.
    pub trf: f64,
}

impl Profile {
    /// The four features as an array, in the paper's `[CPU, MEM, IO, TRF]`
    /// order.
    #[inline]
    pub fn as_array(&self) -> [f64; 4] {
        [self.cpu, self.mem, self.io, self.trf]
    }

    /// `max(W)` — the value reported as the ALERT magnitude (Sec. IV-C).
    #[inline]
    pub fn max(&self) -> f64 {
        self.as_array().iter().cloned().fold(0.0, f64::max)
    }

    /// Whether any feature exceeds the THRESHOLD.
    #[inline]
    pub fn exceeds(&self, threshold: f64) -> bool {
        self.as_array().iter().any(|&v| v > threshold)
    }

    /// Validate every feature lies in [0, 1].
    pub fn is_normalized(&self) -> bool {
        self.as_array().iter().all(|&v| (0.0..=1.0).contains(&v))
    }
}

/// A VM's full workload history: four aligned normalised series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VmWorkload {
    cpu: Vec<f64>,
    mem: Vec<f64>,
    io: Vec<f64>,
    trf: Vec<f64>,
}

impl VmWorkload {
    /// Build from raw (unnormalised) series; each is min-max scaled into
    /// [0, 1] with fixed domain ranges so that "90 % CPU" means the same
    /// thing across VMs.
    pub fn from_raw(cpu: Vec<f64>, mem: Vec<f64>, io: Vec<f64>, trf: Vec<f64>) -> Self {
        assert!(
            cpu.len() == mem.len() && mem.len() == io.len() && io.len() == trf.len(),
            "all four feature series must be aligned"
        );
        let cpu_s = MinMaxScaler::with_range(0.0, 100.0);
        let io_s = MinMaxScaler::with_range(0.0, 1200.0);
        let trf_s = MinMaxScaler::fit(&trf);
        Self {
            cpu: cpu_s.transform_all(&cpu),
            mem, // memory_trace is already in [0, 1]
            io: io_s.transform_all(&io),
            trf: trf_s.transform_all(&trf),
        }
    }

    /// Generate a seeded synthetic workload of `len` steps, mimicking the
    /// ZopleCloud trace mix (DESIGN.md §1).
    pub fn synthetic(len: usize, seed: u64) -> Self {
        let cfg = TraceConfig {
            len,
            samples_per_day: 144,
            seed,
        };
        Self::from_raw(
            cpu_trace(&cfg),
            memory_trace(&cfg),
            disk_io_trace(&cfg),
            weekly_traffic_trace(&cfg),
        )
    }

    /// Number of time steps.
    #[inline]
    pub fn len(&self) -> usize {
        self.cpu.len()
    }

    /// True when the workload has no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cpu.is_empty()
    }

    /// Profile at time step `t` (clamped to the last step so simulations
    /// can outrun the trace without panicking).
    pub fn at(&self, t: usize) -> Profile {
        let i = t.min(self.len().saturating_sub(1));
        Profile {
            cpu: self.cpu[i],
            mem: self.mem[i],
            io: self.io[i],
            trf: self.trf[i],
        }
    }

    /// Overlay a surge window: every feature in steps
    /// `[start, start + duration)` is multiplied by `factor` and clamped
    /// back into [0, 1]. The burst scenarios of the scenario engine use
    /// this to turn the diurnal synthetic traces into flash crowds
    /// (factor > 1) or brown-outs (factor < 1).
    pub fn apply_surge(&mut self, start: usize, duration: usize, factor: f64) {
        let end = start.saturating_add(duration).min(self.len());
        for series in [&mut self.cpu, &mut self.mem, &mut self.io, &mut self.trf] {
            for v in &mut series[start.min(end)..end] {
                *v = (*v * factor).clamp(0.0, 1.0);
            }
        }
    }

    /// Borrow one feature's history up to (excluding) step `t` — the input
    /// the per-feature forecaster sees.
    pub fn feature_history(&self, feature: Feature, t: usize) -> &[f64] {
        let end = t.min(self.len());
        match feature {
            Feature::Cpu => &self.cpu[..end],
            Feature::Mem => &self.mem[..end],
            Feature::Io => &self.io[..end],
            Feature::Trf => &self.trf[..end],
        }
    }
}

/// The four workload features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Feature {
    /// CPU utilisation.
    Cpu,
    /// Memory utilisation.
    Mem,
    /// Disk I/O rate.
    Io,
    /// Network traffic.
    Trf,
}

impl Feature {
    /// All four features in profile order.
    pub const ALL: [Feature; 4] = [Feature::Cpu, Feature::Mem, Feature::Io, Feature::Trf];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_max_and_threshold() {
        let p = Profile {
            cpu: 0.95,
            mem: 0.4,
            io: 0.2,
            trf: 0.1,
        };
        assert_eq!(p.max(), 0.95);
        assert!(p.exceeds(0.9));
        assert!(!p.exceeds(0.96));
        assert!(p.is_normalized());
    }

    #[test]
    fn synthetic_workload_is_normalized() {
        let w = VmWorkload::synthetic(200, 5);
        assert_eq!(w.len(), 200);
        for t in 0..w.len() {
            assert!(w.at(t).is_normalized(), "step {t} out of range");
        }
    }

    #[test]
    fn at_clamps_beyond_end() {
        let w = VmWorkload::synthetic(50, 1);
        assert_eq!(w.at(1000), w.at(49));
    }

    #[test]
    fn feature_history_is_prefix() {
        let w = VmWorkload::synthetic(100, 2);
        let h = w.feature_history(Feature::Cpu, 30);
        assert_eq!(h.len(), 30);
        assert_eq!(h[29], w.at(29).cpu);
        // beyond end clamps to full series
        assert_eq!(w.feature_history(Feature::Trf, 500).len(), 100);
    }

    #[test]
    fn surge_scales_and_clamps_the_window() {
        let mut w = VmWorkload::synthetic(20, 3);
        let before = w.at(4);
        let inside = w.at(7);
        w.apply_surge(5, 5, 10.0);
        // outside the window: untouched
        assert_eq!(w.at(4), before);
        assert_eq!(w.at(10), VmWorkload::synthetic(20, 3).at(10));
        // inside: scaled up and clamped into [0, 1]
        let after = w.at(7);
        assert!(after.cpu >= inside.cpu);
        assert!(after.is_normalized());
        // a surge window past the end is a no-op, not a panic
        w.apply_surge(100, 5, 2.0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = VmWorkload::synthetic(50, 1);
        let b = VmWorkload::synthetic(50, 2);
        assert_ne!(a.at(10), b.at(10));
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_series_rejected() {
        VmWorkload::from_raw(vec![1.0], vec![0.5, 0.5], vec![1.0], vec![1.0]);
    }
}

//! Simulation parameters, defaulting to the paper's settings (Sec. VI-B).

use crate::error::{check_probability, SheriffError};
use serde::{Deserialize, Serialize};

/// Global simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// `C_r`: fixed cost of initialization + reservation + commitment +
    /// activation of a live migration (paper: 100).
    pub c_r: f64,
    /// `δ`: weight of the transmission-time term (paper: 1).
    pub delta: f64,
    /// `η`: weight of the bandwidth-utility term (paper: 1).
    pub eta: f64,
    /// `C_d`: unit dependency cost per distance in `G_d` (paper: 1).
    pub c_d: f64,
    /// Maximum VM capacity (paper: 20).
    pub vm_capacity_max: f64,
    /// `B_t`: minimum available bandwidth for a link to carry a migration.
    pub bandwidth_threshold: f64,
    /// `THRESHOLD` on the normalised workload profile that triggers an
    /// ALERT (Sec. III-A uses 90 % utilisation as the canonical example).
    pub alert_threshold: f64,
    /// `α`: portion of switch capacity released per round when handling an
    /// outer-switch alert (Alg. 2).
    pub alpha: f64,
    /// `β`: portion of ToR capacity released per round when handling an
    /// uplink-congestion alert (Alg. 1 line 10 / Alg. 2).
    pub beta: f64,
    /// `T`: seconds between controller rounds (alert collection period).
    pub period_secs: f64,
    /// Weight of the load-aware tie-break added to Eqn. 1 when ranking
    /// destination hosts: `weight × post-move utilisation`. Among
    /// equal-cost destinations (e.g. every host of the same rack costs
    /// exactly `C_r`), this steers the matching toward the least-loaded
    /// host — the balancing objective behind constraint (10) and the
    /// declining curves of Fig. 9/10. Set to 0 for the literal Eqn. 1.
    pub load_balance_weight: f64,
    /// Scope of a shim's dominating region in graph hops when picking
    /// migration destinations (paper: one-hop wired neighbours; two graph
    /// hops = rack → switch → rack).
    pub region_hops: usize,
    /// Candidate paths considered per FLOWREROUTE (Yen's k-shortest);
    /// 1 recovers the paper's single-alternative reroute, larger values
    /// spread detours across the fabric's parallel paths.
    pub reroute_paths: usize,
    /// Fault model of the shim-to-shim control channel. The default is
    /// reliable and in-order, under which the message-passing runtime
    /// reproduces the shared-lock runtime move for move.
    pub channel: ChannelFaults,
}

/// Fault model for the control channel carrying REQUEST/ACK/REJECT and
/// heartbeat traffic between shims (the crash scenarios Sec. III-A
/// delegates to a "backup system"). All probabilities are per message and
/// applied independently; delivery delay is drawn uniformly from
/// `[delay_min, delay_max]` virtual ticks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelFaults {
    /// Probability a message is silently lost.
    pub drop: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability a message is held back extra ticks, overtaking later
    /// traffic from the same sender.
    pub reorder: f64,
    /// Minimum delivery delay in ticks (clamped to ≥ 1).
    pub delay_min: u64,
    /// Maximum delivery delay in ticks.
    pub delay_max: u64,
}

impl Default for ChannelFaults {
    fn default() -> Self {
        Self::reliable()
    }
}

impl ChannelFaults {
    /// A perfect channel: nothing dropped, duplicated, or reordered, and
    /// every message takes exactly one tick.
    pub fn reliable() -> Self {
        Self {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            delay_min: 1,
            delay_max: 1,
        }
    }

    /// A uniformly lossy channel: each fault fires with probability `p`
    /// and delays spread over 1–3 ticks.
    pub fn lossy(p: f64) -> Self {
        Self {
            drop: p,
            duplicate: p / 2.0,
            reorder: p,
            delay_min: 1,
            delay_max: 3,
        }
    }

    /// Whether every fault probability is zero and delay is deterministic
    /// (the channel cannot perturb message order or delivery).
    pub fn is_reliable(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.delay_min == self.delay_max
    }

    /// Check every probability is in `[0, 1]` and the delay window is
    /// non-empty — the invariants `SimNet` construction relies on.
    pub fn validate(&self) -> Result<(), SheriffError> {
        check_probability("channel.drop", self.drop)?;
        check_probability("channel.duplicate", self.duplicate)?;
        check_probability("channel.reorder", self.reorder)?;
        if self.delay_max < self.delay_min {
            return Err(SheriffError::InvalidDelayWindow {
                min: self.delay_min,
                max: self.delay_max,
            });
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            c_r: 100.0,
            delta: 1.0,
            eta: 1.0,
            c_d: 1.0,
            vm_capacity_max: 20.0,
            bandwidth_threshold: 0.05,
            alert_threshold: 0.9,
            alpha: 0.2,
            beta: 0.2,
            period_secs: 60.0,
            load_balance_weight: 200.0,
            region_hops: 2,
            reroute_paths: 4,
            channel: ChannelFaults::reliable(),
        }
    }
}

impl SimConfig {
    /// The exact settings of the paper's Sec. VI-B simulation.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Check the configuration is internally consistent: cost weights
    /// finite and non-negative, thresholds and release fractions within
    /// `[0, 1]`, a positive round period, and a valid channel model.
    pub fn validate(&self) -> Result<(), SheriffError> {
        let nonneg: [(&'static str, f64); 6] = [
            ("c_r", self.c_r),
            ("delta", self.delta),
            ("eta", self.eta),
            ("c_d", self.c_d),
            ("bandwidth_threshold", self.bandwidth_threshold),
            ("load_balance_weight", self.load_balance_weight),
        ];
        for (field, v) in nonneg {
            if !v.is_finite() || v < 0.0 {
                return Err(SheriffError::InvalidSimConfig {
                    field,
                    reason: format!("must be finite and >= 0, got {v}"),
                });
            }
        }
        if !self.vm_capacity_max.is_finite() || self.vm_capacity_max <= 0.0 {
            return Err(SheriffError::InvalidSimConfig {
                field: "vm_capacity_max",
                reason: format!("must be finite and > 0, got {}", self.vm_capacity_max),
            });
        }
        check_probability("alert_threshold", self.alert_threshold)?;
        check_probability("alpha", self.alpha)?;
        check_probability("beta", self.beta)?;
        if !self.period_secs.is_finite() || self.period_secs <= 0.0 {
            return Err(SheriffError::InvalidSimConfig {
                field: "period_secs",
                reason: format!("must be finite and > 0, got {}", self.period_secs),
            });
        }
        if self.reroute_paths == 0 {
            return Err(SheriffError::InvalidSimConfig {
                field: "reroute_paths",
                reason: "at least one candidate path is required".into(),
            });
        }
        self.channel.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_settings_match_section_vi_b() {
        let c = SimConfig::paper();
        assert_eq!(c.c_r, 100.0);
        assert_eq!(c.delta, 1.0);
        assert_eq!(c.eta, 1.0);
        assert_eq!(c.c_d, 1.0);
        assert_eq!(c.vm_capacity_max, 20.0);
    }

    #[test]
    fn default_channel_is_reliable() {
        let c = SimConfig::paper();
        assert!(c.channel.is_reliable());
        assert!(!ChannelFaults::lossy(0.1).is_reliable());
        assert!(
            !ChannelFaults {
                delay_min: 1,
                delay_max: 3,
                ..ChannelFaults::reliable()
            }
            .is_reliable(),
            "random delay can reorder across senders"
        );
    }

    #[test]
    fn validate_accepts_paper_and_rejects_bad_fields() {
        assert!(SimConfig::paper().validate().is_ok());
        assert!(ChannelFaults::lossy(0.3).validate().is_ok());
        let bad = SimConfig {
            alert_threshold: 1.5,
            ..SimConfig::paper()
        };
        assert!(bad.validate().is_err());
        let bad = SimConfig {
            period_secs: 0.0,
            ..SimConfig::paper()
        };
        assert!(bad.validate().is_err());
        let bad = ChannelFaults {
            drop: -0.1,
            ..ChannelFaults::reliable()
        };
        assert!(bad.validate().is_err());
        let bad = ChannelFaults {
            delay_min: 5,
            delay_max: 2,
            ..ChannelFaults::reliable()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn debug_covers_every_tunable() {
        let dbg = format!("{:?}", SimConfig::paper());
        for field in [
            "c_r",
            "delta",
            "eta",
            "c_d",
            "alert_threshold",
            "region_hops",
        ] {
            assert!(dbg.contains(field), "missing {field}");
        }
    }
}

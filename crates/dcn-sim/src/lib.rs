//! # dcn-sim
//!
//! Round-based data-center simulator for the Sheriff reproduction
//! (ICPP'15): per-VM workload profiles `[CPU, MEM, IO, TRF]` backed by
//! synthetic traces, the ALERT rule of Sec. IV-C, the live-migration cost
//! model of Eqn. 1 with its rack-to-rack metric collapse, the six-stage
//! pre-copy timeline, QCN-style congestion feedback, and a flow network
//! with per-link load accounting.
//!
//! ```
//! use dcn_sim::engine::{Cluster, ClusterConfig};
//! use dcn_sim::config::SimConfig;
//! use dcn_topology::fattree::{self, FatTreeConfig};
//!
//! let dcn = fattree::build(&FatTreeConfig::paper(4));
//! let cluster = Cluster::build(dcn, &ClusterConfig::default(), SimConfig::paper());
//! assert!(cluster.placement.vm_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod config;
pub mod congestion;
pub mod engine;
pub mod error;
pub mod faults;
pub mod flows;
pub mod forecaster;
pub mod migration;
pub mod qcn;
pub mod tor_monitor;
pub mod workload;

pub use alert::{Alert, AlertSource, VmAlert};
pub use config::{ChannelFaults, SimConfig};
pub use congestion::{CongestionConfig, CongestionSim};
pub use engine::{Cluster, ClusterConfig, HoltPredictor, LastValue, ProfilePredictor};
pub use error::SheriffError;
pub use faults::{FaultInjector, ObservedFaults};
pub use flows::{Flow, FlowNetwork};
pub use forecaster::ArimaProfilePredictor;
pub use migration::{precopy_timeline, MigrationTimeline, RackMetric};
pub use tor_monitor::TorMonitor;
pub use workload::{Feature, Profile, VmWorkload};

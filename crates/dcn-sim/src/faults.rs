//! Failure injection: dead links and failed hosts. Sec. III-A assumes a
//! backup system resolves crashes; these helpers create the crash
//! scenarios that `sheriff-core`'s evacuation and the `B_t`-aware metric
//! must survive, and the tests in both crates drive them.

use dcn_topology::graph::EdgeIdx;
use dcn_topology::Dcn;
use rand::Rng;

/// Kill one link: its available bandwidth drops to zero, putting it
/// below every positive `B_t` threshold so the metric routes around it.
pub fn fail_link(dcn: &mut Dcn, e: EdgeIdx) {
    let cap = dcn.graph.link(e).capacity;
    dcn.graph.link_mut(e).consume(cap);
}

/// Restore a previously failed link to full capacity.
pub fn restore_link(dcn: &mut Dcn, e: EdgeIdx) {
    let cap = dcn.graph.link(e).capacity;
    dcn.graph.link_mut(e).release(cap);
}

/// Fail a random `fraction` of all links. Returns the failed edge ids.
pub fn fail_random_links<R: Rng>(dcn: &mut Dcn, rng: &mut R, fraction: f64) -> Vec<EdgeIdx> {
    assert!((0.0..=1.0).contains(&fraction), "fraction in [0, 1]");
    let m = dcn.graph.edge_count();
    let want = (m as f64 * fraction).round() as usize;
    let mut ids: Vec<EdgeIdx> = (0..m).collect();
    for i in (1..m).rev() {
        ids.swap(i, rng.gen_range(0..=i));
    }
    ids.truncate(want);
    for &e in &ids {
        fail_link(dcn, e);
    }
    ids
}

/// Whether every rack can still reach every other rack over links with
/// available bandwidth above `threshold` (BFS on the live subgraph).
pub fn racks_connected(dcn: &Dcn, threshold: f64) -> bool {
    let g = &dcn.graph;
    if dcn.rack_nodes.is_empty() {
        return true;
    }
    let mut seen = vec![false; g.node_count()];
    let start = dcn.rack_nodes[0];
    seen[start] = true;
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        for &(v, e) in g.neighbors(u) {
            if !seen[v] && g.link(e).usable(threshold) {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    dcn.rack_nodes.iter().all(|&n| seen[n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::fattree::{self, FatTreeConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fail_and_restore_roundtrip() {
        let mut dcn = fattree::build(&FatTreeConfig::paper(4));
        fail_link(&mut dcn, 0);
        assert_eq!(dcn.graph.link(0).available_bw, 0.0);
        assert!(!dcn.graph.link(0).usable(0.01));
        restore_link(&mut dcn, 0);
        assert_eq!(dcn.graph.link(0).available_bw, dcn.graph.link(0).capacity);
    }

    #[test]
    fn fattree_survives_single_link_failure() {
        // fat-trees are multipath: one dead link never partitions racks
        let base = fattree::build(&FatTreeConfig::paper(4));
        for e in 0..base.graph.edge_count() {
            let mut dcn = base.clone();
            fail_link(&mut dcn, e);
            assert!(racks_connected(&dcn, 0.01), "edge {e} partitioned the fabric");
        }
    }

    #[test]
    fn random_failures_eventually_partition() {
        let mut dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut rng = StdRng::seed_from_u64(5);
        let failed = fail_random_links(&mut dcn, &mut rng, 0.9);
        assert_eq!(failed.len(), (dcn.graph.edge_count() as f64 * 0.9).round() as usize);
        assert!(!racks_connected(&dcn, 0.01), "90% failures should partition");
    }

    #[test]
    fn zero_fraction_fails_nothing() {
        let mut dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut rng = StdRng::seed_from_u64(1);
        assert!(fail_random_links(&mut dcn, &mut rng, 0.0).is_empty());
        assert!(racks_connected(&dcn, 0.01));
    }

    #[test]
    fn metric_routes_around_failed_links() {
        use crate::migration::RackMetric;
        use crate::SimConfig;
        use dcn_topology::RackId;
        let mut dcn = fattree::build(&FatTreeConfig::paper(4));
        let sim = SimConfig::paper();
        let before = RackMetric::build(&dcn, &sim);
        // kill one of rack 0's two uplinks
        let node = dcn.rack_node(RackId(0));
        let (_, e) = dcn.graph.neighbors(node)[0];
        fail_link(&mut dcn, e);
        let after = RackMetric::build(&dcn, &sim);
        // still reachable through the second uplink
        assert!(after.reachable(RackId(0), RackId(1)));
        // and never cheaper than the healthy fabric
        let b = before.transmission_cost(&sim, 10.0, RackId(0), RackId(1));
        let a = after.transmission_cost(&sim, 10.0, RackId(0), RackId(1));
        assert!(a >= b - 1e-9);
    }
}

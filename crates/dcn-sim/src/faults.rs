//! Failure injection: dead links, failed hosts, and crashed shims.
//! Sec. III-A assumes a backup system resolves crashes; these helpers
//! create the crash scenarios that `sheriff-core`'s evacuation, the
//! `B_t`-aware metric, and the shim fabric's degradation ladder must
//! survive, and the tests in several crates drive them.

use dcn_topology::graph::EdgeIdx;
use dcn_topology::placement::Placement;
use dcn_topology::{Dcn, HostId, RackId, VmId};
use rand::Rng;
use sheriff_obs::{emit, Event, EventSink, FaultKind};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Kill one link: its available bandwidth drops to zero, putting it
/// below every positive `B_t` threshold so the metric routes around it.
///
/// Returns the bandwidth that flows had actually consumed on the link at
/// failure time; pass it back to [`restore_link`] so recovery reinstates
/// the pre-failure utilisation instead of a magically empty link.
pub fn fail_link(dcn: &mut Dcn, e: EdgeIdx) -> f64 {
    let link = dcn.graph.link(e);
    let consumed = link.capacity - link.available_bw;
    let cap = link.capacity;
    dcn.graph.link_mut(e).consume(cap);
    consumed
}

/// Restore a previously failed link, re-applying the utilisation it
/// carried when it failed (`consumed`, as returned by [`fail_link`]).
///
/// The old implementation released the full capacity, so a link that was
/// 40% utilised before the failure came back with 100% headroom —
/// inflating `B_t` and letting the metric oversubscribe it.
pub fn restore_link(dcn: &mut Dcn, e: EdgeIdx, consumed: f64) {
    let cap = dcn.graph.link(e).capacity;
    let link = dcn.graph.link_mut(e);
    link.release(cap);
    link.consume(consumed);
}

/// Fail a host: its capacity becomes unavailable, so no planner will pick
/// it as a destination, and every resident VM must be evacuated. Returns
/// the stranded VMs (the evacuation work-list), hottest-first is not
/// guaranteed — callers order them as their policy requires.
pub fn fail_host(placement: &mut Placement, host: HostId) -> Vec<VmId> {
    placement.set_host_online(host, false);
    placement.vms_on(host).to_vec()
}

/// Bring a failed host back: it resumes accepting placements with
/// whatever capacity its remaining residents leave free.
pub fn restore_host(placement: &mut Placement, host: HostId) {
    placement.set_host_online(host, true);
}

/// Fail a random `fraction` of all links. Returns the failed edge ids.
pub fn fail_random_links<R: Rng>(dcn: &mut Dcn, rng: &mut R, fraction: f64) -> Vec<EdgeIdx> {
    assert!((0.0..=1.0).contains(&fraction), "fraction in [0, 1]");
    let m = dcn.graph.edge_count();
    let want = (m as f64 * fraction).round() as usize;
    let mut ids: Vec<EdgeIdx> = (0..m).collect();
    for i in (1..m).rev() {
        ids.swap(i, rng.gen_range(0..=i));
    }
    ids.truncate(want);
    for &e in &ids {
        fail_link(dcn, e);
    }
    ids
}

/// Whether every rack can still reach every other rack over links with
/// available bandwidth above `threshold` (BFS on the live subgraph).
pub fn racks_connected(dcn: &Dcn, threshold: f64) -> bool {
    let g = &dcn.graph;
    if dcn.rack_nodes.is_empty() {
        return true;
    }
    let mut seen = vec![false; g.node_count()];
    let start = dcn.rack_nodes[0];
    seen[start] = true;
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        for &(v, e) in g.neighbors(u) {
            if !seen[v] && g.link(e).usable(threshold) {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    dcn.rack_nodes.iter().all(|&n| seen[n])
}

/// Stateful fault injector: remembers what it broke so recovery is exact.
///
/// - failed links record the bandwidth consumed at failure time and
///   restore exactly that;
/// - failed hosts are tracked so double-fail / double-restore are no-ops;
/// - crashed shims (one per rack, Sec. III-A) are a pure bookkeeping set
///   that the shim fabric consults for its liveness / degradation ladder.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    link_consumed: HashMap<EdgeIdx, f64>,
    down_hosts: BTreeSet<HostId>,
    down_shims: BTreeSet<RackId>,
    timed_crashes: Vec<(RackId, u64, Option<u64>)>,
    timed_links: Vec<(EdgeIdx, u64, Option<u64>)>,
    /// Named partitions standing at round boundaries (scheduled with no
    /// heal): they re-enter every round's schedule until healed by name.
    standing_partitions: BTreeMap<String, Vec<RackId>>,
    timed_partitions: Vec<(String, Vec<RackId>, u64, Option<u64>)>,
}

impl FaultInjector {
    /// Fresh injector with nothing failed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fail a link, remembering its pre-failure utilisation. No-op if the
    /// link is already down.
    pub fn fail_link(&mut self, dcn: &mut Dcn, e: EdgeIdx) {
        if self.link_consumed.contains_key(&e) {
            return;
        }
        let consumed = fail_link(dcn, e);
        self.link_consumed.insert(e, consumed);
    }

    /// Restore a link to its exact pre-failure utilisation. No-op if the
    /// link is not currently down.
    pub fn restore_link(&mut self, dcn: &mut Dcn, e: EdgeIdx) {
        if let Some(consumed) = self.link_consumed.remove(&e) {
            restore_link(dcn, e, consumed);
        }
    }

    /// Whether a link is currently failed by this injector.
    pub fn link_down(&self, e: EdgeIdx) -> bool {
        self.link_consumed.contains_key(&e)
    }

    /// Fail a host, returning its stranded VMs (empty if already down).
    pub fn fail_host(&mut self, placement: &mut Placement, host: HostId) -> Vec<VmId> {
        if !self.down_hosts.insert(host) {
            return Vec::new();
        }
        fail_host(placement, host)
    }

    /// Restore a failed host. No-op if the host is not down.
    pub fn restore_host(&mut self, placement: &mut Placement, host: HostId) {
        if self.down_hosts.remove(&host) {
            restore_host(placement, host);
        }
    }

    /// Whether a host is currently failed by this injector.
    pub fn host_down(&self, host: HostId) -> bool {
        self.down_hosts.contains(&host)
    }

    /// Crash a rack's shim process: it stops sending heartbeats and
    /// answering REQUESTs until [`FaultInjector::recover_shim`].
    pub fn crash_shim(&mut self, rack: RackId) {
        self.down_shims.insert(rack);
    }

    /// Recover a crashed shim.
    pub fn recover_shim(&mut self, rack: RackId) {
        self.down_shims.remove(&rack);
    }

    /// Whether a rack's shim is currently crashed.
    pub fn shim_down(&self, rack: RackId) -> bool {
        self.down_shims.contains(&rack)
    }

    /// The set of currently crashed shims, in rack order.
    pub fn crashed_shims(&self) -> impl Iterator<Item = RackId> + '_ {
        self.down_shims.iter().copied()
    }

    /// Schedule a *mid-round* shim crash in virtual time: the shim dies
    /// at tick `crash_at` of the next fabric round and — when
    /// `recover_at` is `Some` — replays its intent journal and rejoins at
    /// that tick. A `recover_at` of `None` leaves the shim down, exactly
    /// like [`FaultInjector::crash_shim`] but starting mid-round.
    ///
    /// The schedule accumulates until [`FaultInjector::drain_crash_schedule`]
    /// hands it to a runtime; the injector's end-of-round `shim_down`
    /// bookkeeping is updated then, not now.
    pub fn crash_shim_at(&mut self, rack: RackId, crash_at: u64, recover_at: Option<u64>) {
        self.timed_crashes.push((rack, crash_at, recover_at));
    }

    /// Take the pending crash schedule for the next fabric round:
    /// whole-round windows `(rack, 0, None)` for every shim already down
    /// via [`FaultInjector::crash_shim`] (unless a timed window for that
    /// rack supersedes it), followed by the timed windows in insertion
    /// order. Updates the `shim_down` end-state: a rack whose window has
    /// no `recover_at` is down after the round; one that recovers is up.
    pub fn drain_crash_schedule(&mut self) -> Vec<(RackId, u64, Option<u64>)> {
        let timed = std::mem::take(&mut self.timed_crashes);
        let mut schedule: Vec<(RackId, u64, Option<u64>)> = self
            .down_shims
            .iter()
            .filter(|r| timed.iter().all(|&(tr, _, _)| tr != **r))
            .map(|&r| (r, 0, None))
            .collect();
        for &(rack, _, recover_at) in &timed {
            if recover_at.is_some() {
                self.down_shims.remove(&rack);
            } else {
                self.down_shims.insert(rack);
            }
        }
        schedule.extend(timed);
        schedule
    }

    /// Schedule a *mid-round* link failure in virtual time: the link
    /// dies at tick `fail_at` of the next fabric round and — when
    /// `restore_at` is `Some` — comes back at that tick with its
    /// pre-failure utilisation. A `restore_at` of `None` leaves the link
    /// down across round boundaries, exactly like
    /// [`FaultInjector::fail_link`] but starting mid-round.
    ///
    /// The schedule accumulates until [`FaultInjector::drain_link_schedule`]
    /// hands it to a runtime; the injector's `link_down` bookkeeping (and
    /// the graph itself) is updated then, not now.
    pub fn fail_link_at(&mut self, e: EdgeIdx, fail_at: u64, restore_at: Option<u64>) {
        self.timed_links.push((e, fail_at, restore_at));
    }

    /// Take the pending link-fault schedule for the next fabric round:
    /// whole-round windows `(e, 0, None)` for every link already down via
    /// [`FaultInjector::fail_link`] (unless a timed window for that edge
    /// supersedes it, sorted by edge id), followed by the timed windows
    /// in insertion order. Updates the graph end-state: a link whose
    /// window has no `restore_at` is down after the round; one that
    /// restores carries its pre-failure utilisation again.
    pub fn drain_link_schedule(&mut self, dcn: &mut Dcn) -> Vec<(EdgeIdx, u64, Option<u64>)> {
        let timed = std::mem::take(&mut self.timed_links);
        let mut standing: Vec<EdgeIdx> = self
            .link_consumed
            .keys()
            .copied()
            .filter(|e| timed.iter().all(|&(te, _, _)| te != *e))
            .collect();
        standing.sort_unstable();
        let mut schedule: Vec<(EdgeIdx, u64, Option<u64>)> =
            standing.into_iter().map(|e| (e, 0, None)).collect();
        for &(e, _, restore_at) in &timed {
            if restore_at.is_some() {
                self.restore_link(dcn, e);
            } else {
                self.fail_link(dcn, e);
            }
        }
        schedule.extend(timed);
        schedule
    }

    /// Schedule a *named* network partition in the next fabric round's
    /// virtual time: from tick `start_at`, traffic between `racks` and
    /// the rest of the cluster is silently swallowed. With `heal_at` of
    /// `Some(t)` the cut heals at tick `t` of the same round; with
    /// `None` the partition stands across round boundaries until a
    /// [`FaultInjector::heal_partition_at`] names it.
    ///
    /// Partitions are pure connectivity faults: they touch no shim,
    /// host, or epoch state, so (unlike a crash) a partitioned shim is
    /// never declared dead by an emission-based failure detector.
    pub fn partition_at(
        &mut self,
        name: &str,
        racks: Vec<RackId>,
        start_at: u64,
        heal_at: Option<u64>,
    ) {
        self.timed_partitions
            .push((name.to_owned(), racks, start_at, heal_at));
    }

    /// Schedule the heal of a standing partition at tick `heal_at` of
    /// the next fabric round. No-op at drain time if no partition with
    /// that name is standing.
    pub fn heal_partition_at(&mut self, name: &str, heal_at: u64) {
        self.timed_partitions
            .push((name.to_owned(), Vec::new(), 0, Some(heal_at)));
    }

    /// Whether a partition with this name is standing (scheduled without
    /// a heal and not yet healed).
    pub fn partitioned(&self, name: &str) -> bool {
        self.standing_partitions.contains_key(name)
    }

    /// Take the pending partition schedule for the next fabric round as
    /// `(members, start_at, heal_at)` windows: every standing partition
    /// re-enters as a whole-round window `(members, 0, None)` unless a
    /// timed entry for that name supersedes it, followed by the timed
    /// windows in insertion order (a heal entry resolves its members
    /// from the standing set). Updates the standing end-state: a window
    /// without a heal stands after the round, a healed one is gone.
    pub fn drain_partition_schedule(&mut self) -> Vec<(Vec<RackId>, u64, Option<u64>)> {
        let timed = std::mem::take(&mut self.timed_partitions);
        let mut schedule: Vec<(Vec<RackId>, u64, Option<u64>)> = self
            .standing_partitions
            .iter()
            .filter(|(n, _)| timed.iter().all(|(tn, ..)| tn != *n))
            .map(|(_, racks)| (racks.clone(), 0, None))
            .collect();
        for (name, racks, start_at, heal_at) in timed {
            let members = if racks.is_empty() {
                self.standing_partitions
                    .get(&name)
                    .cloned()
                    .unwrap_or_default()
            } else {
                racks
            };
            if members.is_empty() {
                continue;
            }
            if heal_at.is_some() {
                self.standing_partitions.remove(&name);
            } else {
                self.standing_partitions.insert(name, members.clone());
            }
            schedule.push((members, start_at, heal_at));
        }
        schedule
    }

    /// The virtual ticks at which the *pending* schedules change fault
    /// state — every crash, recovery, partition cut, and heal tick from
    /// the windows queued for the next round — sorted and deduplicated.
    ///
    /// A non-draining peek: event-driven runtimes use it to seed their
    /// agenda with exactly the activation times the schedule will need,
    /// while the schedules themselves stay queued for the later
    /// [`FaultInjector::drain_crash_schedule`] /
    /// [`FaultInjector::drain_partition_schedule`].
    pub fn pending_event_times(&self) -> Vec<u64> {
        let mut ticks = BTreeSet::new();
        for &(_, crash_at, recover_at) in &self.timed_crashes {
            ticks.insert(crash_at);
            if let Some(r) = recover_at {
                ticks.insert(r);
            }
        }
        for (_, _, start_at, heal_at) in &self.timed_partitions {
            ticks.insert(*start_at);
            if let Some(h) = heal_at {
                ticks.insert(*h);
            }
        }
        for &(_, fail_at, restore_at) in &self.timed_links {
            ticks.insert(fail_at);
            if let Some(r) = restore_at {
                ticks.insert(r);
            }
        }
        ticks.into_iter().collect()
    }

    /// Borrow the injector together with an [`EventSink`]: every fault
    /// applied through the returned handle also emits a
    /// [`Event::FaultInjected`], so
    /// failure scenarios show up in the same trace as the control loop
    /// reacting to them.
    pub fn observed<'a, S: EventSink + ?Sized>(
        &'a mut self,
        sink: &'a mut S,
    ) -> ObservedFaults<'a, S> {
        ObservedFaults {
            injector: self,
            sink,
        }
    }
}

/// A [`FaultInjector`] paired with an [`EventSink`]; see
/// [`FaultInjector::observed`]. Only state-changing operations emit an
/// event (a double-fail no-op stays silent).
pub struct ObservedFaults<'a, S: EventSink + ?Sized> {
    injector: &'a mut FaultInjector,
    sink: &'a mut S,
}

impl<S: EventSink + ?Sized> ObservedFaults<'_, S> {
    /// [`FaultInjector::fail_link`], emitting `FaultInjected(LinkDown)`.
    pub fn fail_link(&mut self, dcn: &mut Dcn, e: EdgeIdx) {
        if !self.injector.link_down(e) {
            self.injector.fail_link(dcn, e);
            emit(self.sink, || Event::FaultInjected {
                kind: FaultKind::LinkDown,
                id: e as u64,
            });
        }
    }

    /// [`FaultInjector::restore_link`], emitting `FaultInjected(LinkUp)`.
    pub fn restore_link(&mut self, dcn: &mut Dcn, e: EdgeIdx) {
        if self.injector.link_down(e) {
            self.injector.restore_link(dcn, e);
            emit(self.sink, || Event::FaultInjected {
                kind: FaultKind::LinkUp,
                id: e as u64,
            });
        }
    }

    /// [`FaultInjector::fail_link_at`], emitting `FaultInjected(LinkDown)`
    /// when the schedule entry is recorded (the mid-round timing itself
    /// shows up as `TransferStalled`/`TransferResumed` in the fabric's
    /// trace).
    pub fn fail_link_at(&mut self, e: EdgeIdx, fail_at: u64, restore_at: Option<u64>) {
        self.injector.fail_link_at(e, fail_at, restore_at);
        emit(self.sink, || Event::FaultInjected {
            kind: FaultKind::LinkDown,
            id: e as u64,
        });
    }

    /// [`FaultInjector::fail_host`], emitting `FaultInjected(HostDown)`.
    pub fn fail_host(&mut self, placement: &mut Placement, host: HostId) -> Vec<VmId> {
        if self.injector.host_down(host) {
            return Vec::new();
        }
        let stranded = self.injector.fail_host(placement, host);
        emit(self.sink, || Event::FaultInjected {
            kind: FaultKind::HostDown,
            id: host.index() as u64,
        });
        stranded
    }

    /// [`FaultInjector::restore_host`], emitting `FaultInjected(HostUp)`.
    pub fn restore_host(&mut self, placement: &mut Placement, host: HostId) {
        if self.injector.host_down(host) {
            self.injector.restore_host(placement, host);
            emit(self.sink, || Event::FaultInjected {
                kind: FaultKind::HostUp,
                id: host.index() as u64,
            });
        }
    }

    /// [`FaultInjector::crash_shim`], emitting `FaultInjected(ShimDown)`.
    pub fn crash_shim(&mut self, rack: RackId) {
        if !self.injector.shim_down(rack) {
            self.injector.crash_shim(rack);
            emit(self.sink, || Event::FaultInjected {
                kind: FaultKind::ShimDown,
                id: rack.index() as u64,
            });
        }
    }

    /// [`FaultInjector::crash_shim_at`], emitting `FaultInjected(ShimDown)`
    /// when the schedule entry is recorded (the mid-round timing itself
    /// shows up as `ShimCrashed`/`ShimRecovered` in the fabric's trace).
    pub fn crash_shim_at(&mut self, rack: RackId, crash_at: u64, recover_at: Option<u64>) {
        self.injector.crash_shim_at(rack, crash_at, recover_at);
        emit(self.sink, || Event::FaultInjected {
            kind: FaultKind::ShimDown,
            id: rack.index() as u64,
        });
    }

    /// [`FaultInjector::recover_shim`], emitting `FaultInjected(ShimUp)`.
    pub fn recover_shim(&mut self, rack: RackId) {
        if self.injector.shim_down(rack) {
            self.injector.recover_shim(rack);
            emit(self.sink, || Event::FaultInjected {
                kind: FaultKind::ShimUp,
                id: rack.index() as u64,
            });
        }
    }

    /// [`FaultInjector::partition_at`], emitting `FaultInjected(Partition)`
    /// with the member count as its id (the in-round cut and heal show up
    /// as `PartitionHealed` in the fabric's own trace).
    pub fn partition_at(
        &mut self,
        name: &str,
        racks: Vec<RackId>,
        start_at: u64,
        heal_at: Option<u64>,
    ) {
        let members = racks.len() as u64;
        self.injector.partition_at(name, racks, start_at, heal_at);
        emit(self.sink, || Event::FaultInjected {
            kind: FaultKind::Partition,
            id: members,
        });
    }

    /// [`FaultInjector::heal_partition_at`], emitting `FaultInjected(Heal)`.
    pub fn heal_partition_at(&mut self, name: &str, heal_at: u64) {
        self.injector.heal_partition_at(name, heal_at);
        emit(self.sink, || Event::FaultInjected {
            kind: FaultKind::Heal,
            id: heal_at,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::fattree::{self, FatTreeConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fail_and_restore_roundtrip() {
        let mut dcn = fattree::build(&FatTreeConfig::paper(4));
        let consumed = fail_link(&mut dcn, 0);
        assert_eq!(consumed, 0.0, "pristine link carries no traffic");
        assert_eq!(dcn.graph.link(0).available_bw, 0.0);
        assert!(!dcn.graph.link(0).usable(0.01));
        restore_link(&mut dcn, 0, consumed);
        assert_eq!(dcn.graph.link(0).available_bw, dcn.graph.link(0).capacity);
    }

    #[test]
    fn restore_preserves_prior_utilization() {
        // the regression this fixes: a partially-utilised link must come
        // back with its old utilisation, not with full headroom
        let mut dcn = fattree::build(&FatTreeConfig::paper(4));
        let cap = dcn.graph.link(0).capacity;
        dcn.graph.link_mut(0).consume(cap * 0.4);
        let before = dcn.graph.link(0).available_bw;
        let consumed = fail_link(&mut dcn, 0);
        assert!((consumed - cap * 0.4).abs() < 1e-9);
        restore_link(&mut dcn, 0, consumed);
        assert!((dcn.graph.link(0).available_bw - before).abs() < 1e-9);
    }

    #[test]
    fn fattree_survives_single_link_failure() {
        // fat-trees are multipath: one dead link never partitions racks
        let base = fattree::build(&FatTreeConfig::paper(4));
        for e in 0..base.graph.edge_count() {
            let mut dcn = base.clone();
            fail_link(&mut dcn, e);
            assert!(
                racks_connected(&dcn, 0.01),
                "edge {e} partitioned the fabric"
            );
        }
    }

    #[test]
    fn random_failures_eventually_partition() {
        let mut dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut rng = StdRng::seed_from_u64(5);
        let failed = fail_random_links(&mut dcn, &mut rng, 0.9);
        assert_eq!(
            failed.len(),
            (dcn.graph.edge_count() as f64 * 0.9).round() as usize
        );
        assert!(
            !racks_connected(&dcn, 0.01),
            "90% failures should partition"
        );
    }

    #[test]
    fn zero_fraction_fails_nothing() {
        let mut dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut rng = StdRng::seed_from_u64(1);
        assert!(fail_random_links(&mut dcn, &mut rng, 0.0).is_empty());
        assert!(racks_connected(&dcn, 0.01));
    }

    #[test]
    fn metric_routes_around_failed_links() {
        use crate::migration::RackMetric;
        use crate::SimConfig;
        use dcn_topology::RackId;
        let mut dcn = fattree::build(&FatTreeConfig::paper(4));
        let sim = SimConfig::paper();
        let before = RackMetric::build(&dcn, &sim);
        // kill one of rack 0's two uplinks
        let node = dcn.rack_node(RackId(0));
        let (_, e) = dcn.graph.neighbors(node)[0];
        fail_link(&mut dcn, e);
        let after = RackMetric::build(&dcn, &sim);
        // still reachable through the second uplink
        assert!(after.reachable(RackId(0), RackId(1)));
        // and never cheaper than the healthy fabric
        let b = before.transmission_cost(&sim, 10.0, RackId(0), RackId(1));
        let a = after.transmission_cost(&sim, 10.0, RackId(0), RackId(1));
        assert!(a >= b - 1e-9);
    }

    #[test]
    fn injector_link_roundtrip_is_exact_and_idempotent() {
        let mut dcn = fattree::build(&FatTreeConfig::paper(4));
        let cap = dcn.graph.link(3).capacity;
        dcn.graph.link_mut(3).consume(cap * 0.25);
        let before = dcn.graph.link(3).available_bw;
        let mut inj = FaultInjector::new();
        inj.fail_link(&mut dcn, 3);
        inj.fail_link(&mut dcn, 3); // double-fail is a no-op
        assert!(inj.link_down(3));
        assert_eq!(dcn.graph.link(3).available_bw, 0.0);
        inj.restore_link(&mut dcn, 3);
        inj.restore_link(&mut dcn, 3); // double-restore is a no-op
        assert!(!inj.link_down(3));
        assert!((dcn.graph.link(3).available_bw - before).abs() < 1e-9);
    }

    #[test]
    fn injector_host_failure_strands_vms() {
        use crate::engine::{Cluster, ClusterConfig};
        use crate::SimConfig;
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut cluster = Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 2.0,
                seed: 3,
                ..ClusterConfig::default()
            },
            SimConfig::paper(),
        );
        let host = HostId(0);
        let resident_before = cluster.placement.vms_on(host).len();
        let mut inj = FaultInjector::new();
        let stranded = inj.fail_host(&mut cluster.placement, host);
        assert_eq!(stranded.len(), resident_before);
        assert!(inj.host_down(host));
        assert_eq!(cluster.placement.free_capacity(host), 0.0);
        assert!(inj.fail_host(&mut cluster.placement, host).is_empty());
        inj.restore_host(&mut cluster.placement, host);
        assert!(!inj.host_down(host));
        assert!(cluster.placement.is_host_online(host));
    }

    #[test]
    fn observed_injector_emits_fault_events() {
        use sheriff_obs::RingRecorder;
        let mut dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut inj = FaultInjector::new();
        let mut rec = RingRecorder::new(16);
        let mut obs = inj.observed(&mut rec);
        obs.fail_link(&mut dcn, 2);
        obs.fail_link(&mut dcn, 2); // no-op: no second event
        obs.crash_shim(RackId(1));
        obs.restore_link(&mut dcn, 2);
        assert_eq!(
            rec.to_vec(),
            vec![
                Event::FaultInjected {
                    kind: FaultKind::LinkDown,
                    id: 2
                },
                Event::FaultInjected {
                    kind: FaultKind::ShimDown,
                    id: 1
                },
                Event::FaultInjected {
                    kind: FaultKind::LinkUp,
                    id: 2
                },
            ]
        );
        assert!(inj.shim_down(RackId(1)));
        assert!(!inj.link_down(2));
    }

    #[test]
    fn timed_crash_schedule_drains_with_whole_round_prefix() {
        let mut inj = FaultInjector::new();
        inj.crash_shim(RackId(0));
        inj.crash_shim_at(RackId(1), 4, Some(12));
        inj.crash_shim_at(RackId(2), 6, None);
        let sched = inj.drain_crash_schedule();
        assert_eq!(
            sched,
            vec![
                (RackId(0), 0, None),
                (RackId(1), 4, Some(12)),
                (RackId(2), 6, None),
            ]
        );
        // end-state after the round: rack 1 recovered, racks 0 and 2 down
        assert!(inj.shim_down(RackId(0)));
        assert!(!inj.shim_down(RackId(1)));
        assert!(inj.shim_down(RackId(2)));
        // the timed entries drained; still-down shims persist whole-round
        assert_eq!(
            inj.drain_crash_schedule(),
            vec![(RackId(0), 0, None), (RackId(2), 0, None)]
        );
    }

    #[test]
    fn timed_link_schedule_drains_with_whole_round_prefix() {
        let mut dcn = fattree::build(&FatTreeConfig::paper(4));
        let cap = dcn.graph.link(7).capacity;
        dcn.graph.link_mut(7).consume(cap * 0.5);
        let before = dcn.graph.link(7).available_bw;
        let mut inj = FaultInjector::new();
        inj.fail_link(&mut dcn, 2); // standing down, whole-round prefix
        inj.fail_link_at(7, 3, Some(9)); // mid-round blip, restored at drain
        inj.fail_link_at(5, 4, None); // stays down after the round
        assert_eq!(inj.pending_event_times(), vec![3, 4, 9]);
        let sched = inj.drain_link_schedule(&mut dcn);
        assert_eq!(sched, vec![(2, 0, None), (7, 3, Some(9)), (5, 4, None)]);
        // end-state after the round: 7 back at its old utilisation, 2 and
        // 5 dead on the graph and tracked by the injector
        assert!((dcn.graph.link(7).available_bw - before).abs() < 1e-9);
        assert!(!inj.link_down(7));
        assert!(inj.link_down(2) && inj.link_down(5));
        assert_eq!(dcn.graph.link(5).available_bw, 0.0);
        // the timed entries drained; still-down links persist whole-round
        assert_eq!(
            inj.drain_link_schedule(&mut dcn),
            vec![(2, 0, None), (5, 0, None)]
        );
    }

    #[test]
    fn pending_event_times_peek_sorted_without_draining() {
        let mut inj = FaultInjector::new();
        assert!(inj.pending_event_times().is_empty());
        inj.crash_shim_at(RackId(1), 9, Some(20));
        inj.crash_shim_at(RackId(2), 4, None);
        inj.partition_at("west", vec![RackId(0)], 9, Some(15));
        assert_eq!(inj.pending_event_times(), vec![4, 9, 15, 20]);
        // peeking drains nothing: the schedules still hand out every window
        assert_eq!(inj.drain_crash_schedule().len(), 2);
        assert_eq!(inj.drain_partition_schedule().len(), 1);
        // whole-round state (already-down shims) has no in-round tick
        assert!(inj.pending_event_times().is_empty());
    }

    #[test]
    fn injector_tracks_shim_crashes() {
        let mut inj = FaultInjector::new();
        inj.crash_shim(RackId(2));
        inj.crash_shim(RackId(0));
        assert!(inj.shim_down(RackId(2)));
        assert!(!inj.shim_down(RackId(1)));
        let crashed: Vec<RackId> = inj.crashed_shims().collect();
        assert_eq!(crashed, vec![RackId(0), RackId(2)]);
        inj.recover_shim(RackId(2));
        assert!(!inj.shim_down(RackId(2)));
    }

    #[test]
    fn partition_schedule_stands_until_healed_by_name() {
        let mut inj = FaultInjector::new();
        // in-round window heals itself and never stands
        inj.partition_at("blip", vec![RackId(3)], 2, Some(9));
        // named cut with no heal stands across rounds
        inj.partition_at("west", vec![RackId(0), RackId(1)], 4, None);
        assert_eq!(
            inj.drain_partition_schedule(),
            vec![
                (vec![RackId(3)], 2, Some(9)),
                (vec![RackId(0), RackId(1)], 4, None),
            ]
        );
        assert!(inj.partitioned("west"));
        assert!(!inj.partitioned("blip"));
        // the standing partition re-enters whole-round until healed
        assert_eq!(
            inj.drain_partition_schedule(),
            vec![(vec![RackId(0), RackId(1)], 0, None)]
        );
        inj.heal_partition_at("west", 6);
        assert_eq!(
            inj.drain_partition_schedule(),
            vec![(vec![RackId(0), RackId(1)], 0, Some(6))]
        );
        assert!(!inj.partitioned("west"));
        assert!(inj.drain_partition_schedule().is_empty());
        // healing an unknown name is a drain-time no-op
        inj.heal_partition_at("east", 3);
        assert!(inj.drain_partition_schedule().is_empty());
    }

    #[test]
    fn restore_paths_touch_no_shim_or_partition_state() {
        // the epoch-safety audit for the injector: host/link restore must
        // not resurrect a shim (or tear a partition down) as a side
        // effect — epochs live solely with the failover state, whose only
        // writer is monotonic, so a restored fault can never roll a shim
        // back into an old epoch
        use crate::engine::{Cluster, ClusterConfig};
        use crate::SimConfig;
        let mut dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut cluster = Cluster::build(
            dcn.clone(),
            &ClusterConfig {
                seed: 5,
                ..ClusterConfig::default()
            },
            SimConfig::paper(),
        );
        let mut inj = FaultInjector::new();
        inj.crash_shim(RackId(1));
        inj.partition_at("west", vec![RackId(0)], 0, None);
        let _ = inj.drain_partition_schedule();
        inj.fail_link(&mut dcn, 2);
        let _ = inj.fail_host(&mut cluster.placement, HostId(0));
        inj.restore_link(&mut dcn, 2);
        inj.restore_host(&mut cluster.placement, HostId(0));
        assert!(inj.shim_down(RackId(1)), "restore must not revive shims");
        assert!(inj.partitioned("west"), "restore must not heal partitions");
        // and the crash schedule still reports the shim down whole-round
        assert_eq!(inj.drain_crash_schedule(), vec![(RackId(1), 0, None)]);
    }
}

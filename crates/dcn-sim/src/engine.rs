//! Round-based cluster simulation: topology + placement + workloads +
//! dependencies, with pluggable per-VM workload prediction and the alert
//! generation that drives the controllers (Sec. VI-B's experimental
//! setup).

use crate::alert::{Alert, AlertSource};
use crate::config::SimConfig;
use crate::error::SheriffError;
use crate::workload::{Feature, Profile, VmWorkload};
use dcn_topology::dependency::DependencyGraph;
use dcn_topology::{Dcn, HostId, Placement, RackId, VmId, VmSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters for populating a [`Cluster`] with VMs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Average VMs per host.
    pub vms_per_host: f64,
    /// VM capacity is drawn uniformly from this range (paper caps at 20).
    pub vm_capacity_range: (f64, f64),
    /// VM value (the knapsack objective in Alg. 2) range.
    pub vm_value_range: (f64, f64),
    /// Fraction of VMs marked delay-sensitive (never migrated).
    pub delay_sensitive_fraction: f64,
    /// Average dependency degree in `G_d`.
    pub dependency_degree: f64,
    /// Time steps of synthetic workload attached to each VM (0 = none;
    /// the scale sweeps of Fig. 11–14 do not need traces).
    pub workload_len: usize,
    /// Placement skew exponent: 0 = uniform host choice, larger values
    /// concentrate VMs on low-index hosts of each rack, producing the
    /// initial imbalance visible at round 0 of Fig. 9/10.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            vms_per_host: 3.0,
            vm_capacity_range: (5.0, 20.0),
            vm_value_range: (1.0, 10.0),
            delay_sensitive_fraction: 0.1,
            dependency_degree: 2.0,
            workload_len: 0,
            skew: 2.0,
            seed: 0xC10D,
        }
    }
}

impl ClusterConfig {
    /// Check every field is in the range the population loop relies on
    /// (ranges ordered, probabilities in `[0, 1]`, rates finite and
    /// non-negative) — the invariants that otherwise surface as panics
    /// deep inside `rand`.
    pub fn validate(&self) -> Result<(), SheriffError> {
        let bad = |field: &'static str, reason: String| {
            Err(SheriffError::InvalidClusterConfig { field, reason })
        };
        if !self.vms_per_host.is_finite() || self.vms_per_host < 0.0 {
            return bad(
                "vms_per_host",
                format!("must be finite and >= 0, got {}", self.vms_per_host),
            );
        }
        let (lo, hi) = self.vm_capacity_range;
        if !(lo.is_finite() && hi.is_finite()) || lo <= 0.0 || hi < lo {
            return bad(
                "vm_capacity_range",
                format!("needs 0 < lo <= hi, got ({lo}, {hi})"),
            );
        }
        let (vlo, vhi) = self.vm_value_range;
        if !(vlo.is_finite() && vhi.is_finite()) || vlo < 0.0 || vhi < vlo {
            return bad(
                "vm_value_range",
                format!("needs 0 <= lo <= hi, got ({vlo}, {vhi})"),
            );
        }
        if !self.delay_sensitive_fraction.is_finite()
            || !(0.0..=1.0).contains(&self.delay_sensitive_fraction)
        {
            return bad(
                "delay_sensitive_fraction",
                format!("must be in [0, 1], got {}", self.delay_sensitive_fraction),
            );
        }
        if !self.dependency_degree.is_finite() || self.dependency_degree < 0.0 {
            return bad(
                "dependency_degree",
                format!("must be finite and >= 0, got {}", self.dependency_degree),
            );
        }
        if !self.skew.is_finite() || self.skew < 0.0 {
            return bad(
                "skew",
                format!("must be finite and >= 0, got {}", self.skew),
            );
        }
        Ok(())
    }
}

/// A fully-populated simulated data center.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The network.
    pub dcn: Dcn,
    /// Live VM → host assignment.
    pub placement: Placement,
    /// VM dependency/conflict graph.
    pub deps: DependencyGraph,
    /// Per-VM workload traces (empty when `workload_len == 0`).
    pub workloads: Vec<VmWorkload>,
    /// Simulation parameters.
    pub sim: SimConfig,
}

impl Cluster {
    /// Populate a topology with VMs according to `ccfg`.
    ///
    /// Panics on invalid configuration; use [`Cluster::try_build`] (or
    /// the `SystemBuilder` in `sheriff-core`) to get a typed error
    /// instead.
    pub fn build(dcn: Dcn, ccfg: &ClusterConfig, sim: SimConfig) -> Self {
        Self::try_build(dcn, ccfg, sim).expect("invalid cluster configuration")
    }

    /// Fallible [`Cluster::build`]: validates the topology and both
    /// configs before populating, returning a [`SheriffError`] on any
    /// out-of-range field instead of panicking mid-population.
    pub fn try_build(dcn: Dcn, ccfg: &ClusterConfig, sim: SimConfig) -> Result<Self, SheriffError> {
        if dcn.inventory.host_count() == 0 {
            return Err(SheriffError::EmptyTopology);
        }
        ccfg.validate()?;
        sim.validate()?;
        let mut rng = StdRng::seed_from_u64(ccfg.seed);
        let mut placement = Placement::new(&dcn.inventory);
        let host_count = dcn.inventory.host_count();
        let target_vms = (host_count as f64 * ccfg.vms_per_host).round() as usize;

        // Hotspots are scattered: skew concentrates load on a random
        // *permutation* of the hosts, so every region contains a mix of
        // hot and cold hosts (as in production hotspot studies) and the
        // initial imbalance of Fig. 9/10 is reachable by regional
        // balancing.
        let mut perm: Vec<usize> = (0..host_count).collect();
        for i in (1..host_count).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }

        let mut workloads = Vec::new();
        let (lo, hi) = ccfg.vm_capacity_range;
        let (vlo, vhi) = ccfg.vm_value_range;
        let mut placed = 0usize;
        let mut attempts = 0usize;
        while placed < target_vms && attempts < target_vms * 20 {
            attempts += 1;
            // skewed host pick: u^(1+skew) biases toward the front of the
            // shuffled host order
            let u: f64 = rng.gen::<f64>();
            let h = ((u.powf(1.0 + ccfg.skew)) * host_count as f64) as usize;
            let host = HostId::from_index(perm[h.min(host_count - 1)]);
            let spec = VmSpec {
                id: placement.next_vm_id(),
                capacity: rng.gen_range(lo..=hi),
                value: rng.gen_range(vlo..=vhi),
                delay_sensitive: rng.gen_bool(ccfg.delay_sensitive_fraction),
            };
            if placement.add_vm(spec, host).is_ok() {
                placed += 1;
                if ccfg.workload_len > 0 {
                    workloads.push(VmWorkload::synthetic(
                        ccfg.workload_len,
                        ccfg.seed.wrapping_add(placed as u64 * 7919),
                    ));
                }
            }
        }
        // Dependent VMs cannot share a host (the conflict-graph premise of
        // Sec. II-C), so the generated G_d must respect the initial
        // placement: co-located pairs never become dependent.
        let n = placement.vm_count();
        let mut deps = DependencyGraph::new(n);
        if n >= 2 {
            let p = (ccfg.dependency_degree / (n as f64 - 1.0)).clamp(0.0, 1.0);
            for a in 0..n {
                for b in (a + 1)..n {
                    let (va, vb) = (VmId::from_index(a), VmId::from_index(b));
                    if placement.host_of(va) != placement.host_of(vb) && rng.gen_bool(p) {
                        deps.add_dependency(va, vb);
                    }
                }
            }
        }
        Ok(Self {
            dcn,
            placement,
            deps,
            workloads,
            sim,
        })
    }

    /// Observed profile of a VM at step `t` (requires workloads).
    pub fn profile_at(&self, vm: VmId, t: usize) -> Profile {
        self.workloads[vm.index()].at(t)
    }

    /// Generate host-overload alerts from *predicted* profiles: for each
    /// VM whose predicted profile at `t+1` crosses the threshold, its host
    /// raises one alert to the owning shim (deduplicated per host, keeping
    /// the worst severity). This is Sheriff's pre-alert path.
    pub fn predicted_alerts<P: ProfilePredictor>(&self, predictor: &P, t: usize) -> Vec<Alert> {
        let mut per_host: std::collections::HashMap<HostId, f64> = std::collections::HashMap::new();
        for vm in self.placement.vm_ids() {
            let w = &self.workloads[vm.index()];
            let predicted = predictor.predict(w, t);
            let v = crate::alert::alert_value(&predicted, self.sim.alert_threshold);
            if v > 0.0 {
                let host = self.placement.host_of(vm);
                // a failed host raises no pre-alerts: its evacuation is
                // driven by the fault injector's stranded-VM work-list
                if !self.placement.is_host_online(host) {
                    continue;
                }
                let cur = per_host.entry(host).or_insert(0.0);
                if v > *cur {
                    *cur = v;
                }
            }
        }
        let mut alerts: Vec<Alert> = per_host
            .into_iter()
            .map(|(host, severity)| Alert {
                rack: self.placement.rack_of_host(host),
                source: AlertSource::Host(host),
                severity,
                time: t,
            })
            .collect();
        alerts.sort_by_key(|a| match a.source {
            AlertSource::Host(h) => h.index(),
            _ => usize::MAX,
        });
        alerts
    }

    /// The Fig. 9–14 protocol: "five percent of virtual machines in each
    /// pod raise alerts for migration". The alerting VMs sit on the
    /// hottest hosts scattered across the network, so the alert set is
    /// one host alert on each of the `fraction × vm_count` most-utilised
    /// *distinct* hosts (each such host sheds one VM via PRIORITY's
    /// `w = 1` branch, so the number of migrating VMs matches the paper's
    /// fraction).
    pub fn fraction_alerts(&self, fraction: f64, t: usize) -> Vec<Alert> {
        let n = self.placement.vm_count();
        let want = ((n as f64 * fraction).ceil() as usize).clamp(1, self.placement.host_count());
        let mut hosts: Vec<HostId> = (0..self.placement.host_count())
            .map(HostId::from_index)
            .filter(|&h| !self.placement.vms_on(h).is_empty() && self.placement.is_host_online(h))
            .collect();
        hosts.sort_by(|&a, &b| {
            self.placement
                .utilization(b)
                .partial_cmp(&self.placement.utilization(a))
                .expect("utilisation is never NaN")
                .then(a.cmp(&b))
        });
        hosts
            .into_iter()
            .take(want)
            .map(|host| Alert {
                rack: self.placement.rack_of_host(host),
                source: AlertSource::Host(host),
                severity: self.placement.utilization(host).min(1.0),
                time: t,
            })
            .collect()
    }

    /// Workload-percentage standard deviation across hosts (Fig. 9/10's
    /// y-axis).
    pub fn utilization_stddev(&self) -> f64 {
        self.placement.utilization_stddev()
    }

    /// Racks within the shim's dominating region of `rack` (cached lookup
    /// on the topology with the configured hop radius).
    pub fn region_of(&self, rack: RackId) -> Vec<RackId> {
        self.dcn.neighbor_racks(rack, self.sim.region_hops)
    }
}

/// One-step-ahead workload-profile prediction, pluggable so the examples
/// can use real ARIMA/NARNET forecasting while large sweeps use cheap
/// predictors.
pub trait ProfilePredictor {
    /// Predict the profile at step `t` given history strictly before `t`.
    fn predict(&self, workload: &VmWorkload, t: usize) -> Profile;

    /// Predict the profile `h ≥ 1` steps past the last observation before
    /// `t` (the paper's k-step-ahead prediction, Sec. IV-B). The default
    /// ignores the horizon — overridden by trend-aware predictors.
    fn predict_ahead(&self, workload: &VmWorkload, t: usize, _h: usize) -> Profile {
        self.predict(workload, t)
    }
}

/// Naive predictor: tomorrow looks like today.
#[derive(Debug, Clone, Copy, Default)]
pub struct LastValue;

impl ProfilePredictor for LastValue {
    fn predict(&self, workload: &VmWorkload, t: usize) -> Profile {
        workload.at(t.saturating_sub(1))
    }
}

/// Exponentially-weighted moving average with linear trend extrapolation —
/// a cheap stand-in for the full ARIMA pipeline in large simulations
/// (double exponential smoothing, Holt's method).
#[derive(Debug, Clone, Copy)]
pub struct HoltPredictor {
    /// Level smoothing factor.
    pub alpha: f64,
    /// Trend smoothing factor.
    pub beta: f64,
}

impl Default for HoltPredictor {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            beta: 0.2,
        }
    }
}

impl HoltPredictor {
    fn smooth(&self, h: &[f64]) -> (f64, f64) {
        if h.is_empty() {
            return (0.0, 0.0);
        }
        let mut level = h[0];
        let mut trend = 0.0;
        for &y in &h[1..] {
            let prev = level;
            level = self.alpha * y + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev) + (1.0 - self.beta) * trend;
        }
        (level, trend)
    }

    fn predict_series(&self, h: &[f64], horizon: usize) -> f64 {
        let (level, trend) = self.smooth(h);
        (level + horizon as f64 * trend).clamp(0.0, 1.0)
    }
}

impl ProfilePredictor for HoltPredictor {
    fn predict(&self, workload: &VmWorkload, t: usize) -> Profile {
        self.predict_ahead(workload, t, 1)
    }

    fn predict_ahead(&self, workload: &VmWorkload, t: usize, h: usize) -> Profile {
        let f = |feat: Feature| self.predict_series(workload.feature_history(feat, t), h.max(1));
        Profile {
            cpu: f(Feature::Cpu),
            mem: f(Feature::Mem),
            io: f(Feature::Io),
            trf: f(Feature::Trf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::fattree::{self, FatTreeConfig};

    fn small_cluster(workload_len: usize) -> Cluster {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let ccfg = ClusterConfig {
            workload_len,
            vms_per_host: 2.0,
            seed: 42,
            ..ClusterConfig::default()
        };
        Cluster::build(dcn, &ccfg, SimConfig::paper())
    }

    #[test]
    fn build_populates_vms_within_capacity() {
        let c = small_cluster(0);
        assert!(c.placement.vm_count() > 0);
        for h in 0..c.placement.host_count() {
            let host = HostId::from_index(h);
            assert!(c.placement.used_capacity(host) <= c.placement.host_capacity(host) + 1e-9);
        }
    }

    #[test]
    fn skewed_placement_is_imbalanced() {
        let c = small_cluster(0);
        assert!(
            c.utilization_stddev() > 10.0,
            "skew should create imbalance, got {}",
            c.utilization_stddev()
        );
    }

    #[test]
    fn build_is_deterministic() {
        let a = small_cluster(0);
        let b = small_cluster(0);
        assert_eq!(a.placement.vm_count(), b.placement.vm_count());
        for vm in a.placement.vm_ids() {
            assert_eq!(a.placement.host_of(vm), b.placement.host_of(vm));
        }
    }

    #[test]
    fn try_build_rejects_bad_configs() {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let bad = ClusterConfig {
            vm_capacity_range: (10.0, 5.0),
            ..ClusterConfig::default()
        };
        let err = Cluster::try_build(dcn.clone(), &bad, SimConfig::paper()).unwrap_err();
        assert!(matches!(
            err,
            crate::error::SheriffError::InvalidClusterConfig {
                field: "vm_capacity_range",
                ..
            }
        ));
        let bad = ClusterConfig {
            delay_sensitive_fraction: 2.0,
            ..ClusterConfig::default()
        };
        assert!(Cluster::try_build(dcn.clone(), &bad, SimConfig::paper()).is_err());
        let ok = Cluster::try_build(dcn, &ClusterConfig::default(), SimConfig::paper());
        assert!(ok.is_ok());
    }

    #[test]
    fn fraction_alerts_targets_loaded_hosts() {
        let c = small_cluster(0);
        let alerts = c.fraction_alerts(0.05, 0);
        assert!(!alerts.is_empty());
        // alerted hosts must be at least as utilised as the cluster mean
        let mean: f64 = (0..c.placement.host_count())
            .map(|h| c.placement.utilization(HostId::from_index(h)))
            .sum::<f64>()
            / c.placement.host_count() as f64;
        for a in &alerts {
            let AlertSource::Host(h) = a.source else {
                panic!("expected host alerts");
            };
            assert!(c.placement.utilization(h) >= mean * 0.99);
        }
    }

    #[test]
    fn predicted_alerts_fire_on_hot_workloads() {
        let c = small_cluster(144);
        let alerts = c.predicted_alerts(&HoltPredictor::default(), 100);
        // synthetic CPU traces regularly exceed 0.9; some alert must fire
        // across ~32 VMs x 144 steps
        for a in &alerts {
            assert!(a.severity > c.sim.alert_threshold);
            assert!(matches!(a.source, AlertSource::Host(_)));
        }
    }

    #[test]
    fn holt_predictor_tracks_trend() {
        let p = HoltPredictor::default();
        let rising: Vec<f64> = (0..50).map(|t| 0.01 * t as f64).collect();
        let pred = p.predict_series(&rising, 1);
        assert!(
            pred >= 0.49,
            "trend extrapolation should reach the next value, got {pred}"
        );
        assert!(p.predict_series(&[], 1) == 0.0);
    }

    #[test]
    fn last_value_predictor_echoes_history() {
        let c = small_cluster(50);
        let vm = VmId(0);
        let w = &c.workloads[vm.index()];
        let p = LastValue.predict(w, 10);
        assert_eq!(p, w.at(9));
    }

    #[test]
    fn region_respects_hop_radius() {
        let c = small_cluster(0);
        let region = c.region_of(RackId(0));
        // two hops in a 4-pod fat-tree reaches only the pod peer
        assert_eq!(region, vec![RackId(1)]);
    }
}

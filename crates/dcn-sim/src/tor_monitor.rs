//! ToR uplink monitoring and prediction (Sec. III-B.3, IV-A): "shim
//! should monitor the uplink flow rate of its local ToR proactively and
//! distinguish the possibility of uplink congestion … Using the historic
//! information about the queue length, we can predict future queue
//! length."
//!
//! Each rack's uplink utilisation (outbound flow rate over aggregate
//! uplink capacity) is recorded per round; a double-exponential forecast
//! over the history raises LocalTor pre-alerts before the uplink
//! saturates.

use crate::alert::{Alert, AlertSource};
use crate::flows::FlowNetwork;
use dcn_topology::{Dcn, Placement, RackId};
use serde::{Deserialize, Serialize};

/// Rolling per-rack uplink utilisation history with prediction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TorMonitor {
    /// history\[rack\] = utilisation series, oldest first.
    history: Vec<Vec<f64>>,
    /// Aggregate uplink capacity per rack (Σ edge-link capacities).
    uplink_capacity: Vec<f64>,
    /// Keep at most this many samples per rack.
    window: usize,
    /// Holt smoothing parameters (level, trend).
    pub alpha: f64,
    /// Trend gain.
    pub beta: f64,
}

impl TorMonitor {
    /// Monitor over every rack of the topology.
    pub fn new(dcn: &Dcn, window: usize) -> Self {
        assert!(window >= 4, "need a few samples to predict");
        let uplink_capacity = (0..dcn.rack_count())
            .map(|r| {
                let node = dcn.rack_node(RackId::from_index(r));
                dcn.graph
                    .neighbors(node)
                    .iter()
                    .map(|&(_, e)| dcn.graph.link(e).capacity)
                    .sum()
            })
            .collect();
        Self {
            history: vec![Vec::new(); dcn.rack_count()],
            uplink_capacity,
            window,
            alpha: 0.4,
            beta: 0.1,
        }
    }

    /// Record this round's uplink utilisation from the flow network.
    pub fn record(&mut self, flows: &FlowNetwork, placement: &Placement) {
        let uplink = flows.tor_uplink(placement, self.history.len());
        for (r, &load) in uplink.iter().enumerate() {
            let u = if self.uplink_capacity[r] > 0.0 {
                load / self.uplink_capacity[r]
            } else {
                0.0
            };
            let h = &mut self.history[r];
            h.push(u);
            if h.len() > self.window {
                h.remove(0);
            }
        }
    }

    /// Utilisation history of one rack.
    pub fn history(&self, rack: RackId) -> &[f64] {
        &self.history[rack.index()]
    }

    /// Holt forecast of a rack's utilisation `horizon` steps out.
    pub fn predict(&self, rack: RackId, horizon: usize) -> f64 {
        let h = &self.history[rack.index()];
        if h.is_empty() {
            return 0.0;
        }
        let mut level = h[0];
        let mut trend = 0.0;
        for &y in &h[1..] {
            let prev = level;
            level = self.alpha * y + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev) + (1.0 - self.beta) * trend;
        }
        (level + horizon as f64 * trend).max(0.0)
    }

    /// LocalTor pre-alerts: racks whose *predicted* uplink utilisation
    /// crosses `threshold` within `horizon` steps (requires at least 4
    /// samples so the trend is meaningful).
    pub fn predicted_alerts(&self, threshold: f64, horizon: usize, t: usize) -> Vec<Alert> {
        (0..self.history.len())
            .filter(|&r| self.history[r].len() >= 4)
            .filter_map(|r| {
                let rack = RackId::from_index(r);
                let predicted = self.predict(rack, horizon);
                (predicted > threshold).then(|| Alert {
                    rack,
                    source: AlertSource::LocalTor(rack),
                    severity: predicted.min(1.0),
                    time: t,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::Flow;
    use dcn_topology::fattree::{self, FatTreeConfig};
    use dcn_topology::{HostId, VmId, VmSpec};

    fn setup(rate: f64) -> (Dcn, Placement, FlowNetwork) {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut p = Placement::new(&dcn.inventory);
        for h in [0usize, 2] {
            let s = VmSpec {
                id: p.next_vm_id(),
                capacity: 5.0,
                value: 1.0,
                delay_sensitive: false,
            };
            p.add_vm(s, HostId::from_index(h)).unwrap();
        }
        let flows = FlowNetwork::route(
            &dcn,
            &p,
            vec![Flow {
                src: VmId(0),
                dst: VmId(1),
                rate,
                delay_sensitive: false,
            }],
        );
        (dcn, p, flows)
    }

    #[test]
    fn records_utilization_for_source_rack_only() {
        let (dcn, p, flows) = setup(1.0);
        let mut mon = TorMonitor::new(&dcn, 16);
        mon.record(&flows, &p);
        // rack 0's uplinks: 2 × capacity 1.0 -> utilisation 0.5
        assert!((mon.history(RackId(0))[0] - 0.5).abs() < 1e-12);
        assert_eq!(mon.history(RackId(1))[0], 0.0);
    }

    #[test]
    fn rising_uplink_predicts_over_threshold_before_it_happens() {
        let (dcn, mut p, _) = setup(0.2);
        let mut mon = TorMonitor::new(&dcn, 16);
        // ramp the uplink: re-route with increasing rates
        for step in 1..=8 {
            let flows = FlowNetwork::route(
                &dcn,
                &p,
                vec![Flow {
                    src: VmId(0),
                    dst: VmId(1),
                    rate: 0.2 * step as f64,
                    delay_sensitive: false,
                }],
            );
            mon.record(&flows, &p);
        }
        // current utilisation 0.8 (1.6/2.0); the 5-step trend
        // extrapolation must cross 0.9 before the actual does
        let current = *mon.history(RackId(0)).last().unwrap();
        assert!(current < 0.9, "premise: not yet saturated ({current})");
        let alerts = mon.predicted_alerts(0.9, 5, 8);
        assert!(
            alerts.iter().any(|a| a.rack == RackId(0)),
            "rising trend should pre-alert rack 0"
        );
        assert!(matches!(alerts[0].source, AlertSource::LocalTor(_)));
        let _ = &mut p;
    }

    #[test]
    fn flat_low_uplink_never_alerts() {
        let (dcn, p, flows) = setup(0.3);
        let mut mon = TorMonitor::new(&dcn, 16);
        for _ in 0..10 {
            mon.record(&flows, &p);
        }
        assert!(mon.predicted_alerts(0.9, 5, 10).is_empty());
    }

    #[test]
    fn window_bounds_history() {
        let (dcn, p, flows) = setup(0.5);
        let mut mon = TorMonitor::new(&dcn, 6);
        for _ in 0..20 {
            mon.record(&flows, &p);
        }
        assert_eq!(mon.history(RackId(0)).len(), 6);
    }

    #[test]
    fn too_few_samples_stay_silent() {
        let (dcn, p, flows) = setup(5.0); // saturating immediately
        let mut mon = TorMonitor::new(&dcn, 8);
        mon.record(&flows, &p);
        mon.record(&flows, &p);
        // only 2 samples: no alert yet even though utilisation is extreme
        assert!(mon.predicted_alerts(0.9, 2, 2).is_empty());
    }
}

//! Flow model: traffic between dependent VMs routed across the wired
//! graph, per-link load accounting, and congestion detection that feeds
//! the outer-switch alerts of Alg. 1 (Sec. III-B case 3).

use dcn_topology::graph::{EdgeIdx, NodeIdx};
use dcn_topology::{Dcn, Placement, SwitchId, VmId};
use serde::{Deserialize, Serialize};

/// A unidirectional traffic flow between two VMs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Flow {
    /// Source VM.
    pub src: VmId,
    /// Destination VM.
    pub dst: VmId,
    /// Offered rate (same units as link capacity).
    pub rate: f64,
    /// Delay-sensitive flows are exempt from migration/reroute (Alg. 2).
    pub delay_sensitive: bool,
}

/// All flows plus their current routes and the induced link loads.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowNetwork {
    flows: Vec<Flow>,
    /// `routes[f]` = the edge sequence flow `f` traverses (empty for
    /// intra-rack flows, which never leave the ToR).
    routes: Vec<Vec<EdgeIdx>>,
    /// Aggregate load per edge of the wired graph.
    link_load: Vec<f64>,
}

impl FlowNetwork {
    /// Route every flow along the current distance-shortest rack-to-rack
    /// path and accumulate link loads.
    pub fn route(dcn: &Dcn, placement: &Placement, flows: Vec<Flow>) -> Self {
        let g = &dcn.graph;
        let mut net = Self {
            routes: Vec::with_capacity(flows.len()),
            link_load: vec![0.0; g.edge_count()],
            flows,
        };
        for f in &net.flows {
            let (src_rack, dst_rack) = (placement.rack_of(f.src), placement.rack_of(f.dst));
            let route = if src_rack == dst_rack {
                Vec::new()
            } else {
                shortest_route(dcn, dcn.rack_node(src_rack), dcn.rack_node(dst_rack), &[])
                    .unwrap_or_default()
            };
            for &e in &route {
                bump(&mut net.link_load, e, f.rate);
            }
            net.routes.push(route);
        }
        net
    }

    /// The flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// A flow's current route.
    pub fn route_of(&self, flow: usize) -> &[EdgeIdx] {
        self.routes.get(flow).map_or(&[], Vec::as_slice)
    }

    /// Load on one edge.
    pub fn load(&self, e: EdgeIdx) -> f64 {
        self.link_load.get(e).copied().unwrap_or(0.0)
    }

    /// Utilisation of one edge against its capacity.
    pub fn utilization(&self, dcn: &Dcn, e: EdgeIdx) -> f64 {
        self.load(e) / dcn.graph.link(e).capacity
    }

    /// Switches incident to at least one link loaded above
    /// `threshold × capacity`, with their worst incident utilisation —
    /// these raise the outer-switch alerts of Alg. 1.
    pub fn congested_switches(&self, dcn: &Dcn, threshold: f64) -> Vec<(SwitchId, f64)> {
        let g = &dcn.graph;
        let mut worst: std::collections::HashMap<SwitchId, f64> = std::collections::HashMap::new();
        for (e, &load) in self.link_load.iter().enumerate() {
            let util = load / g.link(e).capacity;
            if util > threshold {
                let (a, b) = g.endpoints(e);
                for n in [a, b] {
                    if let Some(sw) = g.node_id(n).as_switch() {
                        let cur = worst.entry(sw).or_insert(0.0);
                        if util > *cur {
                            *cur = util;
                        }
                    }
                }
            }
        }
        let mut out: Vec<_> = worst.into_iter().collect();
        out.sort_by_key(|a| a.0);
        out
    }

    /// Indices of flows whose route passes through the given switch
    /// (Alg. 1 case 1: "flows out from m passing through s").
    pub fn flows_through_switch(&self, dcn: &Dcn, sw: SwitchId) -> Vec<usize> {
        let g = &dcn.graph;
        let Some(sw_node) = g.node_idx(dcn_topology::NodeId::Switch(sw)) else {
            return Vec::new();
        };
        self.routes
            .iter()
            .enumerate()
            .filter(|(_, route)| {
                route.iter().any(|&e| {
                    let (a, b) = g.endpoints(e);
                    a == sw_node || b == sw_node
                })
            })
            .map(|(f, _)| f)
            .collect()
    }

    /// Replace a flow's route (FLOWREROUTE). Link loads are updated.
    pub fn reroute(&mut self, flow: usize, new_route: Vec<EdgeIdx>) {
        let Some(rate) = self.flows.get(flow).map(|f| f.rate) else {
            return;
        };
        let Some(slot) = self.routes.get_mut(flow) else {
            return;
        };
        let old_route = std::mem::replace(slot, new_route);
        for &e in &old_route {
            bump(&mut self.link_load, e, -rate);
        }
        for &e in self.routes.get(flow).into_iter().flatten() {
            bump(&mut self.link_load, e, rate);
        }
    }

    /// Total network throughput currently offered (sum of flow rates).
    pub fn total_rate(&self) -> f64 {
        self.flows.iter().map(|f| f.rate).sum()
    }

    /// Re-route every flow touching `vm` from its *current* placement —
    /// required after a migration moves the VM to another rack, or its
    /// old routes keep carrying phantom load. Returns how many flows were
    /// rebased.
    pub fn rebase_vm(&mut self, dcn: &Dcn, placement: &Placement, vm: VmId) -> usize {
        let mut rebased = 0;
        let racks: Vec<(usize, _, _)> = self
            .flows
            .iter()
            .enumerate()
            .filter(|(_, flow)| flow.src == vm || flow.dst == vm)
            .map(|(f, flow)| (f, placement.rack_of(flow.src), placement.rack_of(flow.dst)))
            .collect();
        for (f, src_rack, dst_rack) in racks {
            let new_route = if src_rack == dst_rack {
                Vec::new()
            } else {
                shortest_route(dcn, dcn.rack_node(src_rack), dcn.rack_node(dst_rack), &[])
                    .unwrap_or_default()
            };
            if self.routes.get(f) != Some(&new_route) {
                self.reroute(f, new_route);
                rebased += 1;
            }
        }
        rebased
    }

    /// Aggregate ToR uplink traffic per rack: the sum of rates of flows
    /// whose source VM sits in the rack and whose route leaves it. Drives
    /// the local-ToR alerts.
    pub fn tor_uplink(&self, placement: &Placement, rack_count: usize) -> Vec<f64> {
        let mut up = vec![0.0; rack_count];
        for (flow, route) in self.flows.iter().zip(&self.routes) {
            if !route.is_empty() {
                bump(&mut up, placement.rack_of(flow.src).index(), flow.rate);
            }
        }
        up
    }
}

/// Add `delta` to `load[e]`, ignoring out-of-range edges.
fn bump(load: &mut [f64], e: usize, delta: f64) {
    if let Some(l) = load.get_mut(e) {
        *l += delta;
    }
}

/// Shortest route (by physical distance) between two graph nodes as an
/// edge list, optionally avoiding a set of nodes (the "hot switches" a
/// reroute must dodge). `None` when no path avoids them.
pub fn shortest_route(
    dcn: &Dcn,
    src: NodeIdx,
    dst: NodeIdx,
    avoid: &[NodeIdx],
) -> Option<Vec<EdgeIdx>> {
    let g = &dcn.graph;
    if avoid.contains(&src) || avoid.contains(&dst) {
        return None;
    }
    // Node avoidance is encoded as an edge penalty: any edge touching an
    // avoided node costs more than every clean path combined.
    let avoid_set: std::collections::HashSet<NodeIdx> = avoid.iter().copied().collect();
    let penalties: Vec<f64> = (0..g.edge_count())
        .map(|e| {
            let (a, b) = g.endpoints(e);
            if avoid_set.contains(&a) || avoid_set.contains(&b) {
                1e12
            } else {
                0.0
            }
        })
        .collect();
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev_edge = vec![usize::MAX; n];
    let mut prev_node = vec![usize::MAX; n];
    let mut heap = std::collections::BinaryHeap::new();
    #[derive(PartialEq)]
    struct E(f64, NodeIdx);
    impl Eq for E {}
    impl Ord for E {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            // costs are finite sums of distances and penalties, never NaN
            o.0.partial_cmp(&self.0)
                .unwrap_or(std::cmp::Ordering::Equal)
        }
    }
    impl PartialOrd for E {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    if let Some(d0) = dist.get_mut(src) {
        *d0 = 0.0;
    }
    heap.push(E(0.0, src));
    while let Some(E(d, u)) = heap.pop() {
        if dist.get(u).is_none_or(|&du| d > du) {
            continue;
        }
        if u == dst {
            break;
        }
        for &(v, e) in g.neighbors(u) {
            let c = g.link(e).distance + penalties.get(e).copied().unwrap_or(0.0);
            let nd = d + c;
            let Some(dv) = dist.get_mut(v) else { continue };
            if nd < *dv {
                *dv = nd;
                if let Some(pe) = prev_edge.get_mut(v) {
                    *pe = e;
                }
                if let Some(pn) = prev_node.get_mut(v) {
                    *pn = u;
                }
                heap.push(E(nd, v));
            }
        }
    }
    let reached = dist.get(dst).copied().unwrap_or(f64::INFINITY);
    if !reached.is_finite() || reached >= 1e12 {
        return None;
    }
    let mut route = Vec::new();
    let mut cur = dst;
    while cur != src {
        route.push(*prev_edge.get(cur)?);
        cur = *prev_node.get(cur)?;
    }
    route.reverse();
    Some(route)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::fattree::{self, FatTreeConfig};
    use dcn_topology::{HostId, VmSpec};

    fn setup() -> (Dcn, Placement) {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut p = Placement::new(&dcn.inventory);
        // one VM on host 0 (rack 0), one on host 2 (rack 1), one on host 4 (rack 2)
        for h in [0usize, 2, 4] {
            let s = VmSpec {
                id: p.next_vm_id(),
                capacity: 5.0,
                value: 1.0,
                delay_sensitive: false,
            };
            p.add_vm(s, HostId::from_index(h)).unwrap();
        }
        (dcn, p)
    }

    #[test]
    fn routes_and_loads() {
        let (dcn, p) = setup();
        let flows = vec![Flow {
            src: VmId(0),
            dst: VmId(1),
            rate: 0.5,
            delay_sensitive: false,
        }];
        let net = FlowNetwork::route(&dcn, &p, flows);
        let route = net.route_of(0);
        assert_eq!(route.len(), 2, "same-pod racks are 2 hops apart");
        for &e in route {
            assert_eq!(net.load(e), 0.5);
        }
        assert_eq!(net.total_rate(), 0.5);
    }

    #[test]
    fn intra_rack_flow_has_empty_route() {
        let (dcn, mut p) = setup();
        // second VM on host 1 (also rack 0)
        let s = VmSpec {
            id: p.next_vm_id(),
            capacity: 5.0,
            value: 1.0,
            delay_sensitive: false,
        };
        let vm = p.add_vm(s, HostId(1)).unwrap();
        let net = FlowNetwork::route(
            &dcn,
            &p,
            vec![Flow {
                src: VmId(0),
                dst: vm,
                rate: 1.0,
                delay_sensitive: false,
            }],
        );
        assert!(net.route_of(0).is_empty());
        assert_eq!(net.link_load.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn congestion_detection_names_involved_switches() {
        let (dcn, p) = setup();
        // edge links have capacity 1.0; a 0.95 flow crosses the 0.9 threshold
        let net = FlowNetwork::route(
            &dcn,
            &p,
            vec![Flow {
                src: VmId(0),
                dst: VmId(1),
                rate: 0.95,
                delay_sensitive: false,
            }],
        );
        let hot = net.congested_switches(&dcn, 0.9);
        assert!(!hot.is_empty());
        for (_, util) in &hot {
            assert!(*util > 0.9);
        }
        // the flow passes through every hot switch
        for (sw, _) in hot {
            assert_eq!(net.flows_through_switch(&dcn, sw), vec![0]);
        }
    }

    #[test]
    fn reroute_moves_load() {
        let (dcn, p) = setup();
        let mut net = FlowNetwork::route(
            &dcn,
            &p,
            vec![Flow {
                src: VmId(0),
                dst: VmId(1),
                rate: 0.8,
                delay_sensitive: false,
            }],
        );
        let old_route = net.route_of(0).to_vec();
        // avoid the first switch on the old path
        let (a, b) = dcn.graph.endpoints(old_route[0]);
        let avoid = if dcn.graph.node_id(a).is_rack() { b } else { a };
        let src = dcn.rack_node(p.rack_of(VmId(0)));
        let dst = dcn.rack_node(p.rack_of(VmId(1)));
        let new_route = shortest_route(&dcn, src, dst, &[avoid]).expect("alternate path exists");
        assert_ne!(new_route, old_route);
        net.reroute(0, new_route.clone());
        for &e in &old_route {
            assert_eq!(net.load(e), 0.0);
        }
        for &e in &new_route {
            assert_eq!(net.load(e), 0.8);
        }
    }

    #[test]
    fn avoiding_all_paths_returns_none() {
        let (dcn, p) = setup();
        let src = dcn.rack_node(p.rack_of(VmId(0)));
        let dst = dcn.rack_node(p.rack_of(VmId(1)));
        // block both aggregation switches of pod 0: no route remains
        let avoid: Vec<_> = dcn.graph.neighbors(src).iter().map(|&(n, _)| n).collect();
        assert!(shortest_route(&dcn, src, dst, &avoid).is_none());
    }

    #[test]
    fn tor_uplink_accumulates_outbound_only() {
        let (dcn, p) = setup();
        let net = FlowNetwork::route(
            &dcn,
            &p,
            vec![
                Flow {
                    src: VmId(0),
                    dst: VmId(1),
                    rate: 0.3,
                    delay_sensitive: false,
                },
                Flow {
                    src: VmId(0),
                    dst: VmId(2),
                    rate: 0.2,
                    delay_sensitive: false,
                },
            ],
        );
        let up = net.tor_uplink(&p, dcn.rack_count());
        assert!((up[0] - 0.5).abs() < 1e-12);
        assert_eq!(up[1], 0.0);
    }
}

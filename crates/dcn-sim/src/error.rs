//! Typed construction errors for the Sheriff stack.
//!
//! Construction paths (cluster population, config validation, channel
//! fault models, k-median instances) historically `panic!`ed on bad
//! inputs. The `try_*` constructors return [`SheriffError`] instead, so
//! embedding code — builders, CLIs, fuzzers — can surface the problem;
//! the panicking constructors remain as thin wrappers for tests and
//! examples with known-good inputs.

use std::error::Error;
use std::fmt;

/// Everything that can go wrong while assembling a Sheriff deployment.
#[derive(Debug, Clone, PartialEq)]
pub enum SheriffError {
    /// The topology has no hosts (or no racks) to populate.
    EmptyTopology,
    /// A [`ClusterConfig`](crate::engine::ClusterConfig) field is out of
    /// range.
    InvalidClusterConfig {
        /// Offending field name.
        field: &'static str,
        /// Human-readable constraint that was violated.
        reason: String,
    },
    /// A [`SimConfig`](crate::config::SimConfig) field is out of range.
    InvalidSimConfig {
        /// Offending field name.
        field: &'static str,
        /// Human-readable constraint that was violated.
        reason: String,
    },
    /// A probability parameter is outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Offending field name.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A delay window has `delay_max < delay_min`.
    InvalidDelayWindow {
        /// Lower bound of the window.
        min: u64,
        /// Upper bound of the window.
        max: u64,
    },
    /// A k-median instance is structurally invalid (empty, ragged
    /// distance matrix, or `k` out of `1..=points`).
    InvalidKMedian {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A set of migration candidates was empty where the algorithm
    /// requires at least one.
    NoCandidates,
    /// Any other construction-time defect.
    Invalid {
        /// Human-readable description of the defect.
        reason: String,
    },
}

impl fmt::Display for SheriffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SheriffError::EmptyTopology => write!(f, "topology has no hosts to populate"),
            SheriffError::InvalidClusterConfig { field, reason } => {
                write!(f, "invalid ClusterConfig.{field}: {reason}")
            }
            SheriffError::InvalidSimConfig { field, reason } => {
                write!(f, "invalid SimConfig.{field}: {reason}")
            }
            SheriffError::InvalidProbability { field, value } => {
                write!(f, "probability {field} = {value} outside [0, 1]")
            }
            SheriffError::InvalidDelayWindow { min, max } => {
                write!(f, "delay window [{min}, {max}] has max < min")
            }
            SheriffError::InvalidKMedian { reason } => {
                write!(f, "invalid k-median instance: {reason}")
            }
            SheriffError::NoCandidates => write!(f, "no migration candidates supplied"),
            SheriffError::Invalid { reason } => write!(f, "{reason}"),
        }
    }
}

impl Error for SheriffError {}

/// Check a probability-like field, used by every channel/config
/// validator.
pub(crate) fn check_probability(field: &'static str, value: f64) -> Result<(), SheriffError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(SheriffError::InvalidProbability { field, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SheriffError::InvalidProbability {
            field: "drop",
            value: 1.5,
        };
        assert!(e.to_string().contains("drop"));
        assert!(e.to_string().contains("1.5"));
        let e = SheriffError::InvalidClusterConfig {
            field: "vms_per_host",
            reason: "must be finite and >= 0".into(),
        };
        assert!(e.to_string().contains("vms_per_host"));
    }

    #[test]
    fn probability_bounds() {
        assert!(check_probability("p", 0.0).is_ok());
        assert!(check_probability("p", 1.0).is_ok());
        assert!(check_probability("p", -0.1).is_err());
        assert!(check_probability("p", f64::NAN).is_err());
    }
}

//! End-to-end congestion dynamics: per-switch QCN congestion points fed
//! by the flow network's link loads. This closes the loop of
//! Sec. III-B.2/3 — switches watch their queues, signal congestion, and
//! the shims' FLOWREROUTE drains the hotspot.

use crate::flows::FlowNetwork;
use crate::qcn::{CongestionPoint, CpConfig, QcnFeedback};
use dcn_topology::{Dcn, SwitchId};
use serde::{Deserialize, Serialize};

/// Parameters of the queue coupling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CongestionConfig {
    /// QCN congestion-point settings per switch.
    pub cp: CpConfig,
    /// Packets that arrive per step at 100 % worst-link utilisation.
    pub arrival_scale: f64,
    /// Utilisation the switch can service per step (queues build above
    /// this, drain below).
    pub service_utilization: f64,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        Self {
            cp: CpConfig::default(),
            arrival_scale: 40.0,
            service_utilization: 0.85,
        }
    }
}

/// One congestion point per switch, stepped from the flow network state.
#[derive(Debug, Clone)]
pub struct CongestionSim {
    cfg: CongestionConfig,
    switches: Vec<SwitchId>,
    points: Vec<CongestionPoint>,
}

impl CongestionSim {
    /// A congestion point for every switch of the topology.
    pub fn new(dcn: &Dcn, cfg: CongestionConfig) -> Self {
        let switches: Vec<SwitchId> = dcn
            .graph
            .switch_indices()
            .into_iter()
            .filter_map(|i| dcn.graph.node_id(i).as_switch())
            .collect();
        let points = switches
            .iter()
            .map(|_| CongestionPoint::new(cfg.cp.clone()))
            .collect();
        Self {
            cfg,
            switches,
            points,
        }
    }

    /// Worst utilisation over a switch's incident links.
    fn switch_utilization(&self, dcn: &Dcn, flows: &FlowNetwork, sw: SwitchId) -> f64 {
        let Some(node) = dcn.graph.node_idx(dcn_topology::NodeId::Switch(sw)) else {
            return 0.0;
        };
        dcn.graph
            .neighbors(node)
            .iter()
            .map(|&(_, e)| flows.load(e) / dcn.graph.link(e).capacity)
            .fold(0.0, f64::max)
    }

    /// Advance every queue one sampling interval from the current link
    /// loads; returns the switches that raised congestion feedback.
    pub fn step(&mut self, dcn: &Dcn, flows: &FlowNetwork) -> Vec<(SwitchId, QcnFeedback)> {
        let mut out = Vec::new();
        for (i, &sw) in self.switches.iter().enumerate() {
            let u = self.switch_utilization(dcn, flows, sw);
            let arrived = self.cfg.arrival_scale * u;
            let serviced = self.cfg.arrival_scale * self.cfg.service_utilization;
            if let Some(fb) = self.points[i].sample(arrived, serviced) {
                out.push((sw, fb));
            }
        }
        out
    }

    /// Current queue length at a switch (0 for unknown ids).
    pub fn queue(&self, sw: SwitchId) -> f64 {
        self.switches
            .iter()
            .position(|&s| s == sw)
            .map(|i| self.points[i].queue_len())
            .unwrap_or(0.0)
    }

    /// Congestion severity of a switch in [0, 1] for alert construction.
    pub fn severity(&self, sw: SwitchId) -> f64 {
        self.switches
            .iter()
            .position(|&s| s == sw)
            .map(|i| self.points[i].severity())
            .unwrap_or(0.0)
    }

    /// The worst queue length across all switches.
    pub fn worst_queue(&self) -> f64 {
        self.points
            .iter()
            .map(CongestionPoint::queue_len)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::Flow;
    use dcn_topology::fattree::{self, FatTreeConfig};
    use dcn_topology::{HostId, Placement, VmId, VmSpec};

    fn setup(rate: f64) -> (Dcn, Placement, FlowNetwork) {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let mut p = Placement::new(&dcn.inventory);
        for h in [0usize, 2] {
            let s = VmSpec {
                id: p.next_vm_id(),
                capacity: 5.0,
                value: 1.0,
                delay_sensitive: false,
            };
            p.add_vm(s, HostId::from_index(h)).unwrap();
        }
        let flows = FlowNetwork::route(
            &dcn,
            &p,
            vec![Flow {
                src: VmId(0),
                dst: VmId(1),
                rate,
                delay_sensitive: false,
            }],
        );
        (dcn, p, flows)
    }

    #[test]
    fn saturated_link_builds_queue_and_signals() {
        let (dcn, _, flows) = setup(0.98);
        let mut sim = CongestionSim::new(&dcn, CongestionConfig::default());
        let mut signalled = false;
        for _ in 0..20 {
            signalled |= !sim.step(&dcn, &flows).is_empty();
        }
        assert!(signalled, "98% utilisation must trigger QCN feedback");
        assert!(sim.worst_queue() > 0.0);
    }

    #[test]
    fn light_load_never_signals() {
        let (dcn, _, flows) = setup(0.3);
        let mut sim = CongestionSim::new(&dcn, CongestionConfig::default());
        for _ in 0..20 {
            assert!(sim.step(&dcn, &flows).is_empty());
        }
        assert_eq!(sim.worst_queue(), 0.0);
    }

    #[test]
    fn queue_drains_after_reroute() {
        let (dcn, p, mut flows) = setup(0.98);
        let mut sim = CongestionSim::new(&dcn, CongestionConfig::default());
        for _ in 0..15 {
            sim.step(&dcn, &flows);
        }
        let peak = sim.worst_queue();
        assert!(peak > 0.0);
        // reroute the flow away from the hot switch
        let hot = flows.congested_switches(&dcn, 0.9);
        let (sw, _) = hot[0];
        let ids = flows.flows_through_switch(&dcn, sw);
        let src = dcn.rack_node(p.rack_of(VmId(0)));
        let dst = dcn.rack_node(p.rack_of(VmId(1)));
        let hot_node = dcn
            .graph
            .node_idx(dcn_topology::NodeId::Switch(sw))
            .unwrap();
        let route = crate::flows::shortest_route(&dcn, src, dst, &[hot_node]).unwrap();
        flows.reroute(ids[0], route);
        for _ in 0..40 {
            sim.step(&dcn, &flows);
        }
        assert!(
            sim.queue(sw) < peak,
            "queue at {sw} should drain after reroute"
        );
        assert_eq!(sim.queue(sw), 0.0, "idle switch drains completely");
    }

    #[test]
    fn severity_tracks_queue() {
        let (dcn, _, flows) = setup(0.98);
        let mut sim = CongestionSim::new(&dcn, CongestionConfig::default());
        for _ in 0..30 {
            sim.step(&dcn, &flows);
        }
        let hot = flows.congested_switches(&dcn, 0.9);
        let (sw, _) = hot[0];
        assert!(sim.severity(sw) > 0.0);
        assert!(sim.severity(SwitchId(9999)) == 0.0);
    }
}

//! QCN-style congestion notification (Sec. III-A/B; refs \[21\]–\[23\], \[28\]).
//!
//! Switches detect congestion from queue state and send quantized feedback
//! to the sending end host, which adjusts its rate (the paper: "modify the
//! rate at end host to reach the goal of easing the congestion"). We model
//! the standard QCN pair: a *congestion point* (CP) sampling its queue and
//! a *reaction point* (RP) running multiplicative decrease plus
//! fast-recovery/active-increase.

use serde::{Deserialize, Serialize};

/// Congestion-point parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpConfig {
    /// Equilibrium queue length `Q_eq` (packets).
    pub q_eq: f64,
    /// Derivative weight `w` in `F_b = −(Q_off + w·Q_delta)`.
    pub w: f64,
    /// Feedback quantisation: |F_b| is clamped to this maximum.
    pub fb_max: f64,
}

impl Default for CpConfig {
    fn default() -> Self {
        Self {
            q_eq: 33.0,
            w: 2.0,
            fb_max: 64.0,
        }
    }
}

/// A switch queue acting as QCN congestion point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CongestionPoint {
    cfg: CpConfig,
    queue: f64,
    prev_queue: f64,
}

/// Quantized congestion feedback carried back to the sender (negative
/// means "slow down").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QcnFeedback {
    /// The (negative) feedback value `F_b`.
    pub fb: f64,
}

impl CongestionPoint {
    /// New CP with an empty queue.
    pub fn new(cfg: CpConfig) -> Self {
        Self {
            cfg,
            queue: 0.0,
            prev_queue: 0.0,
        }
    }

    /// Current queue length.
    pub fn queue_len(&self) -> f64 {
        self.queue
    }

    /// Advance one sampling interval: `arrived` packets came in, `serviced`
    /// packets left. Returns feedback when the congestion measure is
    /// negative (queue above equilibrium or growing).
    pub fn sample(&mut self, arrived: f64, serviced: f64) -> Option<QcnFeedback> {
        self.prev_queue = self.queue;
        self.queue = (self.queue + arrived - serviced).max(0.0);
        let q_off = self.queue - self.cfg.q_eq;
        let q_delta = self.queue - self.prev_queue;
        let fb = -(q_off + self.cfg.w * q_delta);
        if fb < 0.0 {
            Some(QcnFeedback {
                fb: fb.max(-self.cfg.fb_max),
            })
        } else {
            None
        }
    }

    /// Congestion severity in [0, 1] for alert generation: queue occupancy
    /// relative to 2·Q_eq, clamped.
    pub fn severity(&self) -> f64 {
        (self.queue / (2.0 * self.cfg.q_eq)).clamp(0.0, 1.0)
    }
}

/// Reaction-point parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RpConfig {
    /// Multiplicative-decrease gain `G_d` (QCN: 1/128 per feedback unit).
    pub gd: f64,
    /// Rate increase per fast-recovery cycle (fraction of target rate).
    pub r_ai: f64,
    /// Cycles of fast recovery before active increase.
    pub fr_cycles: u32,
    /// Minimum rate floor.
    pub min_rate: f64,
}

impl Default for RpConfig {
    fn default() -> Self {
        Self {
            gd: 1.0 / 128.0,
            r_ai: 0.05,
            fr_cycles: 5,
            min_rate: 0.01,
        }
    }
}

/// An end-host rate limiter acting as QCN reaction point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReactionPoint {
    cfg: RpConfig,
    /// Current sending rate.
    rate: f64,
    /// Target rate remembered from before the last decrease.
    target: f64,
    cycles_since_decrease: u32,
}

impl ReactionPoint {
    /// New RP sending at `rate`.
    pub fn new(rate: f64, cfg: RpConfig) -> Self {
        Self {
            cfg,
            rate,
            target: rate,
            cycles_since_decrease: 0,
        }
    }

    /// Current sending rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Apply a congestion feedback: multiplicative decrease proportional to
    /// |F_b| (QCN's `R ← R·(1 − G_d·|F_b|)`), remembering the old rate as
    /// the recovery target.
    pub fn on_feedback(&mut self, fb: QcnFeedback) {
        debug_assert!(fb.fb <= 0.0);
        self.target = self.rate;
        let dec = (self.cfg.gd * fb.fb.abs()).min(0.5);
        self.rate = (self.rate * (1.0 - dec)).max(self.cfg.min_rate);
        self.cycles_since_decrease = 0;
    }

    /// One recovery cycle with no congestion feedback: fast recovery moves
    /// the rate halfway back to target; after `fr_cycles`, active increase
    /// probes above the target.
    pub fn on_quiet_cycle(&mut self) {
        self.cycles_since_decrease += 1;
        if self.cycles_since_decrease <= self.cfg.fr_cycles {
            self.rate = (self.rate + self.target) / 2.0;
        } else {
            self.target += self.cfg.r_ai * self.target;
            self.rate = (self.rate + self.target) / 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_queue_gives_no_feedback() {
        let mut cp = CongestionPoint::new(CpConfig::default());
        assert!(cp.sample(10.0, 10.0).is_none());
        assert_eq!(cp.queue_len(), 0.0);
    }

    #[test]
    fn overloaded_queue_raises_negative_feedback() {
        let mut cp = CongestionPoint::new(CpConfig::default());
        let mut fb = None;
        for _ in 0..20 {
            fb = cp.sample(20.0, 10.0); // net +10 per cycle
        }
        let fb = fb.expect("queue above Q_eq must signal");
        assert!(fb.fb < 0.0);
        assert!(fb.fb >= -CpConfig::default().fb_max);
        assert!(cp.severity() > 0.5);
    }

    #[test]
    fn growing_queue_signals_before_reaching_q_eq() {
        // derivative term fires on rapid growth even below equilibrium
        let mut cp = CongestionPoint::new(CpConfig::default());
        let fb = cp.sample(30.0, 0.0); // queue 0 -> 30 in one cycle
        assert!(fb.is_some(), "w-weighted growth must trigger feedback");
    }

    #[test]
    fn feedback_is_clamped() {
        let mut cp = CongestionPoint::new(CpConfig::default());
        let fb = cp.sample(10_000.0, 0.0).unwrap();
        assert_eq!(fb.fb, -CpConfig::default().fb_max);
    }

    #[test]
    fn rp_decreases_then_recovers() {
        let mut rp = ReactionPoint::new(10.0, RpConfig::default());
        rp.on_feedback(QcnFeedback { fb: -64.0 });
        let dropped = rp.rate();
        assert!(dropped < 10.0);
        for _ in 0..6 {
            rp.on_quiet_cycle();
        }
        assert!(rp.rate() > dropped);
        assert!(rp.rate() <= 10.5 * 1.5, "recovery should be gradual");
    }

    #[test]
    fn rp_never_drops_below_floor() {
        let mut rp = ReactionPoint::new(1.0, RpConfig::default());
        for _ in 0..200 {
            rp.on_feedback(QcnFeedback { fb: -64.0 });
        }
        assert!(rp.rate() >= RpConfig::default().min_rate);
    }

    #[test]
    fn active_increase_probes_above_target() {
        let mut rp = ReactionPoint::new(10.0, RpConfig::default());
        rp.on_feedback(QcnFeedback { fb: -10.0 });
        for _ in 0..50 {
            rp.on_quiet_cycle();
        }
        assert!(rp.rate() > 10.0, "active increase must exceed old target");
    }
}

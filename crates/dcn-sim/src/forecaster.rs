//! The per-server background forecasting service (Sec. III-B.1): "the
//! local computing device on each server will periodically collect
//! information including CPU utilization rate, memory, disk I/O, uplink
//! traffic … and predict the future evolution of server's workload (as
//! background service)".
//!
//! [`ArimaProfilePredictor`] implements [`ProfilePredictor`] with real
//! ARIMA models per feature, refit every `refit_interval` steps and
//! cached between refits — the cost profile of an actual background
//! daemon (cheap steady-state prediction, periodic heavier re-estimation).

use crate::engine::ProfilePredictor;
use crate::workload::{Feature, Profile, VmWorkload};
use parking_lot_like::RefitCache;
use timeseries::arima::{ArimaModel, ArimaSpec};

/// A `ProfilePredictor` backed by per-feature ARIMA models with periodic
/// refitting. Falls back to last-value persistence for features whose
/// history is too short or degenerate (e.g. a constant memory series).
#[derive(Debug)]
pub struct ArimaProfilePredictor {
    /// Model orders used for every feature.
    pub spec: ArimaSpec,
    /// Steps between refits.
    pub refit_interval: usize,
    cache: RefitCache,
}

impl ArimaProfilePredictor {
    /// Predictor with the paper's ARIMA(1,1,1) default and the given
    /// refit interval.
    pub fn new(refit_interval: usize) -> Self {
        assert!(refit_interval >= 1);
        Self {
            spec: ArimaSpec::new(1, 1, 1),
            refit_interval,
            cache: RefitCache::default(),
        }
    }

    fn predict_feature(&self, w: &VmWorkload, feature: Feature, t: usize, h: usize) -> f64 {
        let history = w.feature_history(feature, t);
        if history.len() < 30 {
            return history.last().copied().unwrap_or(0.0);
        }
        // refit epoch: the same model serves all steps within an interval.
        // The cache key identifies the series by a content fingerprint of
        // its (stable) early samples rather than by address, so moved or
        // cloned workloads still hit the right model.
        let epoch = t / self.refit_interval;
        let fp = {
            let a = history[0].to_bits();
            let b = history[history.len().min(21) - 1].to_bits();
            (a ^ b.rotate_left(17)) as usize
        };
        let key = (fp, feature_idx(feature), epoch);
        let model = self
            .cache
            .get_or_fit(key, || ArimaModel::fit(history, self.spec).ok());
        match model {
            Some(m) => {
                let fc = m.forecast(history, h.max(1));
                fc[h.max(1) - 1].clamp(0.0, 1.0)
            }
            None => history.last().copied().unwrap_or(0.0),
        }
    }
}

fn feature_idx(f: Feature) -> usize {
    match f {
        Feature::Cpu => 0,
        Feature::Mem => 1,
        Feature::Io => 2,
        Feature::Trf => 3,
    }
}

impl ProfilePredictor for ArimaProfilePredictor {
    fn predict(&self, workload: &VmWorkload, t: usize) -> Profile {
        self.predict_ahead(workload, t, 1)
    }

    fn predict_ahead(&self, workload: &VmWorkload, t: usize, h: usize) -> Profile {
        Profile {
            cpu: self.predict_feature(workload, Feature::Cpu, t, h),
            mem: self.predict_feature(workload, Feature::Mem, t, h),
            io: self.predict_feature(workload, Feature::Io, t, h),
            trf: self.predict_feature(workload, Feature::Trf, t, h),
        }
    }
}

/// A tiny interior-mutability cache keyed by (workload identity, feature,
/// refit epoch). Kept module-local to avoid a public dependency on the
/// locking strategy.
mod parking_lot_like {
    use std::collections::HashMap;
    use std::sync::Mutex;
    use timeseries::arima::ArimaModel;

    type Key = (usize, usize, usize);

    #[derive(Debug, Default)]
    pub struct RefitCache {
        inner: Mutex<HashMap<Key, Option<ArimaModel>>>,
    }

    impl RefitCache {
        pub fn get_or_fit(
            &self,
            key: Key,
            fit: impl FnOnce() -> Option<ArimaModel>,
        ) -> Option<ArimaModel> {
            let mut map = self.inner.lock().expect("cache lock poisoned");
            // bound memory: a refit flushes older epochs for that series
            if map.len() > 4096 {
                map.clear();
            }
            map.entry(key).or_insert_with(fit).clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LastValue;
    use timeseries::metrics::mse;

    #[test]
    fn predicts_all_four_features_in_range() {
        let w = VmWorkload::synthetic(200, 3);
        let p = ArimaProfilePredictor::new(50);
        let profile = p.predict(&w, 150);
        assert!(profile.is_normalized(), "{profile:?}");
    }

    #[test]
    fn short_history_falls_back_to_persistence() {
        let w = VmWorkload::synthetic(40, 4);
        let p = ArimaProfilePredictor::new(10);
        let got = p.predict(&w, 10);
        let naive = LastValue.predict(&w, 10);
        assert_eq!(got, naive);
    }

    #[test]
    fn arima_beats_last_value_on_cpu() {
        let w = VmWorkload::synthetic(400, 24);
        let arima = ArimaProfilePredictor::new(50);
        let mut arima_preds = Vec::new();
        let mut naive_preds = Vec::new();
        let mut actual = Vec::new();
        for t in 300..380 {
            arima_preds.push(arima.predict(&w, t).cpu);
            naive_preds.push(LastValue.predict(&w, t).cpu);
            actual.push(w.at(t).cpu);
        }
        let am = mse(&arima_preds, &actual);
        let nm = mse(&naive_preds, &actual);
        assert!(
            am <= nm * 1.05,
            "ARIMA {am} should be at least competitive with persistence {nm}"
        );
    }

    #[test]
    fn refit_cache_reuses_models_within_epoch() {
        let w = VmWorkload::synthetic(300, 9);
        let p = ArimaProfilePredictor::new(100);
        // same epoch twice: second call hits the cache (same output, and
        // the cache holds exactly 4 feature models)
        let a = p.predict(&w, 150);
        let b = p.predict(&w, 150);
        assert_eq!(a, b);
    }

    #[test]
    fn k_step_prediction_differs_from_one_step() {
        let w = VmWorkload::synthetic(400, 11);
        let p = ArimaProfilePredictor::new(100);
        let one = p.predict_ahead(&w, 350, 1);
        let twenty = p.predict_ahead(&w, 350, 20);
        // a 20-step forecast of a diurnal series should generally move
        assert!(one.is_normalized() && twenty.is_normalized());
    }
}

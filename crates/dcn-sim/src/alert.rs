//! ALERT generation and classification (Sec. III-B, IV-C).
//!
//! A VM's alert value is `ALERT = max(W)` when any feature of its
//! (predicted) workload profile exceeds THRESHOLD, else 0. Shims receive
//! three kinds of alerts: from local hosts (overload), from their own ToR
//! (uplink congestion), and from outer switches (flow congestion).

use crate::workload::Profile;
use dcn_topology::{HostId, RackId, SwitchId, VmId};
use serde::{Deserialize, Serialize};

/// Where an alert originated (Alg. 1's three `case` arms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertSource {
    /// A host `h_ij` reported overload — migrate some of its VMs.
    Host(HostId),
    /// The shim's own ToR predicts uplink congestion — migrate a β-portion
    /// of rack load to neighbour racks.
    LocalTor(RackId),
    /// An outer switch `s_j` signalled congestion (QCN/DSCP) — reroute
    /// flows away from it.
    OuterSwitch(SwitchId),
}

/// An alert delivered to a shim.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Shim that receives and must handle this alert.
    pub rack: RackId,
    /// What raised it.
    pub source: AlertSource,
    /// Severity: `max(W)` for host alerts, queue/utilisation fraction for
    /// switch alerts. Always in (threshold, 1].
    pub severity: f64,
    /// Simulation step at which the alert fired.
    pub time: usize,
}

/// The VM-level alert rule of Sec. IV-C:
/// `ALERT = max(W)` if any feature exceeds `threshold`, else 0.
pub fn alert_value(profile: &Profile, threshold: f64) -> f64 {
    if profile.exceeds(threshold) {
        profile.max()
    } else {
        0.0
    }
}

/// Per-VM alert record used when a shim ranks victims (Alg. 2 `case 1`
/// picks the VM with max ALERT).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmAlert {
    /// The VM whose predicted profile crossed the threshold.
    pub vm: VmId,
    /// Its `ALERT` value.
    pub value: f64,
}

/// Collect the per-VM alerts on one host given each VM's (predicted)
/// profile at the current step.
pub fn host_vm_alerts(vms: &[(VmId, Profile)], threshold: f64) -> Vec<VmAlert> {
    vms.iter()
        .filter_map(|(vm, p)| {
            let v = alert_value(p, threshold);
            (v > 0.0).then_some(VmAlert { vm: *vm, value: v })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(cpu: f64) -> Profile {
        Profile {
            cpu,
            mem: 0.3,
            io: 0.2,
            trf: 0.1,
        }
    }

    #[test]
    fn alert_value_matches_paper_rule() {
        assert_eq!(alert_value(&profile(0.95), 0.9), 0.95);
        assert_eq!(alert_value(&profile(0.5), 0.9), 0.0);
        // exactly at threshold: strict inequality, no alert
        assert_eq!(alert_value(&profile(0.9), 0.9), 0.0);
    }

    #[test]
    fn alert_uses_max_feature_not_triggering_feature() {
        let p = Profile {
            cpu: 0.5,
            mem: 0.95,
            io: 0.99,
            trf: 0.2,
        };
        // io is the max even though mem also exceeds
        assert_eq!(alert_value(&p, 0.9), 0.99);
    }

    #[test]
    fn host_vm_alerts_filters_quiet_vms() {
        let vms = vec![
            (VmId(0), profile(0.95)),
            (VmId(1), profile(0.2)),
            (VmId(2), profile(0.92)),
        ];
        let alerts = host_vm_alerts(&vms, 0.9);
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].vm, VmId(0));
        assert_eq!(alerts[1].vm, VmId(2));
        assert!(alerts.iter().all(|a| a.value > 0.9));
    }

    #[test]
    fn alert_sources_are_distinguishable() {
        let a = Alert {
            rack: RackId(1),
            source: AlertSource::Host(HostId(3)),
            severity: 0.95,
            time: 7,
        };
        let b = Alert {
            source: AlertSource::LocalTor(RackId(1)),
            ..a
        };
        let c = Alert {
            source: AlertSource::OuterSwitch(SwitchId(0)),
            ..a
        };
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert!(matches!(c.source, AlertSource::OuterSwitch(_)));
    }
}

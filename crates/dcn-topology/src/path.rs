//! Shortest paths over the wired graph.
//!
//! Sec. V-A.2 of the paper collapses the rack-to-rack multigraph into a
//! complete metric with Floyd–Warshall so that the transmission cost
//! `g(v_i, v_p, e_ip)` becomes a function `G(v_i, v_p)` of the endpoints
//! only. We provide Floyd–Warshall (faithful to the paper, good for small
//! and medium graphs) and repeated Dijkstra (asymptotically better on the
//! sparse Fat-Tree/BCube graphs) — both produce the same [`PathCosts`].

use crate::graph::{NetGraph, NodeIdx};
use crate::link::Link;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

const NO_NEXT: u32 = u32::MAX;

/// All-pairs shortest path distances with next-hop path reconstruction.
#[derive(Debug, Clone)]
pub struct PathCosts {
    n: usize,
    dist: Vec<f64>,
    /// `next[a*n+b]` = first hop on the shortest a→b path.
    next: Vec<u32>,
}

impl PathCosts {
    /// Floyd–Warshall over every node of the graph, O(n³).
    ///
    /// `edge_cost` maps a link to a non-negative traversal cost; the paper
    /// uses the per-edge transmission cost `δ·T(e) + η·P(e)`.
    pub fn floyd_warshall(g: &NetGraph, edge_cost: impl Fn(&Link) -> f64) -> Self {
        let n = g.node_count();
        let mut dist = vec![f64::INFINITY; n * n];
        let mut next = vec![NO_NEXT; n * n];
        for i in 0..n {
            dist[i * n + i] = 0.0;
            next[i * n + i] = i as u32;
        }
        for (a, b, link) in g.edges() {
            let c = edge_cost(link);
            debug_assert!(c >= 0.0, "edge costs must be non-negative");
            // keep the cheaper edge if the builder ever produced parallels
            if c < dist[a * n + b] {
                dist[a * n + b] = c;
                dist[b * n + a] = c;
                next[a * n + b] = b as u32;
                next[b * n + a] = a as u32;
            }
        }
        for k in 0..n {
            for i in 0..n {
                let dik = dist[i * n + k];
                if dik.is_infinite() {
                    continue;
                }
                for j in 0..n {
                    let through = dik + dist[k * n + j];
                    if through < dist[i * n + j] {
                        dist[i * n + j] = through;
                        next[i * n + j] = next[i * n + k];
                    }
                }
            }
        }
        Self { n, dist, next }
    }

    /// Repeated Dijkstra from every node, O(n · m log n). Identical result
    /// to [`PathCosts::floyd_warshall`] but much faster on sparse DCNs.
    pub fn dijkstra_all(g: &NetGraph, edge_cost: impl Fn(&Link) -> f64) -> Self {
        let n = g.node_count();
        let mut dist = vec![f64::INFINITY; n * n];
        let mut next = vec![NO_NEXT; n * n];
        for src in 0..n {
            let (d, prev) = dijkstra(g, src, &edge_cost);
            for t in 0..n {
                dist[src * n + t] = d[t];
                if t == src {
                    next[src * n + t] = src as u32;
                } else if d[t].is_finite() {
                    // walk back from t to the node whose predecessor is src
                    let mut cur = t;
                    while prev[cur] != src as u32 {
                        cur = prev[cur] as usize;
                    }
                    next[src * n + t] = cur as u32;
                }
            }
        }
        Self { n, dist, next }
    }

    /// Shortest-path distance between two nodes.
    #[inline]
    pub fn dist(&self, a: NodeIdx, b: NodeIdx) -> f64 {
        self.dist[a * self.n + b]
    }

    /// Number of nodes covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Reconstruct the node sequence of a shortest a→b path (inclusive of
    /// both endpoints). `None` when unreachable.
    pub fn path(&self, a: NodeIdx, b: NodeIdx) -> Option<Vec<NodeIdx>> {
        if self.dist(a, b).is_infinite() {
            return None;
        }
        let mut out = vec![a];
        let mut cur = a;
        while cur != b {
            let nx = self.next[cur * self.n + b];
            debug_assert_ne!(nx, NO_NEXT);
            cur = nx as usize;
            out.push(cur);
        }
        Some(out)
    }
}

/// Single-source Dijkstra. Returns (distances, predecessor array); the
/// predecessor of the source is itself, unreachable nodes keep `u32::MAX`.
pub fn dijkstra(
    g: &NetGraph,
    src: NodeIdx,
    edge_cost: &impl Fn(&Link) -> f64,
) -> (Vec<f64>, Vec<u32>) {
    #[derive(PartialEq)]
    struct Entry(f64, NodeIdx);
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // min-heap on cost; costs are finite and non-NaN by construction
            other.0.partial_cmp(&self.0).unwrap()
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![NO_NEXT; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    prev[src] = src as u32;
    heap.push(Entry(0.0, src));
    while let Some(Entry(d, u)) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, e) in g.neighbors(u) {
            let c = edge_cost(g.link(e));
            debug_assert!(c >= 0.0);
            let nd = d + c;
            if nd < dist[v] {
                dist[v] = nd;
                prev[v] = u as u32;
                heap.push(Entry(nd, v));
            }
        }
    }
    (dist, prev)
}

/// Convenience edge-cost: physical distance `D(e)`.
pub fn distance_cost(l: &Link) -> f64 {
    l.distance
}

/// Convenience edge-cost: the paper's per-edge transmission cost
/// `δ·T(e) + η·P(e)` for a VM of size `vm_capacity`.
pub fn transmission_cost(vm_capacity: f64, delta: f64, eta: f64) -> impl Fn(&Link) -> f64 {
    move |l: &Link| delta * l.transmission_time(vm_capacity) + eta * l.utility_rate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{RackId, SwitchId};
    use crate::link::LinkTier;

    /// racks v0,v1,v2 in a line through switches: v0-s0-v1-s1-v2, plus a
    /// shortcut s0-s1 making v0→v2 cheaper through switches only.
    fn line() -> NetGraph {
        let mut g = NetGraph::new();
        let v0 = g.add_rack(RackId(0));
        let v1 = g.add_rack(RackId(1));
        let v2 = g.add_rack(RackId(2));
        let s0 = g.add_switch(SwitchId(0));
        let s1 = g.add_switch(SwitchId(1));
        let l = |d| Link::new(1.0, d, LinkTier::Edge);
        g.add_edge(v0, s0, l(1.0));
        g.add_edge(s0, v1, l(1.0));
        g.add_edge(v1, s1, l(1.0));
        g.add_edge(s1, v2, l(1.0));
        g.add_edge(s0, s1, l(0.5));
        g
    }

    #[test]
    fn floyd_warshall_distances() {
        let g = line();
        let p = PathCosts::floyd_warshall(&g, distance_cost);
        assert_eq!(p.dist(0, 0), 0.0);
        assert_eq!(p.dist(0, 1), 2.0);
        // v0 -> s0 -> s1 -> v2 = 1 + 0.5 + 1
        assert!((p.dist(0, 2) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn path_reconstruction_matches_distance() {
        let g = line();
        let p = PathCosts::floyd_warshall(&g, distance_cost);
        let path = p.path(0, 2).unwrap();
        assert_eq!(path.first(), Some(&0));
        assert_eq!(path.last(), Some(&2));
        let total: f64 = path
            .windows(2)
            .map(|w| g.link(g.edge_between(w[0], w[1]).unwrap()).distance)
            .sum();
        assert!((total - p.dist(0, 2)).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_all_agrees_with_floyd_warshall() {
        let g = line();
        let fw = PathCosts::floyd_warshall(&g, distance_cost);
        let dj = PathCosts::dijkstra_all(&g, distance_cost);
        for a in 0..g.node_count() {
            for b in 0..g.node_count() {
                assert!(
                    (fw.dist(a, b) - dj.dist(a, b)).abs() < 1e-9,
                    "mismatch at ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn dijkstra_path_reconstruction() {
        let g = line();
        let dj = PathCosts::dijkstra_all(&g, distance_cost);
        let path = dj.path(0, 2).unwrap();
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), 2);
        // every consecutive pair must be an actual edge
        for w in path.windows(2) {
            assert!(g.edge_between(w[0], w[1]).is_some());
        }
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut g = line();
        let lonely = g.add_rack(RackId(9));
        let p = PathCosts::floyd_warshall(&g, distance_cost);
        assert!(p.dist(0, lonely).is_infinite());
        assert!(p.path(0, lonely).is_none());
    }

    #[test]
    fn transmission_cost_formula() {
        let mut l = Link::new(10.0, 1.0, LinkTier::CoreAgg);
        l.consume(5.0); // B(e) = 5
        let f = transmission_cost(20.0, 1.0, 1.0);
        // T = 20/5 = 4, P = 5/10 = 0.5
        assert!((f(&l) - 4.5).abs() < 1e-12);
        let f2 = transmission_cost(20.0, 2.0, 0.0);
        assert!((f2(&l) - 8.0).abs() < 1e-12);
    }
}

//! The wired network graph `G_r = (V ∪ S, E_r)` (Sec. II-C).
//!
//! Nodes are either racks (delegation node = shim + ToR) or non-ToR
//! switches; edges carry [`Link`] state. Storage is a dense adjacency list
//! with an edge table so that link state (available bandwidth) can be
//! mutated in place while both endpoints observe the change.

use crate::ids::{NodeId, RackId, SwitchId};
use crate::link::Link;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense index of a node inside a [`NetGraph`].
pub type NodeIdx = usize;
/// Dense index of an undirected edge inside a [`NetGraph`].
pub type EdgeIdx = usize;

/// The wired DCN graph. Undirected; parallel edges are not allowed (the
/// Floyd–Warshall transformation in Sec. V-A.2 collapses any multigraph
/// into single best-cost edges anyway).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NetGraph {
    nodes: Vec<NodeId>,
    /// adjacency\[u\] = list of (neighbor node idx, edge idx)
    adjacency: Vec<Vec<(NodeIdx, EdgeIdx)>>,
    /// edge table: endpoints + link payload
    edges: Vec<(NodeIdx, NodeIdx, Link)>,
    /// reverse map NodeId -> dense index
    index: HashMap<NodeId, NodeIdx>,
}

impl NetGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node; returns its dense index. Panics if the node already
    /// exists (topology builders own id allocation).
    pub fn add_node(&mut self, id: NodeId) -> NodeIdx {
        assert!(
            !self.index.contains_key(&id),
            "node {id} inserted twice into NetGraph"
        );
        let idx = self.nodes.len();
        self.nodes.push(id);
        self.adjacency.push(Vec::new());
        self.index.insert(id, idx);
        idx
    }

    /// Convenience: add a rack node.
    pub fn add_rack(&mut self, id: RackId) -> NodeIdx {
        self.add_node(NodeId::Rack(id))
    }

    /// Convenience: add a switch node.
    pub fn add_switch(&mut self, id: SwitchId) -> NodeIdx {
        self.add_node(NodeId::Switch(id))
    }

    /// Add an undirected edge with the given link state; returns its index.
    pub fn add_edge(&mut self, a: NodeIdx, b: NodeIdx, link: Link) -> EdgeIdx {
        assert!(
            a < self.nodes.len() && b < self.nodes.len(),
            "endpoint out of range"
        );
        assert_ne!(a, b, "self-loops are not meaningful in a DCN");
        let e = self.edges.len();
        self.edges.push((a, b, link));
        self.adjacency[a].push((b, e));
        self.adjacency[b].push((a, e));
        e
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The `NodeId` at a dense index.
    #[inline]
    pub fn node_id(&self, idx: NodeIdx) -> NodeId {
        self.nodes[idx]
    }

    /// Dense index for a `NodeId`, if present.
    #[inline]
    pub fn node_idx(&self, id: NodeId) -> Option<NodeIdx> {
        self.index.get(&id).copied()
    }

    /// Dense index for a rack node; panics if absent (rack ids are always
    /// inserted by the builders).
    #[inline]
    pub fn rack_idx(&self, rack: RackId) -> NodeIdx {
        self.node_idx(NodeId::Rack(rack))
            .unwrap_or_else(|| panic!("rack {rack} not in graph"))
    }

    /// Neighbors of a node as (neighbor index, edge index).
    #[inline]
    pub fn neighbors(&self, idx: NodeIdx) -> &[(NodeIdx, EdgeIdx)] {
        &self.adjacency[idx]
    }

    /// Degree of a node.
    #[inline]
    pub fn degree(&self, idx: NodeIdx) -> usize {
        self.adjacency[idx].len()
    }

    /// Immutable link payload of an edge.
    #[inline]
    pub fn link(&self, e: EdgeIdx) -> &Link {
        &self.edges[e].2
    }

    /// Mutable link payload of an edge.
    #[inline]
    pub fn link_mut(&mut self, e: EdgeIdx) -> &mut Link {
        &mut self.edges[e].2
    }

    /// Endpoints of an edge.
    #[inline]
    pub fn endpoints(&self, e: EdgeIdx) -> (NodeIdx, NodeIdx) {
        let (a, b, _) = self.edges[e];
        (a, b)
    }

    /// Find the edge between two nodes, if any.
    pub fn edge_between(&self, a: NodeIdx, b: NodeIdx) -> Option<EdgeIdx> {
        self.adjacency[a]
            .iter()
            .find(|&&(n, _)| n == b)
            .map(|&(_, e)| e)
    }

    /// Iterator over all node indices.
    pub fn node_indices(&self) -> impl Iterator<Item = NodeIdx> {
        0..self.nodes.len()
    }

    /// Iterator over all edges as (a, b, &Link).
    pub fn edges(&self) -> impl Iterator<Item = (NodeIdx, NodeIdx, &Link)> {
        self.edges.iter().map(|(a, b, l)| (*a, *b, l))
    }

    /// All rack node indices (the delegation set `V`).
    pub fn rack_indices(&self) -> Vec<NodeIdx> {
        self.node_indices()
            .filter(|&i| self.nodes[i].is_rack())
            .collect()
    }

    /// All switch node indices (the set `S`).
    pub fn switch_indices(&self) -> Vec<NodeIdx> {
        self.node_indices()
            .filter(|&i| !self.nodes[i].is_rack())
            .collect()
    }

    /// True when every node can reach every other node (BFS from node 0).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in &self.adjacency[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkTier;

    fn triangle() -> NetGraph {
        let mut g = NetGraph::new();
        let a = g.add_rack(RackId(0));
        let b = g.add_rack(RackId(1));
        let s = g.add_switch(SwitchId(0));
        g.add_edge(a, s, Link::new(1.0, 1.0, LinkTier::Edge));
        g.add_edge(b, s, Link::new(1.0, 1.0, LinkTier::Edge));
        g
    }

    #[test]
    fn counts_and_lookup() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_idx(NodeId::Rack(RackId(1))), Some(1));
        assert_eq!(g.rack_idx(RackId(0)), 0);
        assert_eq!(g.node_id(2), NodeId::Switch(SwitchId(0)));
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = triangle();
        let s = g.node_idx(NodeId::Switch(SwitchId(0))).unwrap();
        assert_eq!(g.degree(s), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.edge_between(0, s), Some(0));
        assert_eq!(g.edge_between(s, 0), Some(0));
        assert_eq!(g.edge_between(0, 1), None);
    }

    #[test]
    fn link_mutation_visible_from_both_sides() {
        let mut g = triangle();
        let e = g.edge_between(0, 2).unwrap();
        g.link_mut(e).consume(0.4);
        let (_, via) = g.neighbors(0)[0];
        assert!((g.link(via).available_bw - 0.6).abs() < 1e-12);
    }

    #[test]
    fn rack_and_switch_partition() {
        let g = triangle();
        assert_eq!(g.rack_indices(), vec![0, 1]);
        assert_eq!(g.switch_indices(), vec![2]);
    }

    #[test]
    fn connectivity() {
        let mut g = triangle();
        assert!(g.is_connected());
        g.add_rack(RackId(2));
        assert!(!g.is_connected());
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_node_panics() {
        let mut g = NetGraph::new();
        g.add_rack(RackId(0));
        g.add_rack(RackId(0));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = NetGraph::new();
        let a = g.add_rack(RackId(0));
        g.add_edge(a, a, Link::new(1.0, 1.0, LinkTier::Edge));
    }
}

//! The VM dependency graph `G_d = (V, E_d)` (Sec. II-C).
//!
//! Two VMs are *dependent* when they communicate; dependent VMs also
//! conflict — "two dependent VMs usually cannot reach an accommodation if
//! they are hosted at the same physical server simultaneously" \[18\], so
//! `G_d` doubles as the conflict graph enforced by constraint (7)
//! (`χ_ij = 0`) of the VMMIGRATION formulation.

use crate::ids::VmId;
use crate::placement::Placement;
use serde::{Deserialize, Serialize};

/// Undirected dependency/conflict graph over VMs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DependencyGraph {
    adjacency: Vec<Vec<VmId>>,
}

impl DependencyGraph {
    /// Graph over `vm_count` VMs with no dependencies yet.
    pub fn new(vm_count: usize) -> Self {
        Self {
            adjacency: vec![Vec::new(); vm_count],
        }
    }

    /// Grow the vertex set to cover `vm`.
    fn ensure(&mut self, vm: VmId) {
        if vm.index() >= self.adjacency.len() {
            self.adjacency.resize(vm.index() + 1, Vec::new());
        }
    }

    /// Declare `a` and `b` dependent (idempotent).
    pub fn add_dependency(&mut self, a: VmId, b: VmId) {
        assert_ne!(a, b, "a VM cannot depend on itself");
        self.ensure(a);
        self.ensure(b);
        if !self.adjacency[a.index()].contains(&b) {
            self.adjacency[a.index()].push(b);
            self.adjacency[b.index()].push(a);
        }
    }

    /// Neighbours `N_d(m)` of a VM (excluding the VM itself; the paper's
    /// `N_d(v_i)` includes `v_i` but every use subtracts it back out).
    pub fn neighbors(&self, vm: VmId) -> &[VmId] {
        self.adjacency
            .get(vm.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether two VMs are dependent.
    pub fn dependent(&self, a: VmId, b: VmId) -> bool {
        self.neighbors(a).contains(&b)
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// True when no vertex has been declared.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Conflict check for constraint (7): would moving `vm` onto `host`
    /// co-locate it with a dependent VM?
    pub fn conflicts_on_host(
        &self,
        vm: VmId,
        host: crate::ids::HostId,
        placement: &Placement,
    ) -> bool {
        placement
            .vms_on(host)
            .iter()
            .any(|&other| other != vm && self.dependent(vm, other))
    }

    /// The characteristic function χ of Eqn. 2: 1 when migrating `vm` from
    /// its rack to `to_rack` changes the induced dependency neighbourhood
    /// (i.e. the VM has at least one dependent VM placed outside the
    /// destination rack, so re-wiring cost `C_d · D(e)` is incurred).
    pub fn chi(&self, vm: VmId, to_rack: crate::ids::RackId, placement: &Placement) -> f64 {
        let moved = self
            .neighbors(vm)
            .iter()
            .any(|&other| placement.rack_of(other) != to_rack);
        if moved {
            1.0
        } else {
            0.0
        }
    }
}

/// Generate a random dependency graph where each VM depends on
/// `avg_degree` others on average (Erdős–Rényi over the VM set). Used by
/// the simulator's workload bootstrap.
pub fn random_dependencies<R: rand::Rng>(
    rng: &mut R,
    vm_count: usize,
    avg_degree: f64,
) -> DependencyGraph {
    let mut g = DependencyGraph::new(vm_count);
    if vm_count < 2 {
        return g;
    }
    let p = (avg_degree / (vm_count as f64 - 1.0)).clamp(0.0, 1.0);
    for a in 0..vm_count {
        for b in (a + 1)..vm_count {
            if rng.gen_bool(p) {
                g.add_dependency(VmId::from_index(a), VmId::from_index(b));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{HostId, RackId};
    use crate::placement::VmSpec;
    use crate::rack::Inventory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn add_and_query() {
        let mut g = DependencyGraph::new(3);
        g.add_dependency(VmId(0), VmId(1));
        assert!(g.dependent(VmId(0), VmId(1)));
        assert!(g.dependent(VmId(1), VmId(0)));
        assert!(!g.dependent(VmId(0), VmId(2)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn add_is_idempotent() {
        let mut g = DependencyGraph::new(2);
        g.add_dependency(VmId(0), VmId(1));
        g.add_dependency(VmId(1), VmId(0));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(VmId(0)).len(), 1);
    }

    #[test]
    fn grows_on_demand() {
        let mut g = DependencyGraph::new(0);
        g.add_dependency(VmId(5), VmId(9));
        assert_eq!(g.len(), 10);
        assert!(g.dependent(VmId(5), VmId(9)));
        assert!(g.neighbors(VmId(3)).is_empty());
    }

    fn setup() -> (Placement, DependencyGraph) {
        let mut inv = Inventory::new();
        inv.add_rack(2, 10.0, 100.0); // rack 0: hosts 0,1
        inv.add_rack(2, 10.0, 100.0); // rack 1: hosts 2,3
        let mut p = Placement::new(&inv);
        for h in [0usize, 0, 2] {
            let s = VmSpec {
                id: p.next_vm_id(),
                capacity: 2.0,
                value: 1.0,
                delay_sensitive: false,
            };
            p.add_vm(s, HostId::from_index(h)).unwrap();
        }
        let mut g = DependencyGraph::new(3);
        g.add_dependency(VmId(0), VmId(1)); // same host 0
        g.add_dependency(VmId(0), VmId(2)); // across racks
        (p, g)
    }

    #[test]
    fn conflict_detection() {
        let (p, g) = setup();
        // VM2 depends on VM0 which lives on host 0 -> conflict there
        assert!(g.conflicts_on_host(VmId(2), HostId(0), &p));
        // host 1 is empty -> no conflict
        assert!(!g.conflicts_on_host(VmId(2), HostId(1), &p));
        // a VM never conflicts with itself
        assert!(!g.conflicts_on_host(VmId(2), HostId(2), &p));
    }

    #[test]
    fn chi_detects_outside_dependents() {
        let (p, g) = setup();
        // VM1 depends only on VM0 (rack 0). Moving VM1 to rack 1 leaves a
        // dependent outside the destination -> χ = 1.
        assert_eq!(g.chi(VmId(1), RackId(1), &p), 1.0);
        // Moving VM1 within rack 0 keeps its dependent inside -> χ = 0.
        assert_eq!(g.chi(VmId(1), RackId(0), &p), 0.0);
        // A VM with no dependencies never pays dependency cost.
        let lone = DependencyGraph::new(3);
        assert_eq!(lone.chi(VmId(1), RackId(1), &p), 0.0);
    }

    #[test]
    fn random_graph_degree_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = random_dependencies(&mut rng, 200, 3.0);
        let avg = 2.0 * g.edge_count() as f64 / 200.0;
        assert!((avg - 3.0).abs() < 1.0, "avg degree {avg}");
        // symmetric
        for a in 0..200 {
            for &b in g.neighbors(VmId::from_index(a)) {
                assert!(g.dependent(b, VmId::from_index(a)));
            }
        }
    }
}

//! Yen's k-shortest loopless paths. Fat-Tree and BCube are deliberately
//! multipath; FLOWREROUTE benefits from choosing among several disjoint
//! detours (ECMP-style) instead of only the single shortest one, and the
//! congestion-aware reroute picks the least-loaded of the k candidates.

use crate::graph::{EdgeIdx, NetGraph, NodeIdx};
use crate::link::Link;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A path as node sequence plus its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Node sequence, inclusive of both endpoints.
    pub nodes: Vec<NodeIdx>,
    /// Total edge cost.
    pub cost: f64,
}

impl Path {
    /// The edge indices along the path.
    pub fn edges(&self, g: &NetGraph) -> Vec<EdgeIdx> {
        self.nodes
            .windows(2)
            .map(|w| g.edge_between(w[0], w[1]).expect("path edge exists"))
            .collect()
    }
}

/// Dijkstra variant honouring banned nodes/edges; returns the shortest
/// path or `None`.
fn shortest_with_bans(
    g: &NetGraph,
    src: NodeIdx,
    dst: NodeIdx,
    edge_cost: &impl Fn(&Link) -> f64,
    banned_nodes: &[bool],
    banned_edges: &[bool],
) -> Option<Path> {
    #[derive(PartialEq)]
    struct E(f64, NodeIdx);
    impl Eq for E {}
    impl Ord for E {
        fn cmp(&self, o: &Self) -> Ordering {
            o.0.partial_cmp(&self.0).expect("no NaN costs")
        }
    }
    impl PartialOrd for E {
        fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
            Some(self.cmp(o))
        }
    }
    if banned_nodes[src] || banned_nodes[dst] {
        return None;
    }
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(E(0.0, src));
    while let Some(E(d, u)) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        if u == dst {
            break;
        }
        for &(v, e) in g.neighbors(u) {
            if banned_nodes[v] || banned_edges[e] {
                continue;
            }
            let nd = d + edge_cost(g.link(e));
            if nd < dist[v] {
                dist[v] = nd;
                prev[v] = u;
                heap.push(E(nd, v));
            }
        }
    }
    if !dist[dst].is_finite() {
        return None;
    }
    let mut nodes = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = prev[cur];
        nodes.push(cur);
    }
    nodes.reverse();
    Some(Path {
        nodes,
        cost: dist[dst],
    })
}

/// Yen's algorithm: up to `k` loopless shortest paths from `src` to
/// `dst`, sorted by cost. Fewer than `k` are returned when the graph
/// doesn't have that many distinct paths.
pub fn k_shortest_paths(
    g: &NetGraph,
    src: NodeIdx,
    dst: NodeIdx,
    k: usize,
    edge_cost: impl Fn(&Link) -> f64,
) -> Vec<Path> {
    assert!(k >= 1, "k must be positive");
    let mut banned_nodes = vec![false; g.node_count()];
    let mut banned_edges = vec![false; g.edge_count()];

    let Some(first) = shortest_with_bans(g, src, dst, &edge_cost, &banned_nodes, &banned_edges)
    else {
        return Vec::new();
    };
    let mut found = vec![first];
    let mut candidates: Vec<Path> = Vec::new();

    for _ in 1..k {
        let last = found.last().expect("at least the first path").clone();
        // branch at every spur node of the previous path
        for spur_idx in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[spur_idx];
            let root = &last.nodes[..=spur_idx];

            banned_edges.iter_mut().for_each(|b| *b = false);
            banned_nodes.iter_mut().for_each(|b| *b = false);
            // ban edges used by previous paths that share this root
            for p in &found {
                if p.nodes.len() > spur_idx && p.nodes[..=spur_idx] == *root {
                    if let Some(e) = g.edge_between(p.nodes[spur_idx], p.nodes[spur_idx + 1]) {
                        banned_edges[e] = true;
                    }
                }
            }
            // ban root nodes (except the spur) to keep paths loopless
            for &n in &root[..spur_idx] {
                banned_nodes[n] = true;
            }

            if let Some(spur) =
                shortest_with_bans(g, spur_node, dst, &edge_cost, &banned_nodes, &banned_edges)
            {
                let mut nodes = root[..spur_idx].to_vec();
                nodes.extend(spur.nodes);
                let cost: f64 = nodes
                    .windows(2)
                    .map(|w| edge_cost(g.link(g.edge_between(w[0], w[1]).expect("edge"))))
                    .sum();
                let cand = Path { nodes, cost };
                if !found.contains(&cand) && !candidates.contains(&cand) {
                    candidates.push(cand);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // take the cheapest candidate
        let (best_idx, _) = candidates
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.cost.partial_cmp(&b.1.cost).expect("no NaN"))
            .expect("non-empty");
        found.push(candidates.swap_remove(best_idx));
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::{self, FatTreeConfig};
    use crate::ids::RackId;
    use crate::path::distance_cost;

    #[test]
    fn finds_all_equal_cost_paths_in_fattree() {
        // same-pod racks in a 4-pod fat-tree have exactly k/2 = 2 disjoint
        // 2-hop paths (one per aggregation switch)
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let src = dcn.rack_node(RackId(0));
        let dst = dcn.rack_node(RackId(1));
        let paths = k_shortest_paths(&dcn.graph, src, dst, 4, distance_cost);
        assert!(paths.len() >= 2, "expected >= 2 paths, got {}", paths.len());
        assert!((paths[0].cost - 2.0).abs() < 1e-12);
        assert!((paths[1].cost - 2.0).abs() < 1e-12);
        // middle hops must differ (different agg switches)
        assert_ne!(paths[0].nodes[1], paths[1].nodes[1]);
    }

    #[test]
    fn paths_are_sorted_and_loopless() {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let src = dcn.rack_node(RackId(0));
        let dst = dcn.rack_node(RackId(4)); // cross-pod
        let paths = k_shortest_paths(&dcn.graph, src, dst, 6, distance_cost);
        assert!(!paths.is_empty());
        for w in paths.windows(2) {
            assert!(w[0].cost <= w[1].cost + 1e-12, "not sorted");
        }
        for p in &paths {
            let set: std::collections::HashSet<_> = p.nodes.iter().collect();
            assert_eq!(set.len(), p.nodes.len(), "loop in path {:?}", p.nodes);
            assert_eq!(p.nodes[0], src);
            assert_eq!(*p.nodes.last().unwrap(), dst);
        }
    }

    #[test]
    fn cost_matches_edge_sum() {
        let dcn = fattree::build(&FatTreeConfig::paper(4));
        let src = dcn.rack_node(RackId(0));
        let dst = dcn.rack_node(RackId(2));
        for p in k_shortest_paths(&dcn.graph, src, dst, 3, distance_cost) {
            let sum: f64 = p
                .edges(&dcn.graph)
                .iter()
                .map(|&e| dcn.graph.link(e).distance)
                .sum();
            assert!((sum - p.cost).abs() < 1e-9);
        }
    }

    #[test]
    fn k_larger_than_path_count_is_fine() {
        // a DCell0 star has exactly one path between any two servers
        let dcn = crate::dcell::build(&crate::dcell::DCellConfig::paper(3, 0));
        let paths = k_shortest_paths(
            &dcn.graph,
            dcn.rack_node(RackId(0)),
            dcn.rack_node(RackId(1)),
            5,
            distance_cost,
        );
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn unreachable_returns_empty() {
        let mut g = crate::graph::NetGraph::new();
        let a = g.add_rack(RackId(0));
        let b = g.add_rack(RackId(1));
        assert!(k_shortest_paths(&g, a, b, 3, distance_cost).is_empty());
    }
}

//! # dcn-topology
//!
//! Data center network substrates for the Sheriff reproduction (ICPP'15):
//! Fat-Tree and BCube topology builders, the wired graph
//! `G_r = (V ∪ S, E_r)` with per-link capacity/distance/bandwidth state,
//! all-pairs shortest paths (Floyd–Warshall and repeated Dijkstra),
//! rack/host inventories, the VM placement map, and the VM dependency
//! (conflict) graph `G_d`.
//!
//! ```
//! use dcn_topology::fattree::{self, FatTreeConfig};
//! use dcn_topology::path::{PathCosts, distance_cost};
//!
//! let dcn = fattree::build(&FatTreeConfig::paper(4));
//! assert_eq!(dcn.rack_count(), 8);
//! let costs = PathCosts::dijkstra_all(&dcn.graph, distance_cost);
//! assert!(costs.dist(dcn.rack_node(0.into()), dcn.rack_node(7.into())).is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bcube;
pub mod dcell;
pub mod dcn;
pub mod dependency;
pub mod fattree;
pub mod graph;
pub mod ids;
pub mod ksp;
pub mod link;
pub mod path;
pub mod placement;
pub mod rack;
pub mod vl2;

pub use dcn::{Dcn, TopologyKind};
pub use dependency::DependencyGraph;
pub use graph::{EdgeIdx, NetGraph, NodeIdx};
pub use ids::{HostId, NodeId, RackId, SwitchId, VmId};
pub use link::{Link, LinkTier};
pub use path::PathCosts;
pub use placement::{Placement, PlacementError, VmSpec};
pub use rack::{Host, Inventory, Rack};

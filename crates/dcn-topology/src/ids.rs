//! Strongly-typed identifiers for every entity in the data center network.
//!
//! The paper (Sec. II-C) distinguishes shim/delegation nodes `v_i` (one per
//! rack, co-located with the ToR switch), aggregation/core switches `s_j`,
//! hosts `h_ij`, and virtual machines `m^k_ij`. Using newtypes instead of
//! bare `usize` makes it impossible to index a rack table with a VM id.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Raw index, usable for dense `Vec` storage.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a dense index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                Self(i as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                Self::from_index(i)
            }
        }
    };
}

id_type!(
    /// A rack and its shim/delegation node `v_i` (the ToR controller).
    RackId,
    "v"
);
id_type!(
    /// A physical host (server) `h_ij`, globally indexed.
    HostId,
    "h"
);
id_type!(
    /// A virtual machine `m^k_ij`, globally indexed.
    VmId,
    "m"
);
id_type!(
    /// An aggregation/core/BCube switch `s_j` (ToR switches are part of the
    /// rack node, per the paper's "smallest network unit" convention).
    SwitchId,
    "s"
);

/// A node of the wired network graph `G_r = (V ∪ S, E_r)`: either a rack
/// (shim + ToR, the paper's `v_i`) or a non-ToR switch (`s_j`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// Delegation node: rack with its ToR switch and shim layer.
    Rack(RackId),
    /// Aggregation, core, or BCube-level switch.
    Switch(SwitchId),
}

impl NodeId {
    /// Returns the rack id if this node is a rack.
    #[inline]
    pub fn as_rack(self) -> Option<RackId> {
        match self {
            NodeId::Rack(r) => Some(r),
            NodeId::Switch(_) => None,
        }
    }

    /// Returns the switch id if this node is a switch.
    #[inline]
    pub fn as_switch(self) -> Option<SwitchId> {
        match self {
            NodeId::Rack(_) => None,
            NodeId::Switch(s) => Some(s),
        }
    }

    /// True when the node is a rack (delegation node).
    #[inline]
    pub fn is_rack(self) -> bool {
        matches!(self, NodeId::Rack(_))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Rack(r) => write!(f, "{r}"),
            NodeId::Switch(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let r = RackId::from_index(7);
        assert_eq!(r.index(), 7);
        assert_eq!(r, RackId(7));
        assert_eq!(r.to_string(), "v7");
    }

    #[test]
    fn host_vm_switch_display() {
        assert_eq!(HostId(3).to_string(), "h3");
        assert_eq!(VmId(12).to_string(), "m12");
        assert_eq!(SwitchId(0).to_string(), "s0");
    }

    #[test]
    fn node_id_accessors() {
        let n = NodeId::Rack(RackId(2));
        assert!(n.is_rack());
        assert_eq!(n.as_rack(), Some(RackId(2)));
        assert_eq!(n.as_switch(), None);

        let s = NodeId::Switch(SwitchId(5));
        assert!(!s.is_rack());
        assert_eq!(s.as_switch(), Some(SwitchId(5)));
        assert_eq!(s.as_rack(), None);
        assert_eq!(s.to_string(), "s5");
    }

    #[test]
    fn ordering_is_by_raw_value() {
        assert!(RackId(1) < RackId(2));
        assert!(NodeId::Rack(RackId(9)) < NodeId::Switch(SwitchId(0)));
    }

    #[test]
    fn from_usize() {
        let v: VmId = 5usize.into();
        assert_eq!(v, VmId(5));
    }
}

//! DCell topology builder (Guo et al., SIGCOMM'08) — the third topology
//! family, exercising Sec. II-A's claim that Sheriff "can be easily
//! implemented in other DCN topologies". DCell is recursively defined and
//! server-centric like BCube but wires servers *directly to each other*
//! across sub-cells, so the delegation graph contains server–server edges
//! in addition to server–switch edges.
//!
//! DCell₀(n) is `n` servers on one mini-switch. DCell_k is built from
//! `g_k = t_{k−1} + 1` copies of DCell_{k−1} (where `t_{k−1}` is the
//! number of servers in a DCell_{k−1}); server `j` of sub-cell `i` links
//! to server `i` of sub-cell `j + 1` for `i ≤ j` (the classical
//! construction pairing each server with exactly one level-k link).

use crate::dcn::{Dcn, TopologyKind};
use crate::graph::{NetGraph, NodeIdx};
use crate::ids::SwitchId;
use crate::link::{Link, LinkTier};
use crate::rack::Inventory;
use serde::{Deserialize, Serialize};

/// Parameters for building a DCell [`Dcn`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DCellConfig {
    /// Servers per DCell₀ (mini-switch port count); ≥ 2.
    pub n: usize,
    /// Recursion level `k` (0 = just a DCell₀).
    pub k: usize,
    /// Hosts per server-rack.
    pub hosts_per_rack: usize,
    /// Per-host resource capacity.
    pub host_capacity: f64,
    /// Server uplink capacity.
    pub tor_capacity: f64,
    /// Bandwidth of every link.
    pub bandwidth: f64,
    /// Physical distance of intra-cell (level-0) links.
    pub level0_distance: f64,
    /// Extra distance per recursion level.
    pub per_level_distance: f64,
}

impl DCellConfig {
    /// Settings aligned with the other topologies' paper settings.
    pub fn paper(n: usize, k: usize) -> Self {
        Self {
            n,
            k,
            hosts_per_rack: 2,
            host_capacity: 100.0,
            tor_capacity: 1000.0,
            bandwidth: 1.0,
            level0_distance: 1.0,
            per_level_distance: 1.0,
        }
    }

    /// Number of servers `t_k` in a DCell of level `k`.
    pub fn server_count(&self) -> usize {
        t_k(self.n, self.k)
    }

    /// Number of mini-switches (one per DCell₀).
    pub fn switch_count(&self) -> usize {
        self.server_count() / self.n
    }
}

/// `t_k`: servers in a DCell_k. `t_0 = n`, `t_k = t_{k−1} · (t_{k−1} + 1)`.
pub fn t_k(n: usize, k: usize) -> usize {
    let mut t = n;
    for _ in 0..k {
        t *= t + 1;
    }
    t
}

/// Build a DCell [`Dcn`].
pub fn build(cfg: &DCellConfig) -> Dcn {
    assert!(cfg.n >= 2, "DCell needs n >= 2");
    assert!(
        cfg.k <= 2,
        "t_k explodes double-exponentially; k <= 2 covers 10^5+ servers"
    );
    let servers = cfg.server_count();

    let mut graph = NetGraph::new();
    let mut inventory = Inventory::new();
    let mut rack_nodes: Vec<NodeIdx> = Vec::with_capacity(servers);
    for _ in 0..servers {
        let rack = inventory.add_rack(cfg.hosts_per_rack, cfg.host_capacity, cfg.tor_capacity);
        rack_nodes.push(graph.add_rack(rack));
    }

    // level-0 mini-switches: consecutive groups of n servers
    // (switch ids continue across levels, hence the explicit counter)
    let mut next_switch = 0u32;
    #[allow(clippy::explicit_counter_loop)]
    for cell0 in 0..servers / cfg.n {
        let sw = graph.add_switch(SwitchId(next_switch));
        next_switch += 1;
        for j in 0..cfg.n {
            graph.add_edge(
                rack_nodes[cell0 * cfg.n + j],
                sw,
                Link::new(cfg.bandwidth, cfg.level0_distance, LinkTier::Edge),
            );
        }
    }

    // recursive level-l links: within each DCell_l (a block of t_l
    // servers), connect its g_l = t_{l-1}+1 sub-cells pairwise
    for level in 1..=cfg.k {
        let t_prev = t_k(cfg.n, level - 1);
        let t_cur = t_k(cfg.n, level);
        let distance = cfg.level0_distance + cfg.per_level_distance * level as f64;
        for block in 0..servers / t_cur {
            let base = block * t_cur;
            // sub-cell i, server j ↔ sub-cell j+1, server i (i <= j)
            let g = t_prev + 1;
            for i in 0..g {
                for j in i..g - 1 {
                    let a = base + i * t_prev + j;
                    let b = base + (j + 1) * t_prev + i;
                    graph.add_edge(
                        rack_nodes[a],
                        rack_nodes[b],
                        Link::new(cfg.bandwidth, distance, LinkTier::Edge),
                    );
                }
            }
        }
    }

    Dcn {
        kind: TopologyKind::DCell { n: cfg.n, k: cfg.k },
        graph,
        inventory,
        rack_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RackId;
    use crate::path::{distance_cost, PathCosts};

    #[test]
    fn t_k_formula() {
        assert_eq!(t_k(4, 0), 4);
        assert_eq!(t_k(4, 1), 20);
        assert_eq!(t_k(4, 2), 420);
        assert_eq!(t_k(2, 1), 6);
        assert_eq!(t_k(3, 1), 12);
    }

    #[test]
    fn dcell0_is_a_star() {
        let dcn = build(&DCellConfig::paper(4, 0));
        assert_eq!(dcn.rack_count(), 4);
        assert_eq!(dcn.graph.node_count(), 5);
        assert_eq!(dcn.graph.edge_count(), 4);
        assert!(dcn.graph.is_connected());
    }

    #[test]
    fn dcell1_counts_and_degrees() {
        // DCell1(4): 20 servers, 5 mini-switches, each server exactly one
        // level-1 link -> 10 level-1 edges + 20 level-0 edges
        let dcn = build(&DCellConfig::paper(4, 1));
        assert_eq!(dcn.rack_count(), 20);
        assert_eq!(dcn.graph.edge_count(), 30);
        for &node in &dcn.rack_nodes {
            assert_eq!(dcn.graph.degree(node), 2, "server = 1 switch + 1 peer link");
        }
        assert!(dcn.graph.is_connected());
    }

    #[test]
    fn dcell1_counts_for_various_n() {
        for n in [2usize, 3, 5, 6] {
            let cfg = DCellConfig::paper(n, 1);
            let dcn = build(&cfg);
            assert_eq!(dcn.rack_count(), cfg.server_count(), "n={n}");
            assert_eq!(
                dcn.graph.node_count() - dcn.rack_count(),
                cfg.switch_count(),
                "n={n}"
            );
            assert!(dcn.graph.is_connected(), "n={n}");
        }
    }

    #[test]
    fn dcell2_is_connected() {
        // DCell2(2): t_1 = 6, t_2 = 42 servers
        let dcn = build(&DCellConfig::paper(2, 2));
        assert_eq!(dcn.rack_count(), 42);
        assert!(dcn.graph.is_connected());
        // every server has one level-0 port plus one port per level
        for &node in &dcn.rack_nodes {
            assert!(dcn.graph.degree(node) >= 2 && dcn.graph.degree(node) <= 3);
        }
    }

    #[test]
    fn cross_cell_paths_exist_and_are_short() {
        let dcn = build(&DCellConfig::paper(4, 1));
        let p = PathCosts::dijkstra_all(&dcn.graph, distance_cost);
        // same DCell0: 2 hops through the mini-switch
        assert!((p.dist(dcn.rack_node(RackId(0)), dcn.rack_node(RackId(1))) - 2.0).abs() < 1e-12);
        // different DCell0s: reachable within a few hops (DCell1 diameter is small)
        let d = p.dist(dcn.rack_node(RackId(0)), dcn.rack_node(RackId(19)));
        assert!(d.is_finite() && d <= 8.0, "cross-cell distance {d}");
    }

    #[test]
    #[should_panic(expected = "k <= 2")]
    fn deep_recursion_rejected() {
        build(&DCellConfig::paper(2, 3));
    }
}

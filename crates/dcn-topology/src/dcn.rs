//! A complete data center network: wired graph + rack/host inventory.

use crate::graph::{NetGraph, NodeIdx};
use crate::ids::RackId;
use crate::rack::Inventory;
use serde::{Deserialize, Serialize};

/// Which topology family a [`Dcn`] was built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Fat-Tree with `pods` pods (Al-Fares et al., SIGCOMM'08).
    FatTree {
        /// Number of pods `k` (even).
        pods: usize,
    },
    /// BCube(n, k): `levels = k + 1` switch levels of `n^k` switches each,
    /// `n^(k+1)` servers (Guo et al., SIGCOMM'09).
    BCube {
        /// Switch port count / servers per BCube₀ group.
        n: usize,
        /// Highest level index `k` (BCube₀ has k = 0).
        k: usize,
    },
    /// DCell(n, k): recursively-defined server-centric topology with
    /// direct server-to-server links (Guo et al., SIGCOMM'08).
    DCell {
        /// Servers per DCell₀.
        n: usize,
        /// Recursion level.
        k: usize,
    },
    /// VL2 Clos network (Greenberg et al., SIGCOMM'09 — the paper's \[3\]).
    Vl2 {
        /// Aggregation-switch port count.
        d_a: usize,
        /// Intermediate-switch port count.
        d_i: usize,
    },
}

/// A data center network instance: the wired graph `G_r`, the rack/host
/// inventory, and the mapping between the two.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dcn {
    /// Topology family and parameters.
    pub kind: TopologyKind,
    /// Wired graph `G_r = (V ∪ S, E_r)`.
    pub graph: NetGraph,
    /// Racks and hosts.
    pub inventory: Inventory,
    /// `rack_nodes[rack.index()]` = graph node index of that rack.
    pub rack_nodes: Vec<NodeIdx>,
}

impl Dcn {
    /// Graph node index of a rack's delegation node.
    #[inline]
    pub fn rack_node(&self, rack: RackId) -> NodeIdx {
        self.rack_nodes[rack.index()]
    }

    /// Number of racks (delegation nodes `|V|`).
    #[inline]
    pub fn rack_count(&self) -> usize {
        self.rack_nodes.len()
    }

    /// Racks whose delegation node is within `hops` edges of `rack`'s node
    /// in `G_r` — the shim's *dominating region* (the paper's local scope is
    /// one-hop wired neighbours, Sec. VIII). Excludes `rack` itself.
    pub fn neighbor_racks(&self, rack: RackId, hops: usize) -> Vec<RackId> {
        let start = self.rack_node(rack);
        let n = self.graph.node_count();
        let mut depth = vec![usize::MAX; n];
        depth[start] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        let mut out = Vec::new();
        while let Some(u) = queue.pop_front() {
            if depth[u] == hops {
                continue;
            }
            for &(v, _) in self.graph.neighbors(u) {
                if depth[v] == usize::MAX {
                    depth[v] = depth[u] + 1;
                    if let Some(r) = self.graph.node_id(v).as_rack() {
                        if r != rack {
                            out.push(r);
                        }
                    }
                    queue.push_back(v);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

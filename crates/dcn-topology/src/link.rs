//! Physical link model: capacity `C(e)`, distance `D(e)` and available
//! bandwidth `B(e)` (Table I of the paper).
//!
//! `B(e)` is defined as "the smaller one of current available bandwidth and
//! bandwidth in request on e" and must exceed the threshold `B_t` for the
//! link to be usable during a migration transfer (Sec. III-C).

use serde::{Deserialize, Serialize};

/// The tier a link belongs to; used to assign the paper's simulation
/// bandwidths (core–aggregation 10, aggregation–ToR 1, Sec. VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkTier {
    /// ToR/rack ↔ aggregation switch (Fat-Tree) or server-level (BCube).
    Edge,
    /// Aggregation ↔ core switch.
    CoreAgg,
}

/// An undirected physical link `e ∈ E_r`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Maximum capacity `C(e)` (normalised Gbps units).
    pub capacity: f64,
    /// Physical distance `D(e)` (metres; racks are ~0.6 m wide with ~2 m
    /// row spacing, Sec. II-A).
    pub distance: f64,
    /// Available bandwidth `B(e)`: min(free bandwidth, requested bandwidth).
    pub available_bw: f64,
    /// Which tier the link belongs to.
    pub tier: LinkTier,
}

impl Link {
    /// Create a link with full capacity available.
    pub fn new(capacity: f64, distance: f64, tier: LinkTier) -> Self {
        assert!(capacity > 0.0, "link capacity must be positive");
        assert!(distance >= 0.0, "link distance must be non-negative");
        Self {
            capacity,
            distance,
            available_bw: capacity,
            tier,
        }
    }

    /// Transmission time `T(e) = m.capacity / B(e)` for moving a VM of the
    /// given size across this link (Sec. III-C).
    #[inline]
    pub fn transmission_time(&self, vm_capacity: f64) -> f64 {
        debug_assert!(self.available_bw > 0.0);
        vm_capacity / self.available_bw
    }

    /// Utilisation rate `P(e) = B(e) / C(e)` of the bandwidth (Sec. III-C).
    #[inline]
    pub fn utility_rate(&self) -> f64 {
        self.available_bw / self.capacity
    }

    /// Whether the link can carry a migration given threshold `B_t`.
    #[inline]
    pub fn usable(&self, threshold: f64) -> bool {
        self.available_bw > threshold
    }

    /// Consume `amount` of available bandwidth (e.g. a flow is routed over
    /// this link). Saturates at zero.
    pub fn consume(&mut self, amount: f64) {
        self.available_bw = (self.available_bw - amount).max(0.0);
    }

    /// Release `amount` of bandwidth back (a flow ended). Saturates at the
    /// link capacity.
    pub fn release(&mut self, amount: f64) {
        self.available_bw = (self.available_bw + amount).min(self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::new(10.0, 2.0, LinkTier::CoreAgg)
    }

    #[test]
    fn new_link_is_fully_available() {
        let l = link();
        assert_eq!(l.available_bw, 10.0);
        assert_eq!(l.utility_rate(), 1.0);
    }

    #[test]
    fn transmission_time_scales_with_vm_size() {
        let l = link();
        assert_eq!(l.transmission_time(20.0), 2.0);
        assert_eq!(l.transmission_time(5.0), 0.5);
    }

    #[test]
    fn consume_and_release_clamp() {
        let mut l = link();
        l.consume(4.0);
        assert_eq!(l.available_bw, 6.0);
        assert_eq!(l.utility_rate(), 0.6);
        l.consume(100.0);
        assert_eq!(l.available_bw, 0.0);
        l.release(3.0);
        assert_eq!(l.available_bw, 3.0);
        l.release(100.0);
        assert_eq!(l.available_bw, 10.0);
    }

    #[test]
    fn usable_respects_threshold() {
        let mut l = link();
        assert!(l.usable(5.0));
        l.consume(6.0);
        assert!(!l.usable(5.0));
        assert!(l.usable(1.0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Link::new(0.0, 1.0, LinkTier::Edge);
    }
}

//! Fat-Tree topology builder (Sec. II, Fig. 1; Al-Fares et al. \[27\]).
//!
//! A `k`-pod Fat-Tree has `(k/2)²` core switches and `k` pods, each with
//! `k/2` aggregation switches and `k/2` edge (ToR) switches. Every ToR is a
//! rack/delegation node holding `hosts_per_rack` servers (classically
//! `k/2`). Edge switch ↔ every aggregation switch of its pod; aggregation
//! switch `j` of every pod ↔ core switches `j·k/2 … (j+1)·k/2 − 1`.

use crate::dcn::{Dcn, TopologyKind};
use crate::graph::NetGraph;
use crate::ids::SwitchId;
use crate::link::{Link, LinkTier};
use crate::rack::Inventory;
use serde::{Deserialize, Serialize};

/// Parameters for building a Fat-Tree [`Dcn`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FatTreeConfig {
    /// Number of pods `k`; must be even and ≥ 2.
    pub pods: usize,
    /// Servers per rack (the paper's facility settings describe ~40; the
    /// classical Fat-Tree uses `k/2`).
    pub hosts_per_rack: usize,
    /// Per-host resource capacity (normalised units).
    pub host_capacity: f64,
    /// ToR uplink capacity (used by the β threshold in Alg. 1/2).
    pub tor_capacity: f64,
    /// Bandwidth of ToR ↔ aggregation links (paper Sec. VI-B: 1).
    pub edge_bandwidth: f64,
    /// Bandwidth of aggregation ↔ core links (paper Sec. VI-B: 10).
    pub core_bandwidth: f64,
    /// Physical distance of intra-pod links (racks are adjacent in a row).
    pub edge_distance: f64,
    /// Physical distance of pod ↔ core links (across rows).
    pub core_distance: f64,
}

impl FatTreeConfig {
    /// The paper's simulation settings (Sec. VI-B) for a `k`-pod tree.
    pub fn paper(pods: usize) -> Self {
        Self {
            pods,
            hosts_per_rack: pods / 2,
            host_capacity: 100.0,
            tor_capacity: 1000.0,
            edge_bandwidth: 1.0,
            core_bandwidth: 10.0,
            edge_distance: 1.0,
            core_distance: 2.0,
        }
    }

    /// Expected number of racks: `k²/2`.
    pub fn rack_count(&self) -> usize {
        self.pods * self.pods / 2
    }

    /// Expected number of non-ToR switches: `k²/4` core + `k²/2` agg.
    pub fn switch_count(&self) -> usize {
        self.pods * self.pods / 4 + self.pods * self.pods / 2
    }

    /// Expected number of hosts.
    pub fn host_count(&self) -> usize {
        self.rack_count() * self.hosts_per_rack
    }
}

/// Build a Fat-Tree [`Dcn`] from a config.
pub fn build(cfg: &FatTreeConfig) -> Dcn {
    assert!(
        cfg.pods >= 2 && cfg.pods.is_multiple_of(2),
        "pods must be even and >= 2"
    );
    let k = cfg.pods;
    let half = k / 2;

    let mut graph = NetGraph::new();
    let mut inventory = Inventory::new();
    let mut rack_nodes = Vec::with_capacity(cfg.rack_count());
    let mut next_switch = 0u32;
    let mut switch = |graph: &mut NetGraph| {
        let id = SwitchId(next_switch);
        next_switch += 1;
        graph.add_switch(id)
    };

    // core switches, indexed [j][i] with j = which agg column, i = 0..half
    let mut cores = Vec::with_capacity(half * half);
    for _ in 0..half * half {
        cores.push(switch(&mut graph));
    }

    for _pod in 0..k {
        // aggregation switches of this pod
        let aggs: Vec<_> = (0..half).map(|_| switch(&mut graph)).collect();
        // ToR/rack nodes of this pod
        for _ in 0..half {
            let rack = inventory.add_rack(cfg.hosts_per_rack, cfg.host_capacity, cfg.tor_capacity);
            let node = graph.add_rack(rack);
            rack_nodes.push(node);
            for &agg in &aggs {
                graph.add_edge(
                    node,
                    agg,
                    Link::new(cfg.edge_bandwidth, cfg.edge_distance, LinkTier::Edge),
                );
            }
        }
        // agg j connects to core group j
        for (j, &agg) in aggs.iter().enumerate() {
            for i in 0..half {
                graph.add_edge(
                    agg,
                    cores[j * half + i],
                    Link::new(cfg.core_bandwidth, cfg.core_distance, LinkTier::CoreAgg),
                );
            }
        }
    }

    Dcn {
        kind: TopologyKind::FatTree { pods: k },
        graph,
        inventory,
        rack_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RackId;
    use crate::path::{distance_cost, PathCosts};

    #[test]
    fn four_pod_counts() {
        let cfg = FatTreeConfig::paper(4);
        let dcn = build(&cfg);
        // racks = k²/2 = 8, switches = k²/4 + k²/2 = 4 + 8 = 12
        assert_eq!(dcn.rack_count(), 8);
        assert_eq!(dcn.graph.node_count(), 8 + 12);
        assert_eq!(dcn.inventory.host_count(), 8 * 2);
        // edges: racks*half (8*2=16) + pods*half*half (4*2*2=16)
        assert_eq!(dcn.graph.edge_count(), 32);
    }

    #[test]
    fn counts_match_config_formulas() {
        for k in [2usize, 4, 8, 16] {
            let cfg = FatTreeConfig::paper(k);
            let dcn = build(&cfg);
            assert_eq!(dcn.rack_count(), cfg.rack_count(), "k={k}");
            assert_eq!(
                dcn.graph.node_count(),
                cfg.rack_count() + cfg.switch_count(),
                "k={k}"
            );
            assert_eq!(dcn.inventory.host_count(), cfg.host_count(), "k={k}");
        }
    }

    #[test]
    fn fat_tree_is_connected() {
        for k in [2usize, 4, 8] {
            let dcn = build(&FatTreeConfig::paper(k));
            assert!(dcn.graph.is_connected(), "k={k}");
        }
    }

    #[test]
    fn rack_degree_is_half_k() {
        let k = 8;
        let dcn = build(&FatTreeConfig::paper(k));
        for &node in &dcn.rack_nodes {
            assert_eq!(dcn.graph.degree(node), k / 2);
        }
    }

    #[test]
    fn intra_pod_cheaper_than_cross_pod() {
        let dcn = build(&FatTreeConfig::paper(4));
        let p = PathCosts::dijkstra_all(&dcn.graph, distance_cost);
        // racks 0,1 share pod 0; rack 2 is in pod 1
        let same_pod = p.dist(dcn.rack_node(RackId(0)), dcn.rack_node(RackId(1)));
        let cross_pod = p.dist(dcn.rack_node(RackId(0)), dcn.rack_node(RackId(2)));
        assert!(same_pod < cross_pod);
    }

    #[test]
    fn neighbor_racks_two_hops_is_pod() {
        let k = 4;
        let dcn = build(&FatTreeConfig::paper(k));
        // two hops (rack -> agg -> rack) reaches exactly the pod peers
        let nb = dcn.neighbor_racks(RackId(0), 2);
        assert_eq!(nb, vec![RackId(1)]);
        // four hops reaches every rack
        let nb4 = dcn.neighbor_racks(RackId(0), 4);
        assert_eq!(nb4.len(), dcn.rack_count() - 1);
    }

    #[test]
    #[should_panic(expected = "pods must be even")]
    fn odd_pods_rejected() {
        build(&FatTreeConfig::paper(3));
    }
}

//! BCube topology builder (Sec. VI-B; Guo et al., SIGCOMM'09).
//!
//! BCube(n, k) is server-centric: `n^(k+1)` servers, each with `k+1` ports,
//! and `k+1` levels of `n^k` switches. A server is labelled by digits
//! `(a_k, …, a_0)` with `a_i ∈ [0, n)`; the level-`l` switch identified by
//! the label with digit `l` removed connects the `n` servers that differ
//! only in digit `l`.
//!
//! Sheriff's delegation unit is the rack/ToR; in a server-centric BCube
//! each *server* plays that role, so every BCube server becomes one rack
//! whose `hosts_per_rack` hosts model the VMs' physical machines. The
//! paper sweeps "the number of the switches each level of Bcube ... from 8
//! to 48", i.e. BCube(n, 1) with n = 8..48.

use crate::dcn::{Dcn, TopologyKind};
use crate::graph::NetGraph;
use crate::ids::SwitchId;
use crate::link::{Link, LinkTier};
use crate::rack::Inventory;
use serde::{Deserialize, Serialize};

/// Parameters for building a BCube [`Dcn`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BCubeConfig {
    /// Switch port count `n` (servers per BCube₀ group); ≥ 2.
    pub n: usize,
    /// Highest level `k` (BCube(n, 1) has two switch levels).
    pub k: usize,
    /// Hosts per server-rack.
    pub hosts_per_rack: usize,
    /// Per-host resource capacity.
    pub host_capacity: f64,
    /// Server uplink capacity (β threshold base in Alg. 1/2).
    pub tor_capacity: f64,
    /// Bandwidth of every server ↔ switch link (paper: same settings as
    /// Fat-Tree's edge level, 1).
    pub bandwidth: f64,
    /// Physical distance of level-0 links.
    pub level0_distance: f64,
    /// Extra distance per level above 0 (higher levels span farther).
    pub per_level_distance: f64,
}

impl BCubeConfig {
    /// The paper's simulation settings for BCube(n, 1).
    pub fn paper(n: usize) -> Self {
        Self {
            n,
            k: 1,
            hosts_per_rack: 2,
            host_capacity: 100.0,
            tor_capacity: 1000.0,
            bandwidth: 1.0,
            level0_distance: 1.0,
            per_level_distance: 1.0,
        }
    }

    /// Number of servers (= racks in our mapping): `n^(k+1)`.
    pub fn server_count(&self) -> usize {
        self.n.pow(self.k as u32 + 1)
    }

    /// Number of switches: `(k+1) · n^k`.
    pub fn switch_count(&self) -> usize {
        (self.k + 1) * self.n.pow(self.k as u32)
    }
}

/// Build a BCube [`Dcn`] from a config.
pub fn build(cfg: &BCubeConfig) -> Dcn {
    assert!(cfg.n >= 2, "BCube needs n >= 2");
    let n = cfg.n;
    let levels = cfg.k + 1;
    let servers = cfg.server_count();
    let per_level = n.pow(cfg.k as u32);

    let mut graph = NetGraph::new();
    let mut inventory = Inventory::new();
    let mut rack_nodes = Vec::with_capacity(servers);

    // server-racks first: server s has digits base-n
    for _ in 0..servers {
        let rack = inventory.add_rack(cfg.hosts_per_rack, cfg.host_capacity, cfg.tor_capacity);
        rack_nodes.push(graph.add_rack(rack));
    }

    // switches: level l, group g (g = server label with digit l removed)
    let mut next_switch = 0u32;
    for level in 0..levels {
        let distance = cfg.level0_distance + cfg.per_level_distance * level as f64;
        for group in 0..per_level {
            let sw = graph.add_switch(SwitchId(next_switch));
            next_switch += 1;
            // reinsert digit `level` into `group` to enumerate members
            let low_base = n.pow(level as u32);
            let low = group % low_base;
            let high = group / low_base;
            for digit in 0..n {
                let server = high * low_base * n + digit * low_base + low;
                graph.add_edge(
                    rack_nodes[server],
                    sw,
                    Link::new(cfg.bandwidth, distance, LinkTier::Edge),
                );
            }
        }
    }

    Dcn {
        kind: TopologyKind::BCube { n, k: cfg.k },
        graph,
        inventory,
        rack_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RackId;
    use crate::path::{distance_cost, PathCosts};

    #[test]
    fn bcube_4_1_counts() {
        let cfg = BCubeConfig::paper(4);
        let dcn = build(&cfg);
        assert_eq!(dcn.rack_count(), 16); // n² servers
        assert_eq!(dcn.graph.node_count(), 16 + 8); // + 2 levels × 4 switches
        assert_eq!(dcn.graph.edge_count(), 32); // each server has k+1 = 2 ports
    }

    #[test]
    fn counts_match_formulas() {
        for (n, k) in [(2usize, 1usize), (3, 1), (4, 2), (8, 1)] {
            let cfg = BCubeConfig {
                k,
                ..BCubeConfig::paper(n)
            };
            let dcn = build(&cfg);
            assert_eq!(dcn.rack_count(), cfg.server_count(), "n={n} k={k}");
            assert_eq!(
                dcn.graph.node_count() - dcn.rack_count(),
                cfg.switch_count(),
                "n={n} k={k}"
            );
            // every server has exactly k+1 ports
            for &node in &dcn.rack_nodes {
                assert_eq!(dcn.graph.degree(node), k + 1);
            }
        }
    }

    #[test]
    fn bcube_is_connected() {
        for n in [2usize, 4, 8] {
            let dcn = build(&BCubeConfig::paper(n));
            assert!(dcn.graph.is_connected(), "n={n}");
        }
    }

    #[test]
    fn switch_degree_is_n() {
        let cfg = BCubeConfig::paper(4);
        let dcn = build(&cfg);
        for idx in dcn.graph.switch_indices() {
            assert_eq!(dcn.graph.degree(idx), 4);
        }
    }

    #[test]
    fn same_group_two_hops_apart() {
        // In BCube(4,1), servers 0 and 1 share a level-0 switch:
        // distance = 1 + 1 = 2 via level-0 (distance 1 each side).
        let dcn = build(&BCubeConfig::paper(4));
        let p = PathCosts::dijkstra_all(&dcn.graph, distance_cost);
        let d01 = p.dist(dcn.rack_node(RackId(0)), dcn.rack_node(RackId(1)));
        assert!((d01 - 2.0).abs() < 1e-12);
        // servers 0 and 4 differ in digit 1 → level-1 switch, distance 2 each side
        let d04 = p.dist(dcn.rack_node(RackId(0)), dcn.rack_node(RackId(4)));
        assert!((d04 - 4.0).abs() < 1e-12);
        // servers 0 and 5 differ in both digits → two hops through servers
        let d05 = p.dist(dcn.rack_node(RackId(0)), dcn.rack_node(RackId(5)));
        assert!(d05 > d04);
    }

    #[test]
    fn level_groups_partition_servers() {
        // every server appears in exactly one group per level
        let cfg = BCubeConfig::paper(3);
        let dcn = build(&cfg);
        // count edges per server per level by distance (level encoded in distance)
        for &node in &dcn.rack_nodes {
            let mut dists: Vec<f64> = dcn
                .graph
                .neighbors(node)
                .iter()
                .map(|&(_, e)| dcn.graph.link(e).distance)
                .collect();
            dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(dists, vec![1.0, 2.0]);
        }
    }
}

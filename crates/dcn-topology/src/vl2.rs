//! VL2 topology builder (Greenberg et al., SIGCOMM'09 — the paper's
//! ref. \[3\]). A Clos network: `D_A/2` intermediate switches with `D_I`
//! ports each, `D_I` aggregation switches with `D_A` ports each
//! (complete bipartite between the two layers), and `D_A·D_I/4` ToRs,
//! each dual-homed to two aggregation switches.

use crate::dcn::{Dcn, TopologyKind};
use crate::graph::NetGraph;
use crate::ids::SwitchId;
use crate::link::{Link, LinkTier};
use crate::rack::Inventory;
use serde::{Deserialize, Serialize};

/// Parameters for building a VL2 [`Dcn`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vl2Config {
    /// Aggregation-switch port count `D_A` (even, ≥ 4).
    pub d_a: usize,
    /// Intermediate-switch port count `D_I` (even, ≥ 2).
    pub d_i: usize,
    /// Servers per ToR (VL2 deploys 20 per rack).
    pub hosts_per_rack: usize,
    /// Per-host resource capacity.
    pub host_capacity: f64,
    /// ToR uplink capacity.
    pub tor_capacity: f64,
    /// ToR ↔ aggregation bandwidth (10G in VL2; 1.0 in the paper's
    /// normalised units).
    pub edge_bandwidth: f64,
    /// Aggregation ↔ intermediate bandwidth.
    pub core_bandwidth: f64,
    /// Physical distance of ToR ↔ aggregation links.
    pub edge_distance: f64,
    /// Physical distance of aggregation ↔ intermediate links.
    pub core_distance: f64,
}

impl Vl2Config {
    /// Settings aligned with the other builders' paper settings.
    pub fn paper(d_a: usize, d_i: usize) -> Self {
        Self {
            d_a,
            d_i,
            hosts_per_rack: 2,
            host_capacity: 100.0,
            tor_capacity: 1000.0,
            edge_bandwidth: 1.0,
            core_bandwidth: 10.0,
            edge_distance: 1.0,
            core_distance: 2.0,
        }
    }

    /// Number of ToRs/racks: `D_A · D_I / 4`.
    pub fn rack_count(&self) -> usize {
        self.d_a * self.d_i / 4
    }

    /// Number of non-ToR switches: `D_A/2` intermediate + `D_I` aggregation.
    pub fn switch_count(&self) -> usize {
        self.d_a / 2 + self.d_i
    }
}

/// Build a VL2 [`Dcn`].
pub fn build(cfg: &Vl2Config) -> Dcn {
    assert!(
        cfg.d_a >= 4 && cfg.d_a.is_multiple_of(2),
        "D_A must be even and >= 4"
    );
    assert!(
        cfg.d_i >= 2 && cfg.d_i.is_multiple_of(2),
        "D_I must be even and >= 2"
    );

    let mut graph = NetGraph::new();
    let mut inventory = Inventory::new();
    let mut next_switch = 0u32;
    let mut switch = |graph: &mut NetGraph| {
        let id = SwitchId(next_switch);
        next_switch += 1;
        graph.add_switch(id)
    };

    // intermediate layer
    let ints: Vec<_> = (0..cfg.d_a / 2).map(|_| switch(&mut graph)).collect();
    // aggregation layer, complete bipartite with intermediates
    let aggs: Vec<_> = (0..cfg.d_i).map(|_| switch(&mut graph)).collect();
    for &agg in &aggs {
        for &int in &ints {
            graph.add_edge(
                agg,
                int,
                Link::new(cfg.core_bandwidth, cfg.core_distance, LinkTier::CoreAgg),
            );
        }
    }

    // ToRs: rack i dual-homes to aggs (i mod D_I) and ((i+1) mod D_I);
    // the ring assignment gives every aggregation switch exactly D_A/2
    // ToR-facing links
    let racks = cfg.rack_count();
    let mut rack_nodes = Vec::with_capacity(racks);
    for i in 0..racks {
        let rack = inventory.add_rack(cfg.hosts_per_rack, cfg.host_capacity, cfg.tor_capacity);
        let node = graph.add_rack(rack);
        rack_nodes.push(node);
        let a1 = aggs[i % cfg.d_i];
        let a2 = aggs[(i + 1) % cfg.d_i];
        for agg in [a1, a2] {
            graph.add_edge(
                node,
                agg,
                Link::new(cfg.edge_bandwidth, cfg.edge_distance, LinkTier::Edge),
            );
        }
    }

    Dcn {
        kind: TopologyKind::Vl2 {
            d_a: cfg.d_a,
            d_i: cfg.d_i,
        },
        graph,
        inventory,
        rack_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RackId;
    use crate::path::PathCosts;

    #[test]
    fn counts_match_formulas() {
        for (da, di) in [(4usize, 4usize), (8, 4), (8, 8), (12, 6)] {
            let cfg = Vl2Config::paper(da, di);
            let dcn = build(&cfg);
            assert_eq!(dcn.rack_count(), cfg.rack_count(), "D_A={da} D_I={di}");
            assert_eq!(
                dcn.graph.node_count() - dcn.rack_count(),
                cfg.switch_count()
            );
            // edges: complete bipartite (d_i * d_a/2) + 2 per ToR
            assert_eq!(dcn.graph.edge_count(), di * da / 2 + 2 * cfg.rack_count());
        }
    }

    #[test]
    fn tors_are_dual_homed_and_aggs_balanced() {
        let cfg = Vl2Config::paper(8, 4);
        let dcn = build(&cfg);
        for &node in &dcn.rack_nodes {
            assert_eq!(dcn.graph.degree(node), 2, "ToRs dual-home");
        }
        // every aggregation switch: D_A/2 ToR links + D_A/2 int links = D_A
        let int_count = cfg.d_a / 2;
        for idx in dcn.graph.switch_indices() {
            let sw = dcn.graph.node_id(idx).as_switch().unwrap();
            let degree = dcn.graph.degree(idx);
            if (sw.index()) < int_count {
                assert_eq!(degree, cfg.d_i, "intermediate degree");
            } else {
                assert_eq!(degree, cfg.d_a, "aggregation degree");
            }
        }
    }

    #[test]
    fn vl2_is_connected_with_short_paths() {
        let dcn = build(&Vl2Config::paper(8, 4));
        assert!(dcn.graph.is_connected());
        let hops = PathCosts::dijkstra_all(&dcn.graph, |_| 1.0);
        let racks = dcn.rack_count();
        for i in 0..racks {
            for j in 0..racks {
                if i == j {
                    continue;
                }
                let d = hops.dist(
                    dcn.rack_node(RackId::from_index(i)),
                    dcn.rack_node(RackId::from_index(j)),
                );
                // Clos: 2 hops through a shared agg or 4 through the core
                assert!(d == 2.0 || d == 4.0, "ToR distance {d}");
            }
        }
    }

    #[test]
    fn sheriff_metric_works_on_vl2() {
        // the cost metric and neighbor regions must work out of the box
        let dcn = build(&Vl2Config::paper(8, 4));
        let region = dcn.neighbor_racks(RackId(0), 2);
        assert!(!region.is_empty());
        assert!(region.len() < dcn.rack_count() - 1, "region is local");
    }

    #[test]
    #[should_panic(expected = "D_A must be even")]
    fn odd_da_rejected() {
        build(&Vl2Config::paper(5, 4));
    }
}

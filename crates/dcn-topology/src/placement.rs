//! VM specifications and the VM → host placement map (the paper's `M`,
//! `VM_i` lists, Sec. II-C) with capacity-checked migration (Eqn. 8).

use crate::ids::{HostId, RackId, VmId};
use crate::rack::Inventory;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Static description of a VM `m^k_ij`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VmSpec {
    /// Global VM id.
    pub id: VmId,
    /// Resource demand (the paper caps it at 20 in Sec. VI-B; Mbps is the
    /// minimum capacity unit in Alg. 2).
    pub capacity: f64,
    /// The "value" used by the PRIORITY knapsack (Alg. 2): lower-value VMs
    /// are preferred migration victims.
    pub value: f64,
    /// Delay-sensitive VMs are never selected for migration (Alg. 2 line 1).
    pub delay_sensitive: bool,
}

/// Errors from placement mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// Destination host lacks free capacity (violates Eqn. 8).
    CapacityExceeded {
        /// The host that could not accept the VM.
        host: HostId,
        /// The VM that did not fit.
        vm: VmId,
    },
    /// The VM is already on the requested host.
    AlreadyPlaced {
        /// The VM in question.
        vm: VmId,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::CapacityExceeded { host, vm } => {
                write!(f, "host {host} lacks capacity for VM {vm}")
            }
            PlacementError::AlreadyPlaced { vm } => {
                write!(f, "VM {vm} is already on the requested host")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// The live VM → host assignment, with per-host usage accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Placement {
    specs: Vec<VmSpec>,
    vm_host: Vec<HostId>,
    host_vms: Vec<Vec<VmId>>,
    host_used: Vec<f64>,
    host_capacity: Vec<f64>,
    host_rack: Vec<RackId>,
    host_online: Vec<bool>,
}

impl Placement {
    /// Empty placement over an inventory's hosts.
    pub fn new(inventory: &Inventory) -> Self {
        let host_capacity: Vec<f64> = inventory.hosts().map(|h| h.capacity).collect();
        let host_rack: Vec<RackId> = inventory.hosts().map(|h| h.rack).collect();
        let n = host_capacity.len();
        Self {
            specs: Vec::new(),
            vm_host: Vec::new(),
            host_vms: vec![Vec::new(); n],
            host_used: vec![0.0; n],
            host_capacity,
            host_rack,
            host_online: vec![true; n],
        }
    }

    /// Place a new VM on a host. The spec's `id` must equal the next dense
    /// id; use [`Placement::next_vm_id`] to allocate.
    pub fn add_vm(&mut self, spec: VmSpec, host: HostId) -> Result<VmId, PlacementError> {
        assert_eq!(
            spec.id.index(),
            self.specs.len(),
            "VM ids must be allocated densely via next_vm_id()"
        );
        let id = spec.id;
        if self.free_capacity(host) < spec.capacity {
            return Err(PlacementError::CapacityExceeded { host, vm: id });
        }
        self.host_used[host.index()] += spec.capacity;
        self.host_vms[host.index()].push(id);
        self.vm_host.push(host);
        self.specs.push(spec);
        Ok(id)
    }

    /// The id the next [`Placement::add_vm`] call must use.
    #[inline]
    pub fn next_vm_id(&self) -> VmId {
        VmId::from_index(self.specs.len())
    }

    /// Move a VM to another host, enforcing Eqn. 8 (capacity).
    pub fn migrate(&mut self, vm: VmId, to: HostId) -> Result<(), PlacementError> {
        let from = self.vm_host[vm.index()];
        if from == to {
            return Err(PlacementError::AlreadyPlaced { vm });
        }
        let cap = self.specs[vm.index()].capacity;
        if self.free_capacity(to) < cap {
            return Err(PlacementError::CapacityExceeded { host: to, vm });
        }
        self.host_used[from.index()] -= cap;
        self.host_vms[from.index()].retain(|&v| v != vm);
        self.host_used[to.index()] += cap;
        self.host_vms[to.index()].push(vm);
        self.vm_host[vm.index()] = to;
        Ok(())
    }

    /// Spec of a VM.
    #[inline]
    pub fn spec(&self, vm: VmId) -> &VmSpec {
        &self.specs[vm.index()]
    }

    /// Host currently running a VM.
    #[inline]
    pub fn host_of(&self, vm: VmId) -> HostId {
        self.vm_host[vm.index()]
    }

    /// Rack currently hosting a VM.
    #[inline]
    pub fn rack_of(&self, vm: VmId) -> RackId {
        self.host_rack[self.host_of(vm).index()]
    }

    /// Rack of a host.
    #[inline]
    pub fn rack_of_host(&self, host: HostId) -> RackId {
        self.host_rack[host.index()]
    }

    /// VMs on a host (the `M_ij` set).
    #[inline]
    pub fn vms_on(&self, host: HostId) -> &[VmId] {
        &self.host_vms[host.index()]
    }

    /// Used capacity on a host.
    #[inline]
    pub fn used_capacity(&self, host: HostId) -> f64 {
        self.host_used[host.index()]
    }

    /// Free capacity on a host. An offline host reports zero so every
    /// capacity check (Eqn. 8) naturally rejects it as a destination.
    #[inline]
    pub fn free_capacity(&self, host: HostId) -> f64 {
        if !self.host_online[host.index()] {
            return 0.0;
        }
        self.host_capacity[host.index()] - self.host_used[host.index()]
    }

    /// Whether a host is accepting placements (true unless failed via
    /// [`Placement::set_host_online`]).
    #[inline]
    pub fn is_host_online(&self, host: HostId) -> bool {
        self.host_online[host.index()]
    }

    /// Mark a host failed (`online = false`) or recovered. Resident VMs
    /// stay assigned — evacuating them is the management layer's job —
    /// but the host stops being a valid migration destination.
    pub fn set_host_online(&mut self, host: HostId, online: bool) {
        self.host_online[host.index()] = online;
    }

    /// Utilisation fraction of a host in [0, 1].
    #[inline]
    pub fn utilization(&self, host: HostId) -> f64 {
        self.host_used[host.index()] / self.host_capacity[host.index()]
    }

    /// Total capacity of a host.
    #[inline]
    pub fn host_capacity(&self, host: HostId) -> f64 {
        self.host_capacity[host.index()]
    }

    /// Number of VMs.
    #[inline]
    pub fn vm_count(&self) -> usize {
        self.specs.len()
    }

    /// Number of hosts.
    #[inline]
    pub fn host_count(&self) -> usize {
        self.host_capacity.len()
    }

    /// Iterate over all VM ids.
    pub fn vm_ids(&self) -> impl Iterator<Item = VmId> {
        (0..self.specs.len()).map(VmId::from_index)
    }

    /// Population standard deviation of host utilisation percentages —
    /// the paper's Fig. 9/10 metric ("workload percentages" std-dev).
    pub fn utilization_stddev(&self) -> f64 {
        let n = self.host_capacity.len();
        if n == 0 {
            return 0.0;
        }
        let utils: Vec<f64> = (0..n)
            .map(|i| 100.0 * self.host_used[i] / self.host_capacity[i])
            .collect();
        let mean = utils.iter().sum::<f64>() / n as f64;
        let var = utils.iter().map(|u| (u - mean).powi(2)).sum::<f64>() / n as f64;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv() -> Inventory {
        let mut inv = Inventory::new();
        inv.add_rack(2, 10.0, 100.0); // hosts 0, 1
        inv.add_rack(1, 10.0, 100.0); // host 2
        inv
    }

    fn spec(p: &Placement, cap: f64) -> VmSpec {
        VmSpec {
            id: p.next_vm_id(),
            capacity: cap,
            value: 1.0,
            delay_sensitive: false,
        }
    }

    #[test]
    fn add_and_account() {
        let inv = inv();
        let mut p = Placement::new(&inv);
        let s = spec(&p, 4.0);
        let vm = p.add_vm(s, HostId(0)).unwrap();
        assert_eq!(p.host_of(vm), HostId(0));
        assert_eq!(p.used_capacity(HostId(0)), 4.0);
        assert_eq!(p.free_capacity(HostId(0)), 6.0);
        assert_eq!(p.vms_on(HostId(0)), &[vm]);
        assert_eq!(p.rack_of(vm), RackId(0));
    }

    #[test]
    fn capacity_enforced_on_add() {
        let inv = inv();
        let mut p = Placement::new(&inv);
        let s = spec(&p, 11.0);
        let err = p.add_vm(s, HostId(0)).unwrap_err();
        assert!(matches!(err, PlacementError::CapacityExceeded { .. }));
        assert_eq!(p.vm_count(), 0);
    }

    #[test]
    fn migrate_moves_usage() {
        let inv = inv();
        let mut p = Placement::new(&inv);
        let s = spec(&p, 6.0);
        let vm = p.add_vm(s, HostId(0)).unwrap();
        p.migrate(vm, HostId(2)).unwrap();
        assert_eq!(p.used_capacity(HostId(0)), 0.0);
        assert_eq!(p.used_capacity(HostId(2)), 6.0);
        assert_eq!(p.rack_of(vm), RackId(1));
        assert!(p.vms_on(HostId(0)).is_empty());
    }

    #[test]
    fn migrate_rejects_overload_and_noop() {
        let inv = inv();
        let mut p = Placement::new(&inv);
        let a = p.add_vm(spec(&p, 6.0), HostId(0)).unwrap();
        let b = p.add_vm(spec(&p, 6.0), HostId(1)).unwrap();
        // b cannot join a on host 0 (6+6 > 10)
        assert!(matches!(
            p.migrate(b, HostId(0)),
            Err(PlacementError::CapacityExceeded { .. })
        ));
        assert_eq!(p.host_of(b), HostId(1));
        assert!(matches!(
            p.migrate(a, HostId(0)),
            Err(PlacementError::AlreadyPlaced { .. })
        ));
    }

    #[test]
    fn stddev_drops_when_balanced() {
        let inv = inv();
        let mut p = Placement::new(&inv);
        let a = p.add_vm(spec(&p, 5.0), HostId(0)).unwrap();
        let _b = p.add_vm(spec(&p, 5.0), HostId(0)).unwrap();
        let before = p.utilization_stddev();
        p.migrate(a, HostId(1)).unwrap();
        let after = p.utilization_stddev();
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn offline_host_rejects_placements_but_keeps_residents() {
        let inv = inv();
        let mut p = Placement::new(&inv);
        let a = p.add_vm(spec(&p, 4.0), HostId(0)).unwrap();
        let b = p.add_vm(spec(&p, 4.0), HostId(1)).unwrap();
        p.set_host_online(HostId(0), false);
        assert!(!p.is_host_online(HostId(0)));
        assert_eq!(p.free_capacity(HostId(0)), 0.0);
        // residents stay assigned and accounted
        assert_eq!(p.host_of(a), HostId(0));
        assert_eq!(p.used_capacity(HostId(0)), 4.0);
        // inbound migration is rejected by the ordinary capacity check
        assert!(matches!(
            p.migrate(b, HostId(0)),
            Err(PlacementError::CapacityExceeded { .. })
        ));
        // outbound evacuation still works
        p.migrate(a, HostId(2)).unwrap();
        assert_eq!(p.used_capacity(HostId(0)), 0.0);
        // recovery restores the full headroom
        p.set_host_online(HostId(0), true);
        assert_eq!(p.free_capacity(HostId(0)), 10.0);
        p.migrate(b, HostId(0)).unwrap();
    }

    #[test]
    fn stddev_zero_when_uniform() {
        let inv = inv();
        let mut p = Placement::new(&inv);
        for h in 0..3 {
            let s = spec(&p, 5.0);
            p.add_vm(s, HostId(h)).unwrap();
        }
        assert!(p.utilization_stddev() < 1e-12);
    }
}

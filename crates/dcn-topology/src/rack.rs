//! Racks and physical hosts (Sec. II-A/II-C).
//!
//! A rack `v_i` holds a set of hosts `H_i = {h_i1, …}`; the paper's
//! facility settings use 42U racks with ~40 servers each, but the
//! simulations use smaller per-rack host counts, so the count is a
//! builder parameter.

use crate::ids::{HostId, RackId};
use serde::{Deserialize, Serialize};

/// A physical host/server `h_ij`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Host {
    /// Global host id.
    pub id: HostId,
    /// Owning rack (delegation node).
    pub rack: RackId,
    /// Total resource capacity of the host (same normalised units as VM
    /// capacities; Mbps is the paper's minimum capacity unit).
    pub capacity: f64,
}

/// A rack with its shim/ToR delegation node `v_i` and local host set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rack {
    /// Delegation node id.
    pub id: RackId,
    /// Hosts in this rack (the index set `SR_i`).
    pub hosts: Vec<HostId>,
    /// Uplink (ToR) capacity available for migrations/flows.
    pub tor_capacity: f64,
}

/// Dense tables of all racks and hosts in a DCN.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Inventory {
    racks: Vec<Rack>,
    hosts: Vec<Host>,
}

impl Inventory {
    /// Empty inventory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rack with `host_count` hosts of equal `host_capacity`.
    /// Returns the new rack id.
    pub fn add_rack(&mut self, host_count: usize, host_capacity: f64, tor_capacity: f64) -> RackId {
        let rack_id = RackId::from_index(self.racks.len());
        let mut hosts = Vec::with_capacity(host_count);
        for _ in 0..host_count {
            let id = HostId::from_index(self.hosts.len());
            self.hosts.push(Host {
                id,
                rack: rack_id,
                capacity: host_capacity,
            });
            hosts.push(id);
        }
        self.racks.push(Rack {
            id: rack_id,
            hosts,
            tor_capacity,
        });
        rack_id
    }

    /// Number of racks.
    #[inline]
    pub fn rack_count(&self) -> usize {
        self.racks.len()
    }

    /// Number of hosts.
    #[inline]
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Rack by id.
    #[inline]
    pub fn rack(&self, id: RackId) -> &Rack {
        &self.racks[id.index()]
    }

    /// Host by id.
    #[inline]
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.index()]
    }

    /// The rack owning a host.
    #[inline]
    pub fn rack_of(&self, host: HostId) -> RackId {
        self.hosts[host.index()].rack
    }

    /// Iterate over racks.
    pub fn racks(&self) -> impl Iterator<Item = &Rack> {
        self.racks.iter()
    }

    /// Iterate over hosts.
    pub fn hosts(&self) -> impl Iterator<Item = &Host> {
        self.hosts.iter()
    }

    /// All host ids in a rack.
    #[inline]
    pub fn hosts_in(&self, rack: RackId) -> &[HostId] {
        &self.racks[rack.index()].hosts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_rack_allocates_contiguous_hosts() {
        let mut inv = Inventory::new();
        let r0 = inv.add_rack(3, 20.0, 100.0);
        let r1 = inv.add_rack(2, 20.0, 100.0);
        assert_eq!(inv.rack_count(), 2);
        assert_eq!(inv.host_count(), 5);
        assert_eq!(inv.hosts_in(r0), &[HostId(0), HostId(1), HostId(2)]);
        assert_eq!(inv.hosts_in(r1), &[HostId(3), HostId(4)]);
    }

    #[test]
    fn rack_of_is_consistent() {
        let mut inv = Inventory::new();
        let r0 = inv.add_rack(2, 10.0, 50.0);
        let r1 = inv.add_rack(2, 10.0, 50.0);
        for &h in inv.hosts_in(r0) {
            assert_eq!(inv.rack_of(h), r0);
        }
        for &h in inv.hosts_in(r1) {
            assert_eq!(inv.rack_of(h), r1);
        }
    }

    #[test]
    fn capacities_recorded() {
        let mut inv = Inventory::new();
        let r = inv.add_rack(1, 42.0, 99.0);
        assert_eq!(inv.host(HostId(0)).capacity, 42.0);
        assert_eq!(inv.rack(r).tor_capacity, 99.0);
    }
}

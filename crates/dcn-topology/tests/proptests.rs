//! Property-based tests over random graphs: shortest-path algorithms
//! agree with each other, Yen's paths are sorted/loopless/distinct, and
//! topology builders keep their structural invariants.

use dcn_topology::fattree::{self, FatTreeConfig};
use dcn_topology::graph::NetGraph;
use dcn_topology::ids::{RackId, SwitchId};
use dcn_topology::ksp::k_shortest_paths;
use dcn_topology::link::{Link, LinkTier};
use dcn_topology::path::{distance_cost, PathCosts};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random connected graph: `racks` rack nodes + `switches` switch nodes,
/// a random spanning tree plus `extra` random edges with random
/// distances.
fn random_graph(seed: u64, racks: usize, switches: usize, extra: usize) -> NetGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = NetGraph::new();
    for r in 0..racks {
        g.add_rack(RackId::from_index(r));
    }
    for s in 0..switches {
        g.add_switch(SwitchId::from_index(s));
    }
    let n = racks + switches;
    // spanning tree: connect node i to a random earlier node
    for i in 1..n {
        let j = rng.gen_range(0..i);
        let d = rng.gen_range(0.5..5.0);
        g.add_edge(i, j, Link::new(1.0, d, LinkTier::Edge));
    }
    for _ in 0..extra {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && g.edge_between(a, b).is_none() {
            let d = rng.gen_range(0.5..5.0);
            g.add_edge(a, b, Link::new(1.0, d, LinkTier::Edge));
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Floyd–Warshall and repeated Dijkstra compute identical APSP
    /// matrices on arbitrary connected graphs.
    #[test]
    fn apsp_algorithms_agree(seed in 0u64..500, racks in 2usize..8, switches in 1usize..6, extra in 0usize..10) {
        let g = random_graph(seed, racks, switches, extra);
        let fw = PathCosts::floyd_warshall(&g, distance_cost);
        let dj = PathCosts::dijkstra_all(&g, distance_cost);
        for a in 0..g.node_count() {
            for b in 0..g.node_count() {
                prop_assert!((fw.dist(a, b) - dj.dist(a, b)).abs() < 1e-9,
                    "mismatch at ({a},{b}): {} vs {}", fw.dist(a, b), dj.dist(a, b));
            }
        }
    }

    /// Path reconstruction always produces a valid path whose edge sum
    /// equals the reported distance.
    #[test]
    fn apsp_paths_are_consistent(seed in 0u64..500, racks in 2usize..7, extra in 0usize..8) {
        let g = random_graph(seed, racks, 2, extra);
        let p = PathCosts::dijkstra_all(&g, distance_cost);
        for a in 0..g.node_count() {
            for b in 0..g.node_count() {
                let Some(path) = p.path(a, b) else { continue };
                prop_assert_eq!(path[0], a);
                prop_assert_eq!(*path.last().unwrap(), b);
                let total: f64 = path.windows(2).map(|w| {
                    let e = g.edge_between(w[0], w[1]).expect("edge exists");
                    g.link(e).distance
                }).sum();
                prop_assert!((total - p.dist(a, b)).abs() < 1e-9);
            }
        }
    }

    /// Yen's k-shortest paths: sorted by cost, loopless, pairwise
    /// distinct, first equals the Dijkstra optimum.
    #[test]
    fn yen_paths_well_formed(seed in 0u64..500, racks in 2usize..7, extra in 2usize..10, k in 1usize..5) {
        let g = random_graph(seed, racks, 2, extra);
        let n = g.node_count();
        let (a, b) = (0, n - 1);
        let paths = k_shortest_paths(&g, a, b, k, distance_cost);
        prop_assert!(!paths.is_empty(), "connected graph must have a path");
        let apsp = PathCosts::dijkstra_all(&g, distance_cost);
        prop_assert!((paths[0].cost - apsp.dist(a, b)).abs() < 1e-9,
            "first path must be optimal");
        for w in paths.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost + 1e-9, "not sorted");
            prop_assert_ne!(&w[0].nodes, &w[1].nodes, "duplicate path");
        }
        for p in &paths {
            let set: std::collections::HashSet<_> = p.nodes.iter().collect();
            prop_assert_eq!(set.len(), p.nodes.len(), "loop in path");
        }
    }

    /// The triangle inequality holds for every APSP matrix (it is a
    /// shortest-path metric by construction).
    #[test]
    fn apsp_satisfies_triangle_inequality(seed in 0u64..300, racks in 3usize..7, extra in 0usize..8) {
        let g = random_graph(seed, racks, 2, extra);
        let p = PathCosts::dijkstra_all(&g, distance_cost);
        let n = g.node_count();
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    prop_assert!(p.dist(a, c) <= p.dist(a, b) + p.dist(b, c) + 1e-9);
                }
            }
        }
    }

    /// Fat-Tree rack-to-rack hop distance is 2 within a pod and 4 across
    /// pods, for every valid pod count.
    #[test]
    fn fattree_hop_structure(k in (2usize..7).prop_map(|v| v * 2)) {
        let dcn = fattree::build(&FatTreeConfig::paper(k));
        let hops = PathCosts::dijkstra_all(&dcn.graph, |_| 1.0);
        let half = k / 2;
        let racks = dcn.rack_count();
        for i in 0..racks.min(8) {
            for j in 0..racks.min(8) {
                if i == j { continue; }
                let same_pod = i / half == j / half;
                let d = hops.dist(dcn.rack_node(RackId::from_index(i)), dcn.rack_node(RackId::from_index(j)));
                if same_pod {
                    prop_assert_eq!(d, 2.0);
                } else {
                    prop_assert_eq!(d, 4.0);
                }
            }
        }
    }
}

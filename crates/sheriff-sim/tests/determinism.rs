//! Scheduler determinism properties.
//!
//! The event core's contract is structural: identical schedules drain
//! identically, including among events that share a timestamp, and
//! cancelling an event that already fired is a harmless no-op. These
//! properties are what the fabric's byte-for-byte reproducibility tests
//! lean on, so they get their own direct coverage here.

use proptest::prelude::*;
use sheriff_sim::{Simulation, VirtualTime};

/// Replay one generated schedule and return the full drain order as
/// `(at, actor, payload)` triples.
fn drain(plan: &[(u64, u64, u64)]) -> Vec<(u64, u64, u64)> {
    let mut sim = Simulation::new();
    for &(delay, actor, payload) in plan {
        sim.emit(payload, actor, delay);
    }
    let mut order = Vec::new();
    while let Some(ev) = sim.step() {
        order.push((ev.at.get(), ev.actor, ev.event));
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same-seed schedules — including heavy timestamp collisions, the
    /// delay range is tiny on purpose — pop in identical order across
    /// five independent reruns.
    #[test]
    fn same_schedule_drains_identically_across_reruns(
        plan in proptest::collection::vec((0u64..4, 0u64..6, 0u64..1000), 1..40),
    ) {
        let reference = drain(&plan);
        // every timestamp class is drained in schedule order
        for window in reference.windows(2) {
            if let [a, b] = window {
                prop_assert!(a.0 <= b.0, "time order violated: {a:?} then {b:?}");
            }
        }
        for rerun in 0..5 {
            let again = drain(&plan);
            prop_assert_eq!(&again, &reference, "rerun {} diverged", rerun);
        }
    }

    /// `cancel` of an already-popped event is a no-op, never a panic,
    /// and never disturbs the remaining drain order.
    #[test]
    fn cancel_after_pop_is_a_noop(
        delays in proptest::collection::vec(0u64..5, 2..20),
    ) {
        let mut sim = Simulation::new();
        let ids: Vec<_> = delays
            .iter()
            .enumerate()
            .map(|(i, &d)| sim.ctx(i as u64).emit_self(i as u64, d))
            .collect();
        let first = sim.step().expect("at least two events scheduled");
        prop_assert!(!sim.cancel(first.id), "cancel after pop must report false");
        // cancelling every already-fired id again is still a no-op
        prop_assert!(!sim.cancel(first.id));
        let mut seen = vec![first.event];
        while let Some(ev) = sim.step() {
            prop_assert!(!sim.cancel(ev.id));
            seen.push(ev.event);
        }
        prop_assert_eq!(seen.len(), ids.len(), "no event lost or duplicated");
    }

    /// Cancelling a pending event removes exactly that event and leaves
    /// the relative order of the survivors untouched.
    #[test]
    fn cancel_pending_removes_exactly_one(
        plan in proptest::collection::vec((0u64..4, 0u64..6, 0u64..1000), 2..30),
        victim_pick in 0u64..1000,
    ) {
        let mut sim = Simulation::new();
        let mut ids = Vec::new();
        for &(delay, actor, payload) in &plan {
            ids.push((sim.emit(payload, actor, delay), payload));
        }
        let victim = victim_pick as usize % ids.len();
        let (victim_id, _) = ids[victim];
        prop_assert!(sim.cancel(victim_id), "first cancel of a pending event");
        prop_assert!(!sim.cancel(victim_id), "second cancel is a no-op");
        let mut survivors = Vec::new();
        while let Some(ev) = sim.step() {
            survivors.push(ev.id);
        }
        let expected: Vec<_> = {
            let mut full = drain(&plan);
            // ids are dense pop metadata; compare by position instead:
            // the survivor count is one less and the victim's payload
            // slot is skipped in schedule terms
            full.truncate(full.len());
            full.into_iter().collect()
        };
        prop_assert_eq!(survivors.len(), expected.len() - 1);
    }
}

#[test]
fn take_due_matches_stepwise_drain() {
    let plan = [(0u64, 3u64, 10u64), (2, 1, 11), (2, 2, 12), (5, 0, 13)];
    let stepwise = drain(&plan);
    let mut sim = Simulation::new();
    for &(delay, actor, payload) in &plan {
        sim.emit(payload, actor, delay);
    }
    let mut batched = Vec::new();
    for t in 0..=5 {
        for ev in sim.take_due(VirtualTime::new(t)) {
            batched.push((ev.at.get(), ev.actor, ev.event));
        }
    }
    assert_eq!(batched, stepwise);
    assert!(sim.is_idle());
}

//! Monotonic virtual time.
//!
//! A [`VirtualTime`] is a plain tick counter with no relation to any
//! wall clock: it advances only when the simulation pops an event. The
//! newtype exists so scheduler APIs cannot silently confuse virtual
//! ticks with durations, sequence numbers, or real time.

use std::fmt;
use std::ops::{Add, AddAssign};

/// A point in virtual time, measured in ticks since the simulation
/// epoch. Ordered, hashable, and cheap to copy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualTime(u64);

impl VirtualTime {
    /// The simulation epoch, tick 0.
    pub const ZERO: Self = Self(0);

    /// The time `t` ticks after the epoch.
    pub const fn new(t: u64) -> Self {
        Self(t)
    }

    /// The raw tick count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The time `delay` ticks after `self`, saturating at the far end
    /// of virtual time instead of wrapping.
    pub const fn after(self, delay: u64) -> Self {
        Self(self.0.saturating_add(delay))
    }

    /// Ticks elapsed since `earlier`, or zero when `earlier` is in the
    /// future — elapsed time never goes negative.
    pub const fn since(self, earlier: Self) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The later of two times; the monotonic-advance primitive.
    pub fn max_of(self, other: Self) -> Self {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl From<u64> for VirtualTime {
    fn from(t: u64) -> Self {
        Self(t)
    }
}

impl Add<u64> for VirtualTime {
    type Output = Self;

    fn add(self, delay: u64) -> Self {
        self.after(delay)
    }
}

impl AddAssign<u64> for VirtualTime {
    fn add_assign(&mut self, delay: u64) {
        *self = self.after(delay);
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = VirtualTime::new(3);
        assert!(VirtualTime::ZERO < a);
        assert_eq!(a + 4, VirtualTime::new(7));
        assert_eq!(a.after(u64::MAX), VirtualTime::new(u64::MAX));
        assert_eq!(a.since(VirtualTime::new(1)), 2);
        assert_eq!(a.since(VirtualTime::new(9)), 0, "never negative");
        assert_eq!(a.max_of(VirtualTime::ZERO), a);
        assert_eq!(format!("{a}"), "t3");
    }

    #[test]
    fn add_assign_advances_in_place() {
        let mut t = VirtualTime::ZERO;
        t += 5;
        t += 0;
        assert_eq!(t.get(), 5);
    }
}

//! The deterministic event queue: a binary heap ordered by
//! `(time, seq, actor)`.
//!
//! Ties on virtual time break by the unique monotonic sequence number —
//! i.e. in schedule order — with the scheduling actor's id as the final,
//! documented key. Because `seq` is unique the ordering is total, so two
//! runs that schedule the same events in the same order drain them in
//! the same order, every time.
//!
//! Cancellation is lazy: [`EventQueue::cancel`] tombstones the payload
//! and the heap skips the dead key when it surfaces. Cancelling an event
//! that already popped (or was already cancelled) is a no-op that
//! returns `false` — never a panic — so races between "the reply
//! arrived" and "the timeout fired" need no bookkeeping at the caller.

use crate::time::VirtualTime;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Opaque handle to a scheduled event, used to [`EventQueue::cancel`] it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

/// Heap key: the full deterministic ordering `(time, seq, actor)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: VirtualTime,
    seq: u64,
    actor: u64,
}

/// One event popped from the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Virtual time the event fires at.
    pub at: VirtualTime,
    /// Actor id it was scheduled under (the tie-break's final key).
    pub actor: u64,
    /// Handle it was scheduled as.
    pub id: EventId,
    /// The payload.
    pub event: E,
}

/// A priority queue of events ordered by `(time, seq, actor)` with lazy
/// tombstone cancellation.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Key>>,
    /// Payloads of live (not yet popped, not cancelled) events, keyed by
    /// their unique sequence number. A `BTreeMap` keeps even diagnostic
    /// iteration deterministic.
    live: BTreeMap<u64, E>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// A fresh, empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            live: BTreeMap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` for `actor` at time `at`. Returns the handle to
    /// cancel it with.
    pub fn schedule(&mut self, at: VirtualTime, actor: u64, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Key { at, seq, actor }));
        self.live.insert(seq, event);
        EventId(seq)
    }

    /// Cancel a scheduled event. Returns `true` if it was still pending;
    /// cancelling an event that already popped — or was already
    /// cancelled — is a no-op returning `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.live.remove(&id.0).is_some()
    }

    /// The time of the earliest pending event, pruning any cancelled
    /// tombstones that have reached the head.
    pub fn next_time(&mut self) -> Option<VirtualTime> {
        while let Some(&Reverse(key)) = self.heap.peek() {
            if self.live.contains_key(&key.seq) {
                return Some(key.at);
            }
            self.heap.pop();
        }
        None
    }

    /// Pop the earliest pending event, skipping cancelled tombstones.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        while let Some(Reverse(key)) = self.heap.pop() {
            if let Some(event) = self.live.remove(&key.seq) {
                return Some(Scheduled {
                    at: key.at,
                    actor: key.actor,
                    id: EventId(key.seq),
                    event,
                });
            }
        }
        None
    }

    /// Number of pending (live) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> VirtualTime {
        VirtualTime::new(x)
    }

    #[test]
    fn pops_in_time_then_seq_then_actor_order() {
        let mut q = EventQueue::new();
        let _late = q.schedule(t(9), 0, "late");
        let a = q.schedule(t(4), 5, "first-scheduled");
        let b = q.schedule(t(4), 1, "second-scheduled");
        assert_eq!(q.next_time(), Some(t(4)));
        // same time: seq (schedule order) wins even though actor 1 < 5
        let first = q.pop().unwrap();
        assert_eq!((first.id, first.event), (a, "first-scheduled"));
        let second = q.pop().unwrap();
        assert_eq!((second.id, second.event), (b, "second-scheduled"));
        assert_eq!(q.pop().unwrap().event, "late");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_is_lazy_and_idempotent() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 0, 'a');
        let b = q.schedule(t(2), 0, 'b');
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_time(), Some(t(2)), "tombstone pruned at peek");
        let popped = q.pop().unwrap();
        assert_eq!(popped.event, 'b');
        assert!(!q.cancel(b), "cancel after pop is a no-op");
        assert!(q.is_empty());
    }

    #[test]
    fn actor_id_is_the_final_tie_break_key() {
        // the key is (time, seq, actor); seq is unique so actor never
        // decides between two real events, but the ordering must still
        // treat it as part of the key
        let k1 = Key {
            at: t(3),
            seq: 7,
            actor: 0,
        };
        let k2 = Key {
            at: t(3),
            seq: 7,
            actor: 1,
        };
        assert!(k1 < k2);
    }
}

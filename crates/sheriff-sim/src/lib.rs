//! # sheriff-sim
//!
//! A deterministic virtual-time event core: the scheduling substrate
//! under the fabric runtime's round facade (DESIGN.md §10).
//!
//! The model is the classic discrete-event simulation triple:
//!
//! * [`VirtualTime`] — a monotonic tick counter; time only moves when an
//!   event is popped, never by a wall clock;
//! * [`EventQueue`] — a binary heap ordered by `(time, seq, actor)`, so
//!   events at the same virtual time pop in schedule order (the unique
//!   monotonic `seq` decides) with the actor id as a documented final
//!   key — identical schedules always drain identically, which is what
//!   the byte-for-byte reproducibility tests of the management loops
//!   lean on;
//! * [`Simulation`] / [`SimContext`] — the driver: `emit` schedules for
//!   another actor, `emit_self` reschedules a recurring event (the
//!   heartbeat idiom), `cancel` tombstones an event that has not fired
//!   yet and is a no-op for one that already popped.
//!
//! Determinism is structural, not statistical: the crate has no clock,
//! no randomness and no hash-ordered iteration (it is covered by
//! sheriff-lint's DET01–DET03 rules like the rest of the deterministic
//! modules). Anything seeded — fault injection, workload noise — lives
//! in the layers above; this crate only guarantees that the same
//! schedule drains the same way every run.
//!
//! ```
//! use sheriff_sim::{Simulation, VirtualTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Beacon, Timeout }
//!
//! let mut sim = Simulation::new();
//! sim.ctx(7).emit_self(Ev::Beacon, 4); // recurring-event idiom
//! sim.ctx(1).emit(Ev::Timeout, 2, 4);  // same tick, scheduled later
//! let batch = sim.take_due(VirtualTime::new(4));
//! // same time: schedule order (seq) breaks the tie
//! assert_eq!(batch[0].event, Ev::Beacon);
//! assert_eq!(batch[1].event, Ev::Timeout);
//! assert_eq!(sim.now(), VirtualTime::new(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;
pub mod sim;
pub mod time;

pub use queue::{EventId, EventQueue, Scheduled};
pub use sim::{SimContext, Simulation};
pub use time::VirtualTime;

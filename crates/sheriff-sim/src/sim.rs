//! The simulation driver: a monotonic clock over an [`EventQueue`].
//!
//! [`Simulation`] owns the queue and the current [`VirtualTime`];
//! [`SimContext`] is a thin actor-scoped handle in the style of dslab's
//! `SimulationContext` — `emit` schedules for another actor after a
//! delay, `emit_self` reschedules a recurring event for the same actor
//! (the heartbeat idiom), `cancel` tombstones a pending event.
//!
//! Time is monotonic by construction: delays are applied to `now`, so a
//! schedule can never land in the past, and [`Simulation::take_due`]
//! only ever advances the clock.

use crate::queue::{EventId, EventQueue, Scheduled};
use crate::time::VirtualTime;

/// A virtual-time discrete-event simulation over events of type `E`.
#[derive(Debug, Clone, Default)]
pub struct Simulation<E> {
    queue: EventQueue<E>,
    now: VirtualTime,
}

impl<E> Simulation<E> {
    /// A fresh simulation at [`VirtualTime::ZERO`] with an empty agenda.
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            now: VirtualTime::ZERO,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// An actor-scoped scheduling handle for `actor`.
    pub fn ctx(&mut self, actor: u64) -> SimContext<'_, E> {
        SimContext { sim: self, actor }
    }

    /// Schedule `event` for `actor` at absolute time `at`, clamped to
    /// `now` — the agenda never holds events in the past.
    pub fn schedule_at(&mut self, at: VirtualTime, actor: u64, event: E) -> EventId {
        self.queue.schedule(at.max_of(self.now), actor, event)
    }

    /// Schedule `event` for `actor` `delay` ticks from now.
    pub fn emit(&mut self, event: E, actor: u64, delay: u64) -> EventId {
        self.schedule_at(self.now.after(delay), actor, event)
    }

    /// Cancel a pending event; a no-op (returning `false`) if it already
    /// fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// The time of the earliest pending event, if any.
    pub fn next_time(&mut self) -> Option<VirtualTime> {
        self.queue.next_time()
    }

    /// Advance the clock to `t` (never backwards) and pop every event
    /// due at or before it, in `(time, seq, actor)` order.
    pub fn take_due(&mut self, t: VirtualTime) -> Vec<Scheduled<E>> {
        self.now = self.now.max_of(t);
        let mut due = Vec::new();
        while self.queue.next_time().is_some_and(|at| at <= self.now) {
            if let Some(ev) = self.queue.pop() {
                due.push(ev);
            }
        }
        due
    }

    /// Pop the single earliest pending event, advancing the clock to its
    /// firing time. Returns `None` when the agenda is empty.
    pub fn step(&mut self) -> Option<Scheduled<E>> {
        let ev = self.queue.pop()?;
        self.now = self.now.max_of(ev.at);
        Some(ev)
    }

    /// Number of pending events on the agenda.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether the agenda is empty.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

/// An actor-scoped handle onto a [`Simulation`], in the style of dslab's
/// `SimulationContext`.
#[derive(Debug)]
pub struct SimContext<'a, E> {
    sim: &'a mut Simulation<E>,
    actor: u64,
}

impl<E> SimContext<'_, E> {
    /// The actor this context schedules under.
    pub fn actor(&self) -> u64 {
        self.actor
    }

    /// The current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.sim.now()
    }

    /// Schedule `event` for another `actor`, `delay` ticks from now.
    pub fn emit(&mut self, event: E, actor: u64, delay: u64) -> EventId {
        self.sim.emit(event, actor, delay)
    }

    /// Schedule `event` back to this actor `delay` ticks from now — the
    /// recurring-event (heartbeat) idiom.
    pub fn emit_self(&mut self, event: E, delay: u64) -> EventId {
        let actor = self.actor;
        self.sim.emit(event, actor, delay)
    }

    /// Cancel a pending event; a no-op if it already fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.sim.cancel(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ev {
        Tick,
        Timeout,
    }

    #[test]
    fn take_due_advances_clock_and_drains_in_order() {
        let mut sim = Simulation::new();
        sim.ctx(2).emit_self(Ev::Tick, 3);
        sim.ctx(1).emit(Ev::Timeout, 9, 3);
        sim.emit(Ev::Tick, 0, 5);
        let due = sim.take_due(VirtualTime::new(3));
        assert_eq!(due.len(), 2);
        assert_eq!((due[0].actor, due[0].event), (2, Ev::Tick));
        assert_eq!((due[1].actor, due[1].event), (9, Ev::Timeout));
        assert_eq!(sim.now(), VirtualTime::new(3));
        assert_eq!(sim.pending(), 1);
        // going "back" to t1 must not rewind the clock or re-deliver
        assert!(sim.take_due(VirtualTime::new(1)).is_empty());
        assert_eq!(sim.now(), VirtualTime::new(3));
    }

    #[test]
    fn schedules_never_land_in_the_past() {
        let mut sim = Simulation::new();
        sim.emit(Ev::Tick, 0, 10);
        let due = sim.take_due(VirtualTime::new(10));
        assert_eq!(due.len(), 1);
        // absolute schedule before `now` clamps to `now`
        sim.schedule_at(VirtualTime::new(4), 0, Ev::Timeout);
        assert_eq!(sim.next_time(), Some(VirtualTime::new(10)));
    }

    #[test]
    fn step_pops_one_event_and_cancel_after_fire_is_noop() {
        let mut sim = Simulation::new();
        let id = sim.ctx(0).emit_self(Ev::Timeout, 2);
        sim.ctx(0).emit_self(Ev::Tick, 4);
        let first = sim.step().expect("timeout pending");
        assert_eq!(first.event, Ev::Timeout);
        assert_eq!(sim.now(), VirtualTime::new(2));
        assert!(!sim.ctx(0).cancel(id), "cancel after pop is a no-op");
        assert!(sim.step().is_some());
        assert!(sim.step().is_none());
        assert!(sim.is_idle());
    }
}

//! Bounded in-memory recorder for tests and interactive inspection.

use std::collections::{BTreeMap, VecDeque};

use crate::counters::Counters;
use crate::event::Event;
use crate::sink::EventSink;

/// Aggregated timings reported under one name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimingStat {
    /// Scopes completed under this name.
    pub count: u64,
    /// Total wall-clock nanoseconds across scopes.
    pub wall_nanos: u64,
    /// Total virtual-time ticks across scopes.
    pub virt_ticks: u64,
}

/// An [`EventSink`] that keeps the last `capacity` events in memory.
///
/// Fully deterministic: the retained event stream depends only on the
/// events recorded (wall-clock timings are aggregated separately and
/// excluded from [`events`](RingRecorder::events)). When the buffer is
/// full the oldest event is evicted and counted in
/// [`evicted`](RingRecorder::evicted), so tests can assert nothing was
/// silently dropped.
#[derive(Clone, Debug)]
pub struct RingRecorder {
    capacity: usize,
    events: VecDeque<Event>,
    evicted: u64,
    counters: Counters,
    timings: BTreeMap<&'static str, TimingStat>,
}

impl RingRecorder {
    /// A recorder retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            evicted: 0,
            counters: Counters::new(),
            timings: BTreeMap::new(),
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> + '_ {
        self.events.iter()
    }

    /// Clone the retained events into a `Vec`, oldest first.
    pub fn to_vec(&self) -> Vec<Event> {
        self.events.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Count retained events whose [`Event::kind`] equals `kind`.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind() == kind).count()
    }

    /// First retained event of the given kind, if any.
    pub fn first_of(&self, kind: &str) -> Option<&Event> {
        self.events.iter().find(|e| e.kind() == kind)
    }

    /// Counter totals accumulated so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Aggregated timings for `name`, if any scope completed.
    pub fn timing_stat(&self, name: &str) -> Option<TimingStat> {
        self.timings.get(name).copied()
    }

    /// Forget all events, counters and timings (capacity unchanged).
    pub fn clear(&mut self) {
        self.events.clear();
        self.evicted = 0;
        self.counters = Counters::new();
        self.timings.clear();
    }
}

impl EventSink for RingRecorder {
    fn record(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(event);
    }

    fn counter(&mut self, name: &'static str, delta: u64) {
        self.counters.add(name, delta);
    }

    fn timing(&mut self, name: &'static str, wall_nanos: u64, virt_ticks: u64) {
        let stat = self.timings.entry(name).or_default();
        stat.count += 1;
        stat.wall_nanos += wall_nanos;
        stat.virt_ticks += virt_ticks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_most_recent_events() {
        let mut rec = RingRecorder::new(2);
        for t in 0..5 {
            rec.record(Event::RoundStart { time: t });
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.evicted(), 3);
        assert_eq!(
            rec.to_vec(),
            vec![Event::RoundStart { time: 3 }, Event::RoundStart { time: 4 }]
        );
    }

    #[test]
    fn queries_by_kind() {
        let mut rec = RingRecorder::new(8);
        rec.record(Event::RoundStart { time: 0 });
        rec.record(Event::AckReceived { req: 1, vm: 2 });
        rec.record(Event::AckReceived { req: 3, vm: 4 });
        assert_eq!(rec.count_kind("ack_received"), 2);
        assert_eq!(
            rec.first_of("ack_received"),
            Some(&Event::AckReceived { req: 1, vm: 2 })
        );
        assert_eq!(rec.first_of("round_end"), None);
    }

    #[test]
    fn aggregates_counters_and_timings() {
        let mut rec = RingRecorder::new(4);
        rec.counter("net.drops", 2);
        rec.counter("net.drops", 1);
        EventSink::timing(&mut rec, "round", 100, 1);
        EventSink::timing(&mut rec, "round", 50, 2);
        assert_eq!(rec.counters().get("net.drops"), 3);
        let stat = rec.timing_stat("round").unwrap();
        assert_eq!((stat.count, stat.wall_nanos, stat.virt_ticks), (2, 150, 3));
    }
}

//! The typed event vocabulary of the Sheriff control loop.
//!
//! Every variant corresponds to an observable step of the paper's
//! pipeline; DESIGN.md maps each one to the section or figure it
//! instruments. Payloads are plain integers/floats — this crate knows
//! nothing about topology types, so it stays dependency-free and the
//! same events can describe any runtime.

use std::fmt;

/// Which of the three alert sources of Sec. III-B raised an alert.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AlertKind {
    /// Predicted host overload (CPU/memory profile above `alert_threshold`).
    Host,
    /// Predicted local ToR uplink congestion.
    LocalTor,
    /// QCN congestion feedback from an outer switch.
    OuterSwitch,
}

impl AlertKind {
    /// Stable lowercase label used in JSON traces.
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::Host => "host",
            AlertKind::LocalTor => "local_tor",
            AlertKind::OuterSwitch => "outer_switch",
        }
    }
}

impl fmt::Display for AlertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a destination shim rejected a migration REQUEST (Alg. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RejectKind {
    /// Destination host lacked spare capacity for the VM.
    Capacity,
    /// A concurrent commit already claimed the slot (FCFS conflict).
    Conflict,
    /// The VM was already placed on the requested host.
    Noop,
    /// The transaction's prepare lease expired (or was aborted) before
    /// the COMMIT arrived.
    Expired,
    /// The message carried an epoch older than the target rack's current
    /// epoch: the sender is a fenced zombie from before a takeover.
    Stale,
}

impl RejectKind {
    /// Stable lowercase label used in JSON traces.
    pub fn label(self) -> &'static str {
        match self {
            RejectKind::Capacity => "capacity",
            RejectKind::Conflict => "conflict",
            RejectKind::Noop => "noop",
            RejectKind::Expired => "expired",
            RejectKind::Stale => "stale_epoch",
        }
    }
}

impl fmt::Display for RejectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What kind of fault an injector applied to the running cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A link went down.
    LinkDown,
    /// A previously failed link came back.
    LinkUp,
    /// A host went down (its VMs are stranded until recovery).
    HostDown,
    /// A previously failed host came back.
    HostUp,
    /// A shim controller crashed (stops answering the fabric).
    ShimDown,
    /// A crashed shim controller recovered.
    ShimUp,
    /// A named partition cut the network into disjoint rack sets.
    Partition,
    /// A named partition healed; both sides can talk again.
    Heal,
}

impl FaultKind {
    /// Stable lowercase label used in JSON traces.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::LinkDown => "link_down",
            FaultKind::LinkUp => "link_up",
            FaultKind::HostDown => "host_down",
            FaultKind::HostUp => "host_up",
            FaultKind::ShimDown => "shim_down",
            FaultKind::ShimUp => "shim_up",
            FaultKind::Partition => "partition",
            FaultKind::Heal => "heal",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One structured observation from the Sheriff control loop.
///
/// Identifiers are raw indices (`rack`, `vm`, `host` …) so the event
/// vocabulary is independent of the topology crate. Request ids follow
/// the wire format of the shim protocol: `rack << 32 | sequence`.
///
/// Payloads are fully deterministic — no wall-clock values — so equal
/// seeds yield equal event streams (the recorder property tests rely
/// on this).
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A management round (one `period_secs` tick) began.
    RoundStart {
        /// Virtual time (period index) of the round.
        time: u64,
    },
    /// A management round finished.
    RoundEnd {
        /// Virtual time (period index) of the round.
        time: u64,
        /// VM migrations committed during the round.
        migrations: u64,
        /// Flows rerouted during the round.
        reroutes: u64,
    },
    /// One of the three alert sources fired (Sec. III-B).
    AlertRaised {
        /// Virtual time at which the alert was raised.
        time: u64,
        /// Rack whose shim receives the alert.
        rack: u64,
        /// Which detector fired.
        kind: AlertKind,
        /// Severity score handed to PRIORITY (predicted utilization,
        /// uplink load or QCN feedback value).
        severity: f64,
    },
    /// PRIORITY (Alg. 2) selected migration victims for a rack.
    VictimsSelected {
        /// Alerted rack.
        rack: u64,
        /// Candidate VMs considered by the knapsack.
        candidates: u64,
        /// Victims actually selected for migration.
        selected: u64,
    },
    /// VMMIGRATION (Alg. 3) produced a min-cost assignment for a rack.
    PlanComputed {
        /// Rack the plan was computed for.
        rack: u64,
        /// Proposed (vm, destination) assignments.
        proposals: u64,
        /// Victims that could not be assigned a destination.
        unassigned: u64,
        /// Size of the searched (vm × destination) space.
        search_space: u64,
    },
    /// A shim sent a migration REQUEST (Alg. 4).
    RequestSent {
        /// Request id (`rack << 32 | seq`).
        req: u64,
        /// VM the request wants to move.
        vm: u64,
        /// Destination host.
        dest_host: u64,
        /// 1-based send attempt (1 = first transmission).
        attempt: u64,
    },
    /// The destination shim ACKed a REQUEST; the move is committed.
    AckReceived {
        /// Request id.
        req: u64,
        /// VM that moved.
        vm: u64,
    },
    /// The destination shim REJECTed a REQUEST.
    RejectReceived {
        /// Request id.
        req: u64,
        /// VM that failed to move.
        vm: u64,
        /// Why the destination refused.
        reason: RejectKind,
    },
    /// A pending REQUEST passed its deadline without a verdict.
    RequestTimeout {
        /// Request id.
        req: u64,
        /// Attempt that timed out.
        attempt: u64,
    },
    /// A timed-out REQUEST was retransmitted after backoff.
    RequestResent {
        /// Request id.
        req: u64,
        /// New 1-based attempt number.
        attempt: u64,
    },
    /// A duplicate delivery was absorbed by the receiver's dedup log.
    DuplicateAbsorbed {
        /// Request id of the duplicate.
        req: u64,
    },
    /// The k-median local search (Alg. 5) accepted an improving p-swap.
    SwapAccepted {
        /// 1-based improving-swap count within the search.
        iteration: u64,
        /// Objective value after the swap.
        cost: f64,
    },
    /// A VM migration was committed to the placement.
    MigrationCommitted {
        /// VM that moved.
        vm: u64,
        /// Source host.
        from_host: u64,
        /// Destination host.
        to_host: u64,
        /// Migration cost `c(v, h)` of the move.
        cost: f64,
    },
    /// A planned VM migration could not be committed.
    MigrationFailed {
        /// VM that stayed put.
        vm: u64,
        /// Rack whose shim had planned the move.
        rack: u64,
    },
    /// Alg. 1 rerouted delay-insensitive flows off a congested uplink.
    FlowsRerouted {
        /// Alerted rack.
        rack: u64,
        /// Flows moved to alternate paths.
        rerouted: u64,
        /// Flows that had no alternate path.
        stuck: u64,
    },
    /// A fault injector changed the cluster (link/host/shim up or down).
    FaultInjected {
        /// What changed.
        kind: FaultKind,
        /// Index of the affected link, host or rack.
        id: u64,
    },
    /// A shim fell back to degraded local-only operation.
    ShimDegraded {
        /// Rack of the degraded shim.
        rack: u64,
    },
    /// A shim was declared dead by the liveness tracker.
    ShimCrashed {
        /// Rack of the crashed shim.
        rack: u64,
    },
    /// A crashed shim came back, replayed its journal and rejoined.
    ShimRecovered {
        /// Rack of the recovered shim.
        rack: u64,
    },
    /// A destination shim journalled a PREPARE (intent durable).
    TxnPrepared {
        /// Request id of the transaction.
        req: u64,
        /// VM the transaction wants to move.
        vm: u64,
        /// Destination host of the prepared move.
        dest_host: u64,
    },
    /// A prepared transaction committed (COMMIT applied, ACK sent).
    TxnCommitted {
        /// Request id of the transaction.
        req: u64,
        /// VM that moved.
        vm: u64,
    },
    /// A prepared transaction aborted (rolled back or lease-expired).
    TxnAborted {
        /// Request id of the transaction.
        req: u64,
        /// VM whose move was undone.
        vm: u64,
    },
    /// The failure detector moved a shim from Alive to Suspect: its
    /// heartbeat silence exceeded the adaptive suspect threshold.
    ShimSuspected {
        /// Rack of the suspected shim.
        rack: u64,
    },
    /// The failure detector declared a shim Dead: silence exceeded the
    /// dead threshold and its racks are eligible for takeover.
    ShimDeclaredDead {
        /// Rack of the dead shim.
        rack: u64,
    },
    /// A neighbor shim took over a dead shim's rack; the rack's epoch
    /// was bumped so the old manager's stale messages can be fenced.
    RegionTakenOver {
        /// Rack whose management changed hands.
        rack: u64,
        /// Rack of the shim that took over.
        by: u64,
        /// The rack's epoch after the bump.
        epoch: u64,
    },
    /// A named network partition healed; the cut rack sets rejoined.
    PartitionHealed {
        /// Index of the healed partition window.
        partition: u64,
        /// Racks that were inside the partition set.
        racks: u64,
    },
    /// A per-rack alert check fired at its own virtual-time interval
    /// (independent of round boundaries) and rescanned the rack for
    /// fresh pre-alerts.
    AlertCheckFired {
        /// Rack whose alert interval fired.
        rack: u64,
        /// Virtual tick inside the round it fired at.
        tick: u64,
        /// Fresh alerted VMs picked up by this check.
        fresh: u64,
    },
    /// A 2PC message carrying a pre-takeover epoch was fenced and
    /// rejected instead of being applied.
    StaleEpochRejected {
        /// Request id of the fenced message.
        req: u64,
        /// Rack that fenced the message.
        rack: u64,
        /// Epoch the stale message carried.
        stale: u64,
        /// The rack's current epoch.
        current: u64,
    },
    /// A committed migration's pre-copy began streaming on the transfer
    /// scheduler (the 2PC commit finalizes at `TransferCompleted`).
    TransferStarted {
        /// 2PC request id of the migration.
        req: u64,
        /// VM being transferred.
        vm: u64,
        /// Pre-copy volume in bytes.
        bytes: f64,
        /// Hop count of the chosen route (0 = intra-rack).
        hops: u64,
        /// Max-min fair rate granted at admission, bytes per tick.
        rate: f64,
        /// Ticks the transfer waited behind the admission cap.
        waited: u64,
    },
    /// QCN congestion steered a pre-copy off its primary k-shortest
    /// route onto an alternate candidate.
    TransferRerouted {
        /// 2PC request id of the migration.
        req: u64,
        /// VM being transferred.
        vm: u64,
        /// Hop count of the alternate route actually taken.
        hops: u64,
    },
    /// A pre-copy streamed its last byte; placement flips now.
    TransferCompleted {
        /// 2PC request id of the migration.
        req: u64,
        /// VM that finished moving.
        vm: u64,
        /// Wall ticks from admission to completion.
        ticks: u64,
        /// Achieved bandwidth in bytes per tick.
        bandwidth: f64,
    },
    /// A link failure cut every surviving route for an in-flight
    /// pre-copy; it holds its checkpoint and waits out the stall budget.
    TransferStalled {
        /// 2PC request id of the migration.
        req: u64,
        /// VM whose pre-copy stalled.
        vm: u64,
        /// Edge index of the link whose failure caused the stall.
        link: u64,
    },
    /// A stalled pre-copy found a surviving route and resumed from its
    /// checkpoint (bytes already copied, minus the dirty re-copy penalty).
    TransferResumed {
        /// 2PC request id of the migration.
        req: u64,
        /// VM whose pre-copy resumed.
        vm: u64,
        /// Bytes the checkpoint saved versus restarting from zero.
        saved: f64,
    },
    /// A stalled pre-copy's backoff timer fired and it re-probed for a
    /// surviving route (whether or not one was found).
    TransferRetried {
        /// 2PC request id of the migration.
        req: u64,
        /// VM whose pre-copy retried.
        vm: u64,
        /// Retry attempt number (1-based).
        attempt: u64,
    },
    /// A pre-copy exhausted its retry budget (or lost an endpoint) and
    /// escalated to a clean 2PC abort: lease released, source placement
    /// kept, `txn_aborted` accounted.
    TransferFailed {
        /// 2PC request id of the migration.
        req: u64,
        /// VM whose migration aborted.
        vm: u64,
        /// Retry attempts consumed before giving up.
        attempts: u64,
    },
}

impl Event {
    /// Stable snake_case discriminant name, used as the `"ev"` field of
    /// JSON traces and by [`RingRecorder::count_kind`](crate::RingRecorder::count_kind).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RoundStart { .. } => "round_start",
            Event::RoundEnd { .. } => "round_end",
            Event::AlertRaised { .. } => "alert_raised",
            Event::VictimsSelected { .. } => "victims_selected",
            Event::PlanComputed { .. } => "plan_computed",
            Event::RequestSent { .. } => "request_sent",
            Event::AckReceived { .. } => "ack_received",
            Event::RejectReceived { .. } => "reject_received",
            Event::RequestTimeout { .. } => "request_timeout",
            Event::RequestResent { .. } => "request_resent",
            Event::DuplicateAbsorbed { .. } => "duplicate_absorbed",
            Event::SwapAccepted { .. } => "swap_accepted",
            Event::MigrationCommitted { .. } => "migration_committed",
            Event::MigrationFailed { .. } => "migration_failed",
            Event::FlowsRerouted { .. } => "flows_rerouted",
            Event::FaultInjected { .. } => "fault_injected",
            Event::ShimDegraded { .. } => "shim_degraded",
            Event::ShimCrashed { .. } => "shim_crashed",
            Event::ShimRecovered { .. } => "shim_recovered",
            Event::TxnPrepared { .. } => "txn_prepared",
            Event::TxnCommitted { .. } => "txn_committed",
            Event::TxnAborted { .. } => "txn_aborted",
            Event::ShimSuspected { .. } => "shim_suspected",
            Event::ShimDeclaredDead { .. } => "shim_declared_dead",
            Event::RegionTakenOver { .. } => "region_taken_over",
            Event::PartitionHealed { .. } => "partition_healed",
            Event::AlertCheckFired { .. } => "alert_check_fired",
            Event::StaleEpochRejected { .. } => "stale_epoch_rejected",
            Event::TransferStarted { .. } => "transfer_started",
            Event::TransferRerouted { .. } => "transfer_rerouted",
            Event::TransferCompleted { .. } => "transfer_completed",
            Event::TransferStalled { .. } => "transfer_stalled",
            Event::TransferResumed { .. } => "transfer_resumed",
            Event::TransferRetried { .. } => "transfer_retried",
            Event::TransferFailed { .. } => "transfer_failed",
        }
    }

    /// Render the event as one JSON object with stable key order
    /// (`"ev"` first, then payload fields in declaration order).
    pub fn to_json(&self) -> String {
        let mut w = crate::json::JsonObject::new(self.kind());
        match self {
            Event::RoundStart { time } => {
                w.u64("time", *time);
            }
            Event::RoundEnd {
                time,
                migrations,
                reroutes,
            } => {
                w.u64("time", *time);
                w.u64("migrations", *migrations);
                w.u64("reroutes", *reroutes);
            }
            Event::AlertRaised {
                time,
                rack,
                kind,
                severity,
            } => {
                w.u64("time", *time);
                w.u64("rack", *rack);
                w.str("kind", kind.label());
                w.f64("severity", *severity);
            }
            Event::VictimsSelected {
                rack,
                candidates,
                selected,
            } => {
                w.u64("rack", *rack);
                w.u64("candidates", *candidates);
                w.u64("selected", *selected);
            }
            Event::PlanComputed {
                rack,
                proposals,
                unassigned,
                search_space,
            } => {
                w.u64("rack", *rack);
                w.u64("proposals", *proposals);
                w.u64("unassigned", *unassigned);
                w.u64("search_space", *search_space);
            }
            Event::RequestSent {
                req,
                vm,
                dest_host,
                attempt,
            } => {
                w.u64("req", *req);
                w.u64("vm", *vm);
                w.u64("dest_host", *dest_host);
                w.u64("attempt", *attempt);
            }
            Event::AckReceived { req, vm } => {
                w.u64("req", *req);
                w.u64("vm", *vm);
            }
            Event::RejectReceived { req, vm, reason } => {
                w.u64("req", *req);
                w.u64("vm", *vm);
                w.str("reason", reason.label());
            }
            Event::RequestTimeout { req, attempt } => {
                w.u64("req", *req);
                w.u64("attempt", *attempt);
            }
            Event::RequestResent { req, attempt } => {
                w.u64("req", *req);
                w.u64("attempt", *attempt);
            }
            Event::DuplicateAbsorbed { req } => {
                w.u64("req", *req);
            }
            Event::SwapAccepted { iteration, cost } => {
                w.u64("iteration", *iteration);
                w.f64("cost", *cost);
            }
            Event::MigrationCommitted {
                vm,
                from_host,
                to_host,
                cost,
            } => {
                w.u64("vm", *vm);
                w.u64("from_host", *from_host);
                w.u64("to_host", *to_host);
                w.f64("cost", *cost);
            }
            Event::MigrationFailed { vm, rack } => {
                w.u64("vm", *vm);
                w.u64("rack", *rack);
            }
            Event::FlowsRerouted {
                rack,
                rerouted,
                stuck,
            } => {
                w.u64("rack", *rack);
                w.u64("rerouted", *rerouted);
                w.u64("stuck", *stuck);
            }
            Event::FaultInjected { kind, id } => {
                w.str("kind", kind.label());
                w.u64("id", *id);
            }
            Event::ShimDegraded { rack } => {
                w.u64("rack", *rack);
            }
            Event::ShimCrashed { rack } => {
                w.u64("rack", *rack);
            }
            Event::ShimRecovered { rack } => {
                w.u64("rack", *rack);
            }
            Event::TxnPrepared { req, vm, dest_host } => {
                w.u64("req", *req);
                w.u64("vm", *vm);
                w.u64("dest_host", *dest_host);
            }
            Event::TxnCommitted { req, vm } => {
                w.u64("req", *req);
                w.u64("vm", *vm);
            }
            Event::TxnAborted { req, vm } => {
                w.u64("req", *req);
                w.u64("vm", *vm);
            }
            Event::ShimSuspected { rack } => {
                w.u64("rack", *rack);
            }
            Event::ShimDeclaredDead { rack } => {
                w.u64("rack", *rack);
            }
            Event::RegionTakenOver { rack, by, epoch } => {
                w.u64("rack", *rack);
                w.u64("by", *by);
                w.u64("epoch", *epoch);
            }
            Event::PartitionHealed { partition, racks } => {
                w.u64("partition", *partition);
                w.u64("racks", *racks);
            }
            Event::AlertCheckFired { rack, tick, fresh } => {
                w.u64("rack", *rack);
                w.u64("tick", *tick);
                w.u64("fresh", *fresh);
            }
            Event::StaleEpochRejected {
                req,
                rack,
                stale,
                current,
            } => {
                w.u64("req", *req);
                w.u64("rack", *rack);
                w.u64("stale", *stale);
                w.u64("current", *current);
            }
            Event::TransferStarted {
                req,
                vm,
                bytes,
                hops,
                rate,
                waited,
            } => {
                w.u64("req", *req);
                w.u64("vm", *vm);
                w.f64("bytes", *bytes);
                w.u64("hops", *hops);
                w.f64("rate", *rate);
                w.u64("waited", *waited);
            }
            Event::TransferRerouted { req, vm, hops } => {
                w.u64("req", *req);
                w.u64("vm", *vm);
                w.u64("hops", *hops);
            }
            Event::TransferCompleted {
                req,
                vm,
                ticks,
                bandwidth,
            } => {
                w.u64("req", *req);
                w.u64("vm", *vm);
                w.u64("ticks", *ticks);
                w.f64("bandwidth", *bandwidth);
            }
            Event::TransferStalled { req, vm, link } => {
                w.u64("req", *req);
                w.u64("vm", *vm);
                w.u64("link", *link);
            }
            Event::TransferResumed { req, vm, saved } => {
                w.u64("req", *req);
                w.u64("vm", *vm);
                w.f64("saved", *saved);
            }
            Event::TransferRetried { req, vm, attempt } => {
                w.u64("req", *req);
                w.u64("vm", *vm);
                w.u64("attempt", *attempt);
            }
            Event::TransferFailed { req, vm, attempts } => {
                w.u64("req", *req);
                w.u64("vm", *vm);
                w.u64("attempts", *attempts);
            }
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_is_stable() {
        assert_eq!(Event::RoundStart { time: 3 }.kind(), "round_start");
        assert_eq!(
            Event::RejectReceived {
                req: 1,
                vm: 2,
                reason: RejectKind::Capacity
            }
            .kind(),
            "reject_received"
        );
    }

    #[test]
    fn json_has_stable_shape() {
        let ev = Event::AlertRaised {
            time: 7,
            rack: 2,
            kind: AlertKind::OuterSwitch,
            severity: 0.5,
        };
        assert_eq!(
            ev.to_json(),
            r#"{"ev":"alert_raised","time":7,"rack":2,"kind":"outer_switch","severity":0.5}"#
        );
    }

    #[test]
    fn failover_events_have_stable_shape() {
        assert_eq!(
            Event::RegionTakenOver {
                rack: 3,
                by: 1,
                epoch: 2
            }
            .to_json(),
            r#"{"ev":"region_taken_over","rack":3,"by":1,"epoch":2}"#
        );
        assert_eq!(
            Event::StaleEpochRejected {
                req: 9,
                rack: 3,
                stale: 0,
                current: 2
            }
            .to_json(),
            r#"{"ev":"stale_epoch_rejected","req":9,"rack":3,"stale":0,"current":2}"#
        );
        assert_eq!(
            Event::PartitionHealed {
                partition: 0,
                racks: 4
            }
            .kind(),
            "partition_healed"
        );
        assert_eq!(Event::ShimSuspected { rack: 1 }.kind(), "shim_suspected");
        assert_eq!(
            Event::ShimDeclaredDead { rack: 1 }.kind(),
            "shim_declared_dead"
        );
        assert_eq!(RejectKind::Stale.label(), "stale_epoch");
        assert_eq!(FaultKind::Partition.label(), "partition");
        assert_eq!(FaultKind::Heal.label(), "heal");
    }

    #[test]
    fn transfer_events_have_stable_shape() {
        assert_eq!(
            Event::TransferStarted {
                req: 5,
                vm: 7,
                bytes: 8.0,
                hops: 4,
                rate: 2.0,
                waited: 0
            }
            .to_json(),
            r#"{"ev":"transfer_started","req":5,"vm":7,"bytes":8,"hops":4,"rate":2,"waited":0}"#
        );
        assert_eq!(
            Event::TransferRerouted {
                req: 5,
                vm: 7,
                hops: 6
            }
            .to_json(),
            r#"{"ev":"transfer_rerouted","req":5,"vm":7,"hops":6}"#
        );
        assert_eq!(
            Event::TransferCompleted {
                req: 5,
                vm: 7,
                ticks: 4,
                bandwidth: 2.5
            }
            .to_json(),
            r#"{"ev":"transfer_completed","req":5,"vm":7,"ticks":4,"bandwidth":2.5}"#
        );
    }

    #[test]
    fn transfer_recovery_events_have_stable_shape() {
        assert_eq!(
            Event::TransferStalled {
                req: 5,
                vm: 7,
                link: 12
            }
            .to_json(),
            r#"{"ev":"transfer_stalled","req":5,"vm":7,"link":12}"#
        );
        assert_eq!(
            Event::TransferResumed {
                req: 5,
                vm: 7,
                saved: 3.5
            }
            .to_json(),
            r#"{"ev":"transfer_resumed","req":5,"vm":7,"saved":3.5}"#
        );
        assert_eq!(
            Event::TransferRetried {
                req: 5,
                vm: 7,
                attempt: 2
            }
            .to_json(),
            r#"{"ev":"transfer_retried","req":5,"vm":7,"attempt":2}"#
        );
        assert_eq!(
            Event::TransferFailed {
                req: 5,
                vm: 7,
                attempts: 4
            }
            .to_json(),
            r#"{"ev":"transfer_failed","req":5,"vm":7,"attempts":4}"#
        );
    }

    #[test]
    fn equality_is_structural() {
        let a = Event::AckReceived { req: 9, vm: 4 };
        let b = Event::AckReceived { req: 9, vm: 4 };
        let c = Event::AckReceived { req: 9, vm: 5 };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

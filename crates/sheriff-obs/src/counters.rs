//! Monotonic counter registry.

use std::collections::BTreeMap;

/// A registry of monotonic `u64` counters keyed by `&'static str`
/// names (dotted by convention: `"net.drops"`, `"migrations.committed"`).
///
/// Backed by a `BTreeMap` so iteration order — and therefore any trace
/// or report rendered from it — is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Add `delta` to `name`, creating it at zero first if absent.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.map.entry(name).or_insert(0) += delta;
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no counter has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// Fold another registry into this one (used when merging
    /// per-shard sinks back into a run-level report).
    pub fn merge(&mut self, other: &Counters) {
        for (name, value) in other.iter() {
            self.add(name, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_merges() {
        let mut a = Counters::new();
        a.inc("x");
        a.add("y", 3);
        let mut b = Counters::new();
        b.add("y", 2);
        b.inc("z");
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 1);
        assert_eq!(a.get("missing"), 0);
        let names: Vec<&str> = a.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
    }
}

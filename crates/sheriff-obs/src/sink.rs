//! The [`EventSink`] trait and the no-op [`NullSink`].

use crate::event::Event;

/// Destination for instrumentation produced by the Sheriff runtimes.
///
/// Instrumented code is generic over `S: EventSink` (or holds a
/// `&mut dyn EventSink`), and guards any non-trivial payload
/// construction behind [`enabled`](EventSink::enabled) — with
/// [`NullSink`] that check is statically `false` and the whole
/// instrumentation path compiles away. The [`emit`] helper wraps this
/// pattern.
///
/// The trait is object-safe; `&mut dyn EventSink` is accepted wherever
/// the generic form would be awkward (e.g. inside `RunCtx`).
pub trait EventSink {
    /// Whether this sink wants events at all. Instrumented code checks
    /// this before building event payloads; `NullSink` returns a
    /// constant `false` so the branch folds away.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Record one structured event.
    fn record(&mut self, event: Event);

    /// Add `delta` to the monotonic counter `name`. Default: ignored.
    #[inline]
    fn counter(&mut self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Record a completed timed scope: wall-clock duration in
    /// nanoseconds plus elapsed virtual-time ticks. Wall-clock values
    /// travel only through this channel — never inside [`Event`]
    /// payloads — to keep event streams deterministic. Default: ignored.
    #[inline]
    fn timing(&mut self, name: &'static str, wall_nanos: u64, virt_ticks: u64) {
        let _ = (name, wall_nanos, virt_ticks);
    }
}

/// Build and record an event only if the sink is enabled.
///
/// The closure runs lazily, so payload computation (cost sums, lookups)
/// costs nothing when tracing is off.
#[inline]
pub fn emit<S: EventSink + ?Sized>(sink: &mut S, build: impl FnOnce() -> Event) {
    if sink.enabled() {
        sink.record(build());
    }
}

/// The default sink: drops everything, statically disabled.
///
/// `enabled()` is a constant `false`, so instrumentation guarded by it
/// is dead code after inlining — running with `NullSink` is
/// behaviourally and observably identical to the uninstrumented code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _event: Event) {}

    #[inline(always)]
    fn counter(&mut self, _name: &'static str, _delta: u64) {}

    #[inline(always)]
    fn timing(&mut self, _name: &'static str, _wall_nanos: u64, _virt_ticks: u64) {}
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn record(&mut self, event: Event) {
        (**self).record(event);
    }

    #[inline]
    fn counter(&mut self, name: &'static str, delta: u64) {
        (**self).counter(name, delta);
    }

    #[inline]
    fn timing(&mut self, name: &'static str, wall_nanos: u64, virt_ticks: u64) {
        (**self).timing(name, wall_nanos, virt_ticks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RingRecorder;

    #[test]
    fn null_sink_is_disabled() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        let mut built = false;
        emit(&mut sink, || {
            built = true;
            Event::RoundStart { time: 0 }
        });
        assert!(!built, "emit must not build payloads for NullSink");
    }

    #[test]
    fn emit_reaches_enabled_sinks_through_references() {
        let mut rec = RingRecorder::new(4);
        let by_ref: &mut dyn EventSink = &mut rec;
        emit(by_ref, || Event::RoundStart { time: 2 });
        assert_eq!(rec.len(), 1);
    }
}

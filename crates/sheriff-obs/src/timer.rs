//! Scoped timer recording wall-clock and virtual-time durations.

use std::time::Instant;

use crate::sink::EventSink;

/// A scoped timer started with the current virtual time and stopped
/// against a sink, which receives both the wall-clock nanoseconds and
/// the virtual-time ticks that elapsed.
///
/// The timer does not borrow the sink while running, so the timed scope
/// is free to emit events through the same sink:
///
/// ```
/// use sheriff_obs::{RingRecorder, Timer};
///
/// let mut sink = RingRecorder::new(16);
/// let timer = Timer::start("round", 10);
/// // ... timed work, possibly emitting events into `sink` ...
/// timer.stop(&mut sink, 12); // 2 virtual ticks elapsed
/// assert_eq!(sink.timing_stat("round").unwrap().virt_ticks, 2);
/// ```
#[derive(Debug)]
pub struct Timer {
    name: &'static str,
    wall_start: Instant,
    virt_start: u64,
}

impl Timer {
    /// Start timing `name` at virtual time `virt_now`.
    pub fn start(name: &'static str, virt_now: u64) -> Self {
        Timer {
            name,
            // the one sanctioned wall-clock read: Timer keeps wall time
            // out of every deterministic artifact by construction
            #[allow(clippy::disallowed_methods)]
            wall_start: Instant::now(),
            virt_start: virt_now,
        }
    }

    /// Name this timer reports under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Stop the scope at virtual time `virt_now` and report both
    /// durations to `sink` via [`EventSink::timing`].
    pub fn stop<S: EventSink + ?Sized>(self, sink: &mut S, virt_now: u64) {
        let wall = self.wall_start.elapsed().as_nanos();
        let wall = u64::try_from(wall).unwrap_or(u64::MAX);
        let virt = virt_now.saturating_sub(self.virt_start);
        sink.timing(self.name, wall, virt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RingRecorder;

    #[test]
    fn reports_virtual_and_wall_durations() {
        let mut sink = RingRecorder::new(4);
        let t = Timer::start("scope", 100);
        t.stop(&mut sink, 103);
        let stat = sink.timing_stat("scope").expect("timing recorded");
        assert_eq!(stat.count, 1);
        assert_eq!(stat.virt_ticks, 3);
    }

    #[test]
    fn virtual_time_going_backwards_saturates() {
        let mut sink = RingRecorder::new(4);
        Timer::start("scope", 10).stop(&mut sink, 7);
        assert_eq!(sink.timing_stat("scope").unwrap().virt_ticks, 0);
    }
}

//! # sheriff-obs
//!
//! Zero-dependency observability layer for the Sheriff reproduction.
//!
//! The paper evaluates Sheriff by *watching* it work — alert counts,
//! migration costs, balance trajectories, protocol chatter (Fig. 9–14).
//! This crate provides the one mechanism every runtime shares:
//!
//! * [`Event`] — a typed enum covering the whole control loop, from
//!   alert detection (Sec. III-B) through PRIORITY / VMMIGRATION
//!   planning (Alg. 2–3), the REQUEST/ACK/REJECT shim protocol
//!   (Alg. 4), k-median region maintenance (Alg. 5), down to fault
//!   injection and round boundaries.
//! * [`EventSink`] — the trait instrumented code writes to. Three
//!   implementations ship here: [`NullSink`] (default; statically
//!   inlined to near-zero overhead), [`RingRecorder`] (bounded
//!   in-memory buffer, deterministic and queryable from tests) and
//!   [`JsonLinesSink`] (streams one JSON object per line to any
//!   `io::Write`, for `results/` traces).
//! * [`Counters`] — a monotonic `u64` registry keyed by static names.
//! * [`Histogram`] — fixed-bucket distributions for latencies / sizes.
//! * [`Timer`] — a scoped timer recording both wall-clock nanoseconds
//!   and virtual-time ticks.
//!
//! Determinism contract: [`Event`] payloads never contain wall-clock
//! values, so two runs with the same seed produce byte-identical event
//! streams. Wall-clock durations travel through the separate
//! [`EventSink::timing`] channel and are excluded from stream equality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod event;
mod histogram;
mod json;
mod recorder;
mod sink;
mod timer;

pub use counters::Counters;
pub use event::{AlertKind, Event, FaultKind, RejectKind};
pub use histogram::Histogram;
pub use json::JsonLinesSink;
pub use recorder::{RingRecorder, TimingStat};
pub use sink::{emit, EventSink, NullSink};
pub use timer::Timer;

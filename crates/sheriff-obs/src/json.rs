//! Hand-rolled JSON rendering and the [`JsonLinesSink`].
//!
//! The workspace builds offline against vendored stand-ins, so this
//! crate serializes its own JSON: one object per line, stable key
//! order, no external dependency.

use std::io::{self, Write};

use crate::counters::Counters;
use crate::event::Event;
use crate::sink::EventSink;

/// Incremental writer for one flat JSON object. The `"ev"` field is
/// always first so line-oriented consumers can dispatch on a prefix.
pub(crate) struct JsonObject {
    buf: String,
}

impl JsonObject {
    pub(crate) fn new(ev: &str) -> Self {
        let mut buf = String::with_capacity(64);
        buf.push_str("{\"ev\":");
        push_json_str(&mut buf, ev);
        JsonObject { buf }
    }

    pub(crate) fn u64(&mut self, key: &str, value: u64) {
        self.key(key);
        // u64 formatting never needs escaping.
        self.buf.push_str(&value.to_string());
    }

    pub(crate) fn f64(&mut self, key: &str, value: f64) {
        self.key(key);
        push_json_f64(&mut self.buf, value);
    }

    pub(crate) fn str(&mut self, key: &str, value: &str) {
        self.key(key);
        push_json_str(&mut self.buf, value);
    }

    pub(crate) fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }

    fn key(&mut self, key: &str) {
        self.buf.push(',');
        push_json_str(&mut self.buf, key);
        self.buf.push(':');
    }
}

/// Escape and quote `s` as a JSON string into `buf`.
fn push_json_str(buf: &mut String, s: &str) {
    buf.push('"');
    for ch in s.chars() {
        match ch {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Render a finite float as a JSON number; NaN/∞ become `null` since
/// JSON has no representation for them.
fn push_json_f64(buf: &mut String, value: f64) {
    if value.is_finite() {
        buf.push_str(&value.to_string());
    } else {
        buf.push_str("null");
    }
}

/// An [`EventSink`] that streams every event as one JSON object per
/// line — the trace format written under `results/`.
///
/// Counter increments are accumulated in memory and emitted as a single
/// `{"ev":"summary", ...}` line by [`finish`](JsonLinesSink::finish);
/// timings are written inline as `{"ev":"timing", ...}` lines.
/// Write errors are sticky: the first failure silences the sink and is
/// reported by `finish`.
pub struct JsonLinesSink<W: Write> {
    out: W,
    events: u64,
    counters: Counters,
    error: Option<io::Error>,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wrap a writer. Consider a `BufWriter` for file targets.
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            out,
            events: 0,
            counters: Counters::new(),
            error: None,
        }
    }

    /// Events successfully written so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Counter totals accumulated so far.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Write the summary line, flush, and return the inner writer —
    /// or the first write error encountered over the sink's lifetime.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut line = String::from("{\"ev\":\"summary\",\"events\":");
        line.push_str(&self.events.to_string());
        line.push_str(",\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            push_json_str(&mut line, name);
            line.push(':');
            line.push_str(&value.to_string());
        }
        line.push_str("}}\n");
        self.out.write_all(line.as_bytes())?;
        self.out.flush()?;
        Ok(self.out)
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }
}

impl<W: Write> EventSink for JsonLinesSink<W> {
    fn record(&mut self, event: Event) {
        self.events += 1;
        let line = event.to_json();
        self.write_line(&line);
    }

    fn counter(&mut self, name: &'static str, delta: u64) {
        self.counters.add(name, delta);
    }

    fn timing(&mut self, name: &'static str, wall_nanos: u64, virt_ticks: u64) {
        let mut w = JsonObject::new("timing");
        w.str("name", name);
        w.u64("wall_ns", wall_nanos);
        w.u64("virt", virt_ticks);
        let line = w.finish();
        self.write_line(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn writes_one_object_per_line() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.record(Event::RoundStart { time: 1 });
        sink.record(Event::AckReceived { req: 8, vm: 3 });
        sink.counter("acks", 1);
        let out = sink.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], r#"{"ev":"round_start","time":1}"#);
        assert_eq!(lines[1], r#"{"ev":"ack_received","req":8,"vm":3}"#);
        assert_eq!(
            lines[2],
            r#"{"ev":"summary","events":2,"counters":{"acks":1}}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        let mut buf = String::new();
        push_json_str(&mut buf, "a\"b\\c\nd\u{1}");
        assert_eq!(buf, r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut buf = String::new();
        push_json_f64(&mut buf, f64::NAN);
        assert_eq!(buf, "null");
    }
}

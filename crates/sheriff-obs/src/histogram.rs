//! Fixed-bucket histogram for latency and size distributions.

/// A histogram over fixed, caller-supplied bucket upper bounds.
///
/// A sample `x` lands in the first bucket whose bound satisfies
/// `x <= bound`; samples above the last bound land in an implicit
/// overflow bucket. Bounds are fixed at construction so recording is
/// allocation-free and two histograms with the same bounds are directly
/// comparable.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Build a histogram with the given strictly increasing upper
    /// bounds. Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Exponential bounds `start, start*factor, …` (`len` buckets) —
    /// the usual shape for latencies. Panics on non-positive `start`,
    /// `factor <= 1`, or `len == 0`.
    pub fn exponential(start: f64, factor: f64, len: usize) -> Self {
        assert!(start > 0.0 && factor > 1.0 && len > 0);
        let mut bounds = Vec::with_capacity(len);
        let mut b = start;
        for _ in 0..len {
            bounds.push(b);
            b *= factor;
        }
        Histogram::new(&bounds)
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| x <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or `None` before the first record.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest sample seen, or `None` before the first record.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample seen, or `None` before the first record.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// `(upper_bound, count)` per bucket; the final entry uses
    /// `f64::INFINITY` as the overflow bound.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
    }

    /// Upper bound of the bucket containing quantile `q` (in `[0, 1]`),
    /// or `None` before the first record. A conservative estimate: the
    /// true quantile is at most the returned bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bound, n) in self.buckets() {
            seen += n;
            if seen >= rank {
                return Some(bound);
            }
        }
        Some(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_and_quantiles() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for &x in &[0.5, 0.7, 5.0, 50.0, 500.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 5);
        let counts: Vec<u64> = h.buckets().map(|(_, n)| n).collect();
        assert_eq!(counts, vec![2, 1, 1, 1]);
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(10.0));
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(500.0));
    }

    #[test]
    fn exponential_bounds() {
        let h = Histogram::exponential(1.0, 2.0, 4);
        let bounds: Vec<f64> = h.buckets().map(|(b, _)| b).collect();
        assert_eq!(bounds, vec![1.0, 2.0, 4.0, 8.0, f64::INFINITY]);
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }
}

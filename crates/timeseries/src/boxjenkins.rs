//! Box–Jenkins order selection (Sec. IV-B): pick (p, d, q) by grid search,
//! choosing `d` from a stationarity heuristic and (p, q) by information
//! criterion — the automated equivalent of the paper's manual MATLAB
//! workflow that arrived at ARIMA(1,1,1).

use crate::arima::{ArimaModel, ArimaSpec};
use crate::series::difference_once;
use crate::stats::acf;
use serde::{Deserialize, Serialize};

/// Which information criterion drives the (p, q) choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Criterion {
    /// Akaike.
    Aic,
    /// Bayesian (heavier parameter penalty).
    Bic,
}

/// Grid-search bounds for [`select`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectionConfig {
    /// Maximum AR order.
    pub max_p: usize,
    /// Maximum differencing order.
    pub max_d: usize,
    /// Maximum MA order.
    pub max_q: usize,
    /// Information criterion.
    pub criterion: Criterion,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        Self {
            max_p: 3,
            max_d: 2,
            max_q: 3,
            criterion: Criterion::Aic,
        }
    }
}

/// Choose the differencing order: difference until the lag-1
/// autocorrelation of the result drops below a stationarity band (or
/// `max_d` is reached). Slowly-decaying ACF near 1 is the classical
/// unit-root signature.
pub fn choose_d(y: &[f64], max_d: usize) -> usize {
    let mut cur = y.to_vec();
    for d in 0..=max_d {
        if cur.len() < 10 {
            return d;
        }
        let rho1 = acf(&cur, 1)[1];
        if rho1 < 0.9 {
            return d;
        }
        cur = difference_once(&cur);
    }
    max_d
}

/// Fit every (p, q) in the grid at the chosen `d` and return the model
/// with the best criterion value. `None` when nothing fits (degenerate or
/// too-short series).
pub fn select(y: &[f64], cfg: &SelectionConfig) -> Option<(ArimaSpec, ArimaModel)> {
    let d = choose_d(y, cfg.max_d);
    let mut best: Option<(f64, ArimaSpec, ArimaModel)> = None;
    for p in 0..=cfg.max_p {
        for q in 0..=cfg.max_q {
            if p == 0 && q == 0 {
                continue;
            }
            let spec = ArimaSpec::new(p, d, q);
            let Ok(model) = ArimaModel::fit(y, spec) else {
                continue;
            };
            let score = match cfg.criterion {
                Criterion::Aic => model.aic(),
                Criterion::Bic => model.bic(),
            };
            if best.as_ref().is_none_or(|(s, _, _)| score < *s) {
                best = Some((score, spec, model));
            }
        }
    }
    best.map(|(_, spec, model)| (spec, model))
}

/// Seasonal variant of [`select`]: grid over `(p, q, P, Q)` at fixed
/// season `s`, with seasonal differencing decided by the strength of the
/// season-lag autocorrelation (≥ 0.6 → difference once). Returns the best
/// seasonal model by the criterion, or `None` if nothing fits.
pub fn select_seasonal(
    y: &[f64],
    season: usize,
    cfg: &SelectionConfig,
) -> Option<(crate::sarima::SarimaSpec, crate::sarima::SarimaModel)> {
    use crate::sarima::{SarimaModel, SarimaSpec};
    if y.len() <= season + 2 {
        return None;
    }
    let rho_s = acf(y, season)[season];
    let sd = usize::from(rho_s >= 0.6);
    let d = choose_d(y, cfg.max_d.min(1));
    let mut best: Option<(f64, SarimaSpec, SarimaModel)> = None;
    for p in 0..=cfg.max_p.min(2) {
        for q in 0..=cfg.max_q.min(2) {
            for sp in 0..=1usize {
                for sq in 0..=1usize {
                    if p + q + sp + sq == 0 {
                        continue;
                    }
                    let spec = SarimaSpec::new(p, d, q, sp, sd, sq, season);
                    let Ok(model) = SarimaModel::fit(y, spec) else {
                        continue;
                    };
                    let score = model.aic();
                    if best.as_ref().is_none_or(|(s, _, _)| score < *s) {
                        best = Some((score, spec, model));
                    }
                }
            }
        }
    }
    best.map(|(_, spec, model)| (spec, model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ar1(phi: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut y = vec![0.0];
        for _ in 0..n {
            let e: f64 = rng.gen_range(-0.5..0.5);
            let prev = *y.last().expect("non-empty");
            y.push(phi * prev + e);
        }
        y
    }

    #[test]
    fn choose_d_zero_for_stationary() {
        let y = ar1(0.5, 3_000, 1);
        assert_eq!(choose_d(&y, 2), 0);
    }

    #[test]
    fn choose_d_one_for_random_walk() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut y = vec![0.0f64];
        for _ in 0..3_000 {
            let e: f64 = rng.gen_range(-0.5..0.5);
            let prev = *y.last().expect("non-empty");
            y.push(prev + e);
        }
        assert_eq!(choose_d(&y, 2), 1);
    }

    #[test]
    fn select_prefers_small_model_with_bic() {
        let y = ar1(0.7, 8_000, 3);
        let cfg = SelectionConfig {
            criterion: Criterion::Bic,
            ..SelectionConfig::default()
        };
        let (spec, model) = select(&y, &cfg).unwrap();
        assert_eq!(spec.d, 0);
        assert!(spec.p <= 2, "chose {spec}");
        assert!((model.phi[0] - 0.7).abs() < 0.1);
    }

    #[test]
    fn select_handles_trend_with_differencing() {
        let base = ar1(0.4, 2_000, 4);
        let y: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(t, v)| 0.5 * t as f64 + v)
            .collect();
        let (spec, _) = select(&y, &SelectionConfig::default()).unwrap();
        assert!(spec.d >= 1, "chose {spec}");
    }

    #[test]
    fn seasonal_selection_uses_seasonal_differencing_on_periodic_data() {
        use crate::generator::{weekly_traffic_trace, TraceConfig};
        let s = 24;
        let y = weekly_traffic_trace(&TraceConfig {
            len: 7 * s,
            samples_per_day: s,
            seed: 6,
        });
        let (spec, model) = select_seasonal(&y, s, &SelectionConfig::default()).unwrap();
        assert_eq!(spec.s, s);
        assert_eq!(
            spec.sd, 1,
            "strong daily ACF should trigger seasonal differencing"
        );
        assert!(model.sigma2.is_finite());
    }

    #[test]
    fn seasonal_selection_skips_differencing_on_aperiodic_data() {
        let y = ar1(0.5, 2_000, 8);
        let out = select_seasonal(&y, 24, &SelectionConfig::default());
        if let Some((spec, _)) = out {
            assert_eq!(spec.sd, 0, "no season, no seasonal differencing");
        }
    }

    #[test]
    fn select_returns_none_on_degenerate() {
        assert!(select(&[1.0; 200], &SelectionConfig::default()).is_none());
    }
}

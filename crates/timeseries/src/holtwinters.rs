//! Holt–Winters triple exponential smoothing (additive seasonality) — a
//! third model family for the dynamic selector's pool. Exponential
//! smoothing is the classical cheap alternative to ARIMA for workload
//! forecasting (the NWS line of work the paper cites \[33\], \[34\] uses
//! exactly this family) and costs O(1) per update, making it suitable for
//! per-VM background forecasting at scale.

use serde::{Deserialize, Serialize};

/// Smoothing parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HwConfig {
    /// Level smoothing α ∈ (0, 1).
    pub alpha: f64,
    /// Trend smoothing β ∈ (0, 1).
    pub beta: f64,
    /// Seasonal smoothing γ ∈ (0, 1).
    pub gamma: f64,
    /// Season length.
    pub season: usize,
}

impl HwConfig {
    /// Reasonable defaults for DC traces.
    pub fn with_season(season: usize) -> Self {
        assert!(season >= 2, "season must be at least 2");
        Self {
            alpha: 0.3,
            beta: 0.05,
            gamma: 0.25,
            season,
        }
    }
}

/// A fitted (state-initialised and smoothed-through) Holt–Winters model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HoltWinters {
    cfg: HwConfig,
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    /// index of the next seasonal slot
    phase: usize,
    /// running one-step squared-error sum and count (for fit diagnostics)
    sse: f64,
    n: usize,
}

impl HoltWinters {
    /// Initialise from at least two full seasons and smooth through the
    /// whole series.
    pub fn fit(y: &[f64], cfg: HwConfig) -> Self {
        let s = cfg.season;
        assert!(y.len() >= 2 * s, "need at least two full seasons");
        for &p in [cfg.alpha, cfg.beta, cfg.gamma].iter() {
            assert!((0.0..=1.0).contains(&p), "smoothing params in [0,1]");
        }
        // classical initialisation: first-season mean level, trend from
        // season-over-season change, seasonal indices from first season
        let first_mean = y[..s].iter().sum::<f64>() / s as f64;
        let second_mean = y[s..2 * s].iter().sum::<f64>() / s as f64;
        let mut model = Self {
            cfg,
            level: first_mean,
            trend: (second_mean - first_mean) / s as f64,
            seasonal: y[..s].iter().map(|v| v - first_mean).collect(),
            phase: 0,
            sse: 0.0,
            n: 0,
        };
        for &v in &y[s..] {
            model.update(v);
        }
        model
    }

    /// Feed one new observation, updating level/trend/seasonal state.
    pub fn update(&mut self, y: f64) {
        let HwConfig {
            alpha,
            beta,
            gamma,
            season,
        } = self.cfg;
        let sidx = self.phase % season;
        let pred = self.level + self.trend + self.seasonal[sidx];
        self.sse += (y - pred) * (y - pred);
        self.n += 1;

        let prev_level = self.level;
        self.level = alpha * (y - self.seasonal[sidx]) + (1.0 - alpha) * (self.level + self.trend);
        self.trend = beta * (self.level - prev_level) + (1.0 - beta) * self.trend;
        self.seasonal[sidx] = gamma * (y - self.level) + (1.0 - gamma) * self.seasonal[sidx];
        self.phase += 1;
    }

    /// h-step-ahead forecast from the current state.
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        let s = self.cfg.season;
        (1..=horizon)
            .map(|h| self.level + h as f64 * self.trend + self.seasonal[(self.phase + h - 1) % s])
            .collect()
    }

    /// One-step prediction without mutating state.
    pub fn predict_next(&self) -> f64 {
        self.forecast(1)[0]
    }

    /// Mean squared one-step error accumulated while smoothing.
    pub fn in_sample_mse(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sse / self.n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{weekly_traffic_trace, TraceConfig};
    use crate::metrics::mse;

    #[test]
    fn learns_pure_seasonal_pattern() {
        let s = 8;
        let pattern = [2.0, 5.0, 9.0, 12.0, 10.0, 7.0, 4.0, 1.0];
        let y: Vec<f64> = (0..12 * s).map(|t| pattern[t % s] + 20.0).collect();
        let hw = HoltWinters::fit(&y, HwConfig::with_season(s));
        let fc = hw.forecast(s);
        for (h, f) in fc.iter().enumerate() {
            let expect = pattern[(y.len() + h) % s] + 20.0;
            assert!((f - expect).abs() < 0.2, "h={h}: {f} vs {expect}");
        }
    }

    #[test]
    fn tracks_trend_plus_season() {
        let s = 6;
        let y: Vec<f64> = (0..20 * s)
            .map(|t| 0.5 * t as f64 + 3.0 * ((t % s) as f64))
            .collect();
        let hw = HoltWinters::fit(&y, HwConfig::with_season(s));
        let fc = hw.forecast(3);
        for (h, f) in fc.iter().enumerate() {
            let t = y.len() + h;
            let expect = 0.5 * t as f64 + 3.0 * ((t % s) as f64);
            assert!((f - expect).abs() < 2.5, "h={h}: {f} vs {expect}");
        }
    }

    #[test]
    fn beats_persistence_at_seasonal_horizons() {
        // Like all seasonal models, HW's edge over last-value persistence
        // appears at horizons where the cycle moves.
        let s = 48;
        let cfg = TraceConfig {
            len: 7 * s,
            samples_per_day: s,
            seed: 2,
        };
        let y = weekly_traffic_trace(&cfg);
        let split = 5 * s;
        let hw = HoltWinters::fit(&y[..split], HwConfig::with_season(s));
        let horizon = s / 2; // half a day ahead
        let fc = hw.forecast(horizon);
        let actual = &y[split..split + horizon];
        let hw_mse = mse(&fc, actual);
        let persist: Vec<f64> = vec![y[split - 1]; horizon];
        let persist_mse = mse(&persist, actual);
        assert!(
            hw_mse < persist_mse,
            "HW {hw_mse} vs persistence {persist_mse}"
        );
    }

    #[test]
    fn update_keeps_seasonal_shape() {
        let s = 4;
        let y: Vec<f64> = (0..10 * s).map(|t| (t % s) as f64).collect();
        let mut hw = HoltWinters::fit(&y, HwConfig::with_season(s));
        assert!(hw.in_sample_mse() < 1.0);
        // feeding its own predictions keeps the cycle intact
        for _ in 0..s {
            let p = hw.predict_next();
            hw.update(p);
        }
        let fc = hw.forecast(s);
        for (h, f) in fc.iter().enumerate() {
            let expect = ((y.len() + s + h) % s) as f64;
            assert!((f - expect).abs() < 0.5, "h={h}: {f} vs {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "two full seasons")]
    fn short_series_rejected() {
        HoltWinters::fit(&[1.0; 7], HwConfig::with_season(4));
    }
}

//! Normalisation helpers. Sec. IV-A requires "each element of the
//! workload profile should be normalized to [0, 1]".

use serde::{Deserialize, Serialize};

/// A fitted min-max scaler mapping the training range onto [0, 1].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    lo: f64,
    hi: f64,
}

impl MinMaxScaler {
    /// Fit to the observed range of `y`. A constant series maps to 0.5.
    pub fn fit(y: &[f64]) -> Self {
        assert!(!y.is_empty(), "cannot fit a scaler on an empty series");
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Self { lo, hi }
    }

    /// Fixed range scaler (e.g. CPU percent: 0..100).
    pub fn with_range(lo: f64, hi: f64) -> Self {
        assert!(hi > lo, "range must be non-degenerate");
        Self { lo, hi }
    }

    /// Scale a value into [0, 1] (clamped).
    pub fn transform(&self, v: f64) -> f64 {
        if (self.hi - self.lo).abs() < 1e-12 {
            return 0.5;
        }
        ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    /// Map a normalised value back to the original scale.
    pub fn inverse(&self, v: f64) -> f64 {
        self.lo + v * (self.hi - self.lo)
    }

    /// Scale a whole slice.
    pub fn transform_all(&self, y: &[f64]) -> Vec<f64> {
        y.iter().map(|&v| self.transform(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_and_transform() {
        let s = MinMaxScaler::fit(&[2.0, 4.0, 6.0]);
        assert_eq!(s.transform(2.0), 0.0);
        assert_eq!(s.transform(6.0), 1.0);
        assert_eq!(s.transform(4.0), 0.5);
    }

    #[test]
    fn transform_clamps_out_of_range() {
        let s = MinMaxScaler::with_range(0.0, 100.0);
        assert_eq!(s.transform(150.0), 1.0);
        assert_eq!(s.transform(-5.0), 0.0);
    }

    #[test]
    fn inverse_roundtrip() {
        let s = MinMaxScaler::with_range(10.0, 20.0);
        for v in [10.0, 13.0, 17.5, 20.0] {
            assert!((s.inverse(s.transform(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_series_maps_to_half() {
        let s = MinMaxScaler::fit(&[3.0, 3.0, 3.0]);
        assert_eq!(s.transform(3.0), 0.5);
    }

    #[test]
    fn transform_all_matches_pointwise() {
        let s = MinMaxScaler::with_range(0.0, 10.0);
        assert_eq!(s.transform_all(&[0.0, 5.0, 10.0]), vec![0.0, 0.5, 1.0]);
    }
}

//! ARIMA(p, d, q) estimation and MMSE forecasting (Sec. IV-B).
//!
//! The paper writes the model as `φ(L) ∇^d Y_t = θ(L) Z_t` with
//! `Z_t ~ WN(0, σ²)` and forecasts with the minimum-mean-square-error
//! recursion — one-step-ahead directly, k-step-ahead "recursively using the
//! one-step-ahead value as the historical data" (Eqn. 12).
//!
//! Estimation uses the Hannan–Rissanen procedure: a long-AR fit supplies
//! innovation estimates, then the ARMA coefficients come from one ordinary
//! least-squares regression of the differenced series on its own lags and
//! the lagged innovations. This matches the Box–Jenkins workflow the paper
//! invokes without requiring nonlinear optimisation.

use crate::ar::fit_ar;
use crate::linalg::{least_squares, Matrix};
use crate::series::{difference, undifference};
use crate::stats::mean;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Model orders (p, d, q).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArimaSpec {
    /// Autoregressive order.
    pub p: usize,
    /// Differencing order.
    pub d: usize,
    /// Moving-average order.
    pub q: usize,
}

impl ArimaSpec {
    /// Convenience constructor.
    pub fn new(p: usize, d: usize, q: usize) -> Self {
        Self { p, d, q }
    }

    /// Number of estimated coefficients (φ's, θ's and the intercept).
    pub fn param_count(&self) -> usize {
        self.p + self.q + 1
    }
}

impl fmt::Display for ArimaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ARIMA({},{},{})", self.p, self.d, self.q)
    }
}

/// Errors from ARIMA fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Not enough observations for the requested orders.
    TooShort {
        /// Observations supplied.
        have: usize,
        /// Observations needed.
        need: usize,
    },
    /// The series is (numerically) constant after differencing.
    Degenerate,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooShort { have, need } => {
                write!(f, "series has {have} observations but {need} are required")
            }
            FitError::Degenerate => write!(f, "series is constant after differencing"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted ARIMA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArimaModel {
    /// The (p, d, q) orders.
    pub spec: ArimaSpec,
    /// AR coefficients φ_1..φ_p (on the differenced, demeaned scale).
    pub phi: Vec<f64>,
    /// MA coefficients θ_1..θ_q.
    pub theta: Vec<f64>,
    /// Mean of the differenced series (drift term).
    pub mean: f64,
    /// Innovation variance σ̂².
    pub sigma2: f64,
    /// Number of observations used in the regression (for AIC/BIC).
    pub nobs: usize,
}

impl ArimaModel {
    /// Fit by Hannan–Rissanen on the `d`-times differenced series.
    pub fn fit(y: &[f64], spec: ArimaSpec) -> Result<Self, FitError> {
        let min_len = spec.d + spec.p.max(1) + spec.q + 20;
        if y.len() < min_len {
            return Err(FitError::TooShort {
                have: y.len(),
                need: min_len,
            });
        }
        let (w, _) = difference(y, spec.d);
        let mu = mean(&w);
        let wc: Vec<f64> = w.iter().map(|v| v - mu).collect();
        if crate::stats::variance(&wc) < 1e-12 {
            return Err(FitError::Degenerate);
        }

        let (phi, theta, sigma2, nobs) = if spec.q == 0 {
            // pure AR: Yule–Walker
            if spec.p == 0 {
                let s2 = crate::stats::variance(&wc).max(1e-12);
                (Vec::new(), Vec::new(), s2, wc.len())
            } else {
                let fit = fit_ar(&wc, spec.p).ok_or(FitError::Degenerate)?;
                let nobs = wc.len() - spec.p;
                (fit.phi, Vec::new(), fit.sigma2, nobs)
            }
        } else {
            // Stage 1: long AR for innovation estimates.
            let long_p = (spec.p + spec.q + 2)
                .max(((wc.len() as f64).ln() * 2.0).ceil() as usize)
                .min(wc.len() / 4)
                .max(1);
            let long = fit_ar(&wc, long_p).ok_or(FitError::Degenerate)?;
            let e = long.residuals(&wc);

            // Stage 2: OLS of w_t on [w_{t-1..p}, e_{t-1..q}].
            let start = long_p.max(spec.p).max(spec.q);
            let rows = wc.len() - start;
            if rows < spec.param_count() + 5 {
                return Err(FitError::TooShort {
                    have: y.len(),
                    need: y.len() + spec.param_count() + 5 - rows,
                });
            }
            let ncols = spec.p + spec.q;
            let mut xd = Vec::with_capacity(rows * ncols);
            let mut targets = Vec::with_capacity(rows);
            for t in start..wc.len() {
                for j in 1..=spec.p {
                    xd.push(wc[t - j]);
                }
                for j in 1..=spec.q {
                    xd.push(e[t - j]);
                }
                targets.push(wc[t]);
            }
            let x = Matrix::from_vec(rows, ncols, xd);
            let beta = least_squares(&x, &targets).ok_or(FitError::Degenerate)?;
            let (phi, theta) = beta.split_at(spec.p);
            let mut phi = phi.to_vec();
            let mut theta = theta.to_vec();
            clamp_coeffs(&mut phi);
            clamp_coeffs(&mut theta);

            // innovation variance from the final model's residuals
            let model = ArimaModel {
                spec,
                phi: phi.clone(),
                theta: theta.clone(),
                mean: mu,
                sigma2: 1.0,
                nobs: rows,
            };
            let resid = model.residuals_differenced(&w);
            let used = &resid[start..];
            let s2 = used.iter().map(|r| r * r).sum::<f64>() / used.len() as f64;
            (phi, theta, s2.max(1e-12), rows)
        };

        Ok(Self {
            spec,
            phi,
            theta,
            mean: mu,
            sigma2,
            nobs,
        })
    }

    /// Conditional one-step residuals on the differenced (not demeaned)
    /// scale; the first `max(p, q)` entries are zero.
    pub fn residuals_differenced(&self, w: &[f64]) -> Vec<f64> {
        let p = self.phi.len();
        let q = self.theta.len();
        let start = p.max(q);
        let mut e = vec![0.0; w.len()];
        for t in start..w.len() {
            let mut pred = self.mean;
            for (j, f) in self.phi.iter().enumerate() {
                pred += f * (w[t - 1 - j] - self.mean);
            }
            for (j, th) in self.theta.iter().enumerate() {
                pred += th * e[t - 1 - j];
            }
            e[t] = w[t] - pred;
        }
        e
    }

    /// MMSE forecast `P_t Y_{t+1..t+horizon}` on the *original* scale,
    /// given the full observed history (original scale).
    ///
    /// Implements Eqn. 12: forecast the differenced ARMA recursively with
    /// future innovations set to zero, then invert `∇^d`.
    pub fn forecast(&self, history: &[f64], horizon: usize) -> Vec<f64> {
        assert!(
            history.len() > self.spec.d + self.phi.len().max(self.theta.len()),
            "history too short to forecast"
        );
        let (w, seeds) = difference(history, self.spec.d);
        let e = self.residuals_differenced(&w);

        let p = self.phi.len();
        let q = self.theta.len();
        // extended arrays: observed + forecast region
        let mut wx = w.clone();
        let mut ex = e;
        for _ in 0..horizon {
            let t = wx.len();
            let mut pred = self.mean;
            for (j, f) in self.phi.iter().enumerate() {
                if t > j {
                    pred += f * (wx[t - 1 - j] - self.mean);
                }
            }
            for (j, th) in self.theta.iter().enumerate() {
                if t > j {
                    pred += th * ex[t - 1 - j];
                }
            }
            wx.push(pred);
            ex.push(0.0); // future innovations have zero conditional mean
            let _ = (p, q);
        }
        undifference(&wx[w.len()..], &seeds)
    }

    /// One-step-ahead rolling predictions over `series[split..]`: for each
    /// t ≥ split, predict `series[t]` from `series[..t]`. This is the
    /// evaluation protocol of Fig. 6.
    pub fn rolling_one_step(&self, series: &[f64], split: usize) -> Vec<f64> {
        assert!(split < series.len(), "split beyond series end");
        (split..series.len())
            .map(|t| self.forecast(&series[..t], 1)[0])
            .collect()
    }

    /// Akaike information criterion.
    pub fn aic(&self) -> f64 {
        let k = self.spec.param_count() as f64;
        self.nobs as f64 * self.sigma2.ln() + 2.0 * k
    }

    /// Bayesian information criterion.
    pub fn bic(&self) -> f64 {
        let k = self.spec.param_count() as f64;
        self.nobs as f64 * self.sigma2.ln() + k * (self.nobs as f64).ln()
    }
}

/// Shrink coefficient vectors whose ℓ1 norm threatens non-stationarity /
/// non-invertibility; keeps the forecast recursion stable on short, noisy
/// fits without implementing full root-flipping.
fn clamp_coeffs(c: &mut [f64]) {
    let norm: f64 = c.iter().map(|v| v.abs()).sum();
    const LIMIT: f64 = 0.98;
    if norm > LIMIT {
        let s = LIMIT / norm;
        for v in c {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn arma11(phi: f64, theta: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut y = vec![0.0];
        let mut prev_e = 0.0;
        for _ in 0..n {
            let e: f64 = rng.gen_range(-0.5..0.5);
            let prev = *y.last().expect("non-empty");
            y.push(phi * prev + e + theta * prev_e);
            prev_e = e;
        }
        y
    }

    #[test]
    fn fits_arma11_coefficients() {
        let y = arma11(0.6, 0.4, 40_000, 21);
        let m = ArimaModel::fit(&y, ArimaSpec::new(1, 0, 1)).unwrap();
        assert!((m.phi[0] - 0.6).abs() < 0.08, "phi = {:?}", m.phi);
        assert!((m.theta[0] - 0.4).abs() < 0.08, "theta = {:?}", m.theta);
        assert!(
            (m.sigma2 - 1.0 / 12.0).abs() < 0.01,
            "sigma2 = {}",
            m.sigma2
        );
    }

    #[test]
    fn fits_pure_ar_via_yule_walker() {
        let y = arma11(0.7, 0.0, 30_000, 2);
        let m = ArimaModel::fit(&y, ArimaSpec::new(1, 0, 0)).unwrap();
        assert!((m.phi[0] - 0.7).abs() < 0.05);
        assert!(m.theta.is_empty());
    }

    #[test]
    fn differencing_handles_linear_trend() {
        // y_t = 2t + AR(1) noise: ARIMA(1,1,0) should forecast the trend
        let noise = arma11(0.5, 0.0, 600, 8);
        let y: Vec<f64> = noise
            .iter()
            .enumerate()
            .map(|(t, n)| 2.0 * t as f64 + n)
            .collect();
        let m = ArimaModel::fit(&y, ArimaSpec::new(1, 1, 0)).unwrap();
        let fc = m.forecast(&y, 5);
        let last = *y.last().expect("non-empty");
        // each step should grow by roughly the slope 2
        for (h, f) in fc.iter().enumerate() {
            let expect = last + 2.0 * (h + 1) as f64;
            assert!((f - expect).abs() < 3.0, "h={h}: {f} vs {expect}");
        }
    }

    #[test]
    fn one_step_forecast_beats_naive_on_ar1() {
        let y = arma11(0.8, 0.0, 3_000, 77);
        let split = 2_500;
        let m = ArimaModel::fit(&y[..split], ArimaSpec::new(1, 0, 0)).unwrap();
        let preds = m.rolling_one_step(&y, split);
        let mse_model: f64 = preds
            .iter()
            .zip(&y[split..])
            .map(|(p, a)| (p - a).powi(2))
            .sum::<f64>()
            / preds.len() as f64;
        let mse_naive: f64 = (split..y.len())
            .map(|t| (y[t] - y[t - 1]).powi(2))
            .sum::<f64>()
            / preds.len() as f64;
        assert!(
            mse_model < mse_naive,
            "model {mse_model} vs naive {mse_naive}"
        );
    }

    #[test]
    fn kstep_forecast_converges_to_mean() {
        let y = arma11(0.5, 0.0, 5_000, 3);
        let m = ArimaModel::fit(&y, ArimaSpec::new(1, 0, 0)).unwrap();
        let fc = m.forecast(&y, 200);
        // AR(1) k-step forecast decays geometrically toward the mean
        let far = fc[199];
        assert!(
            (far - m.mean).abs() < 0.05,
            "far forecast {far} mean {}",
            m.mean
        );
    }

    #[test]
    fn too_short_series_is_rejected() {
        let err = ArimaModel::fit(&[1.0, 2.0, 3.0], ArimaSpec::new(1, 1, 1)).unwrap_err();
        assert!(matches!(err, FitError::TooShort { .. }));
    }

    #[test]
    fn constant_series_is_degenerate() {
        let err = ArimaModel::fit(&[5.0; 100], ArimaSpec::new(1, 0, 0)).unwrap_err();
        assert_eq!(err, FitError::Degenerate);
    }

    #[test]
    fn aic_penalises_extra_parameters() {
        let y = arma11(0.6, 0.0, 5_000, 5);
        let small = ArimaModel::fit(&y, ArimaSpec::new(1, 0, 0)).unwrap();
        let big = ArimaModel::fit(&y, ArimaSpec::new(4, 0, 3)).unwrap();
        // σ² barely improves, so AIC should favour the small model
        assert!(small.aic() < big.aic() + 50.0);
        assert!(small.bic() < big.bic());
    }

    #[test]
    fn clamp_keeps_unstable_fit_bounded() {
        let mut c = vec![0.9, 0.9];
        clamp_coeffs(&mut c);
        assert!(c.iter().map(|v| v.abs()).sum::<f64>() <= 0.99);
        let mut ok = vec![0.3, 0.2];
        clamp_coeffs(&mut ok);
        assert_eq!(ok, vec![0.3, 0.2]);
    }
}

//! NARNET — nonlinear autoregressive neural network (Sec. IV-B).
//!
//! `Y_t = F(Y_{t−1}, …, Y_{t−ni}) + ε_t` (Eqn. 13), with `F` a single
//! hidden layer of `nh` tanh units and a linear output, trained by Adam on
//! mean-squared error. The paper's evaluation uses 20 hidden neurons and a
//! 70 %/30 % train/test split (Fig. 7). Inputs are min-max normalised
//! internally so workloads at arbitrary scales train equally well.

use crate::series::lag_matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NarnetConfig {
    /// Number of lag inputs `ni`.
    pub lags: usize,
    /// Number of hidden units `nh` (paper: 20).
    pub hidden: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Fraction of training rows held out for early stopping.
    pub validation_fraction: f64,
    /// Stop after this many epochs without validation improvement.
    pub patience: usize,
    /// RNG seed for weight init and shuffling.
    pub seed: u64,
}

impl Default for NarnetConfig {
    fn default() -> Self {
        Self {
            lags: 8,
            hidden: 20,
            learning_rate: 0.01,
            epochs: 400,
            batch: 32,
            validation_fraction: 0.15,
            patience: 30,
            seed: 0x5EED,
        }
    }
}

/// A trained NARNET model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Narnet {
    cfg: NarnetConfig,
    /// hidden weights, row h = [w_{h,1..ni}, bias_h]
    w1: Vec<f64>,
    /// output weights [v_1..v_nh, bias]
    w2: Vec<f64>,
    /// min-max normalisation bounds of the training series
    lo: f64,
    hi: f64,
    /// final training MSE (normalised scale)
    train_mse: f64,
}

struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: usize,
    lr: f64,
}

impl Adam {
    fn new(n: usize, lr: f64) -> Self {
        Self {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            lr,
        }
    }

    fn step(&mut self, w: &mut [f64], g: &[f64]) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        for i in 0..w.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * g[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * g[i] * g[i];
            let mh = self.m[i] / bc1;
            let vh = self.v[i] / bc2;
            w[i] -= self.lr * mh / (vh.sqrt() + EPS);
        }
    }
}

impl Narnet {
    /// Train on a series. Panics if the series is shorter than
    /// `lags + 10` observations.
    pub fn fit(series: &[f64], cfg: NarnetConfig) -> Self {
        assert!(
            series.len() >= cfg.lags + 10,
            "series too short for {} lags",
            cfg.lags
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let (lo, hi) = bounds(series);
        let norm: Vec<f64> = series.iter().map(|v| scale(*v, lo, hi)).collect();
        let (rows, targets) = lag_matrix(&norm, cfg.lags);

        // chronological validation split (time series: never shuffle across
        // the split boundary)
        let val_len = ((rows.len() as f64 * cfg.validation_fraction) as usize).max(1);
        let train_len = rows.len().saturating_sub(val_len).max(1);

        let ni = cfg.lags;
        let nh = cfg.hidden;
        let n_w1 = nh * (ni + 1);
        let n_w2 = nh + 1;
        // Xavier-ish init
        let s1 = (1.0 / ni as f64).sqrt();
        let s2 = (1.0 / nh as f64).sqrt();
        let mut w1: Vec<f64> = (0..n_w1).map(|_| rng.gen_range(-s1..s1)).collect();
        let mut w2: Vec<f64> = (0..n_w2).map(|_| rng.gen_range(-s2..s2)).collect();
        let mut opt1 = Adam::new(n_w1, cfg.learning_rate);
        let mut opt2 = Adam::new(n_w2, cfg.learning_rate);

        let mut order: Vec<usize> = (0..train_len).collect();
        let mut best_val = f64::INFINITY;
        let mut best = (w1.clone(), w2.clone());
        let mut stall = 0;

        let mut g1 = vec![0.0; n_w1];
        let mut g2 = vec![0.0; n_w2];
        let mut hidden = vec![0.0; nh];

        for _epoch in 0..cfg.epochs {
            // Fisher–Yates shuffle of the training rows
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(cfg.batch) {
                g1.iter_mut().for_each(|g| *g = 0.0);
                g2.iter_mut().for_each(|g| *g = 0.0);
                for &r in chunk {
                    let x = &rows[r];
                    let y = targets[r];
                    // forward
                    for h in 0..nh {
                        let wrow = &w1[h * (ni + 1)..(h + 1) * (ni + 1)];
                        let z = crate::linalg::dot(&wrow[..ni], x) + wrow[ni];
                        hidden[h] = z.tanh();
                    }
                    let out = crate::linalg::dot(&w2[..nh], &hidden) + w2[nh];
                    let err = out - y;
                    // backward
                    for h in 0..nh {
                        g2[h] += err * hidden[h];
                        let dh = err * w2[h] * (1.0 - hidden[h] * hidden[h]);
                        let grow = &mut g1[h * (ni + 1)..(h + 1) * (ni + 1)];
                        for (gi, &xi) in grow[..ni].iter_mut().zip(x) {
                            *gi += dh * xi;
                        }
                        grow[ni] += dh;
                    }
                    g2[nh] += err;
                }
                let inv = 1.0 / chunk.len() as f64;
                g1.iter_mut().for_each(|g| *g *= inv);
                g2.iter_mut().for_each(|g| *g *= inv);
                opt1.step(&mut w1, &g1);
                opt2.step(&mut w2, &g2);
            }
            // validation
            let val_mse = mse_on(&w1, &w2, ni, nh, &rows[train_len..], &targets[train_len..]);
            if val_mse + 1e-9 < best_val {
                best_val = val_mse;
                best = (w1.clone(), w2.clone());
                stall = 0;
            } else {
                stall += 1;
                if stall >= cfg.patience {
                    break;
                }
            }
        }
        let (w1, w2) = best;
        let train_mse = mse_on(&w1, &w2, ni, nh, &rows[..train_len], &targets[..train_len]);
        Self {
            cfg,
            w1,
            w2,
            lo,
            hi,
            train_mse,
        }
    }

    /// One-step-ahead prediction from the most recent observations
    /// (original scale; needs at least `lags` values).
    pub fn predict_next(&self, history: &[f64]) -> f64 {
        let ni = self.cfg.lags;
        assert!(history.len() >= ni, "need at least {ni} observations");
        let x: Vec<f64> = (1..=ni)
            .map(|j| scale(history[history.len() - j], self.lo, self.hi))
            .collect();
        let nh = self.cfg.hidden;
        let mut out = self.w2[nh];
        for h in 0..nh {
            let wrow = &self.w1[h * (ni + 1)..(h + 1) * (ni + 1)];
            let z = crate::linalg::dot(&wrow[..ni], &x) + wrow[ni];
            out += self.w2[h] * z.tanh();
        }
        unscale(out, self.lo, self.hi)
    }

    /// Closed-loop k-step forecast: feed predictions back as inputs.
    pub fn forecast(&self, history: &[f64], horizon: usize) -> Vec<f64> {
        let mut buf = history.to_vec();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let p = self.predict_next(&buf);
            out.push(p);
            buf.push(p);
        }
        out
    }

    /// One-step rolling predictions for `series[split..]` given true
    /// history (open loop) — the Fig. 7 test protocol.
    pub fn rolling_one_step(&self, series: &[f64], split: usize) -> Vec<f64> {
        assert!(split >= self.cfg.lags, "split must be >= lags");
        (split..series.len())
            .map(|t| self.predict_next(&series[..t]))
            .collect()
    }

    /// Final training MSE on the normalised scale.
    pub fn train_mse(&self) -> f64 {
        self.train_mse
    }

    /// Number of lag inputs.
    pub fn lags(&self) -> usize {
        self.cfg.lags
    }
}

fn bounds(y: &[f64]) -> (f64, f64) {
    let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if (hi - lo).abs() < 1e-12 {
        (lo - 0.5, lo + 0.5)
    } else {
        (lo, hi)
    }
}

#[inline]
fn scale(v: f64, lo: f64, hi: f64) -> f64 {
    2.0 * (v - lo) / (hi - lo) - 1.0
}

#[inline]
fn unscale(v: f64, lo: f64, hi: f64) -> f64 {
    (v + 1.0) / 2.0 * (hi - lo) + lo
}

fn mse_on(w1: &[f64], w2: &[f64], ni: usize, nh: usize, rows: &[Vec<f64>], t: &[f64]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for (x, &y) in rows.iter().zip(t) {
        let mut out = w2[nh];
        for h in 0..nh {
            let wrow = &w1[h * (ni + 1)..(h + 1) * (ni + 1)];
            let z = crate::linalg::dot(&wrow[..ni], x) + wrow[ni];
            out += w2[h] * z.tanh();
        }
        sum += (out - y) * (out - y);
    }
    sum / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| (t as f64 * 0.3).sin() * 5.0 + 10.0)
            .collect()
    }

    fn quick_cfg() -> NarnetConfig {
        NarnetConfig {
            lags: 6,
            hidden: 10,
            epochs: 150,
            patience: 20,
            ..NarnetConfig::default()
        }
    }

    #[test]
    fn learns_a_sine_wave() {
        let y = sine(400);
        let model = Narnet::fit(&y[..300], quick_cfg());
        let preds = model.rolling_one_step(&y, 300);
        let mse: f64 = preds
            .iter()
            .zip(&y[300..])
            .map(|(p, a)| (p - a).powi(2))
            .sum::<f64>()
            / preds.len() as f64;
        // amplitude 5 → variance 12.5; demand far better than predicting the mean
        assert!(mse < 0.5, "test mse = {mse}");
    }

    #[test]
    fn learns_nonlinear_map_better_than_linear() {
        // threshold autoregression: linear models cannot capture the switch
        let mut y = vec![0.5f64, -0.3];
        for t in 2..1_200 {
            let prev: f64 = y[t - 1];
            let v = if prev > 0.0 {
                0.9 * prev - 0.4
            } else {
                -0.7 * prev + 0.3
            };
            y.push(v + 0.05 * ((t as f64) * 1.7).sin());
        }
        let split = 900;
        let model = Narnet::fit(&y[..split], quick_cfg());
        let nn_preds = model.rolling_one_step(&y, split);
        let nn_mse: f64 = nn_preds
            .iter()
            .zip(&y[split..])
            .map(|(p, a)| (p - a).powi(2))
            .sum::<f64>()
            / nn_preds.len() as f64;

        let ar = crate::ar::fit_ar(&y[..split], 6).unwrap();
        let ar_mse: f64 = (split..y.len())
            .map(|t| (ar.predict_next(&y[..t]) - y[t]).powi(2))
            .sum::<f64>()
            / (y.len() - split) as f64;
        assert!(
            nn_mse < ar_mse,
            "NARNET {nn_mse} should beat linear AR {ar_mse} on TAR data"
        );
    }

    #[test]
    fn forecast_closed_loop_has_right_length_and_stays_bounded() {
        let y = sine(300);
        let model = Narnet::fit(&y, quick_cfg());
        let fc = model.forecast(&y, 50);
        assert_eq!(fc.len(), 50);
        // normalisation clamps tanh output near training range
        for v in fc {
            assert!(v > 0.0 && v < 20.0, "runaway forecast {v}");
        }
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let y = sine(200);
        let a = Narnet::fit(&y, quick_cfg());
        let b = Narnet::fit(&y, quick_cfg());
        assert_eq!(a.predict_next(&y), b.predict_next(&y));
    }

    #[test]
    fn constant_series_predicts_constant() {
        let y = vec![7.0; 100];
        let model = Narnet::fit(&y, quick_cfg());
        let p = model.predict_next(&y);
        assert!((p - 7.0).abs() < 0.5, "predicted {p}");
    }

    #[test]
    #[should_panic(expected = "series too short")]
    fn short_series_panics() {
        Narnet::fit(&[1.0, 2.0], quick_cfg());
    }
}

//! Seasonal ARIMA — `SARIMA(p, d, q)(P, D, Q)_s`.
//!
//! The paper's headline trace (Fig. 5) is *weekly* traffic with a strong
//! daily period; plain ARIMA(1,1,1) captures the local dynamics but not
//! the seasonal structure. Box–Jenkins practice on such data is seasonal
//! differencing plus seasonal AR/MA terms — the natural "further
//! exploration" of the paper's prediction phase.
//!
//! Estimation mirrors the non-seasonal Hannan–Rissanen path: seasonally
//! difference `D` times at lag `s`, regularly difference `d` times, fit a
//! long AR for innovation estimates, then one OLS with regressors
//! `{w_{t−1..p}, w_{t−s..Ps}, e_{t−1..q}, e_{t−s..Qs}}` (the
//! multiplicative polynomial is approximated additively, which is
//! standard for HR-style estimation and exact when cross terms vanish).

use crate::ar::fit_ar;
use crate::arima::FitError;
use crate::linalg::{least_squares, Matrix};
use crate::series::{difference, undifference};
use crate::stats::mean;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Orders of a seasonal ARIMA model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SarimaSpec {
    /// Non-seasonal AR order.
    pub p: usize,
    /// Non-seasonal differencing.
    pub d: usize,
    /// Non-seasonal MA order.
    pub q: usize,
    /// Seasonal AR order `P`.
    pub sp: usize,
    /// Seasonal differencing `D`.
    pub sd: usize,
    /// Seasonal MA order `Q`.
    pub sq: usize,
    /// Season length `s` (samples per period).
    pub s: usize,
}

impl SarimaSpec {
    /// `SARIMA(p,d,q)(P,D,Q)_s`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(p: usize, d: usize, q: usize, sp: usize, sd: usize, sq: usize, s: usize) -> Self {
        assert!(s >= 2, "season length must be at least 2");
        Self {
            p,
            d,
            q,
            sp,
            sd,
            sq,
            s,
        }
    }

    /// Number of estimated coefficients (plus intercept).
    pub fn param_count(&self) -> usize {
        self.p + self.q + self.sp + self.sq + 1
    }

    fn max_lag(&self) -> usize {
        (self.p)
            .max(self.q)
            .max(self.sp * self.s)
            .max(self.sq * self.s)
            .max(1)
    }
}

impl fmt::Display for SarimaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SARIMA({},{},{})({},{},{})_{}",
            self.p, self.d, self.q, self.sp, self.sd, self.sq, self.s
        )
    }
}

/// Apply the lag-`s` seasonal difference `D` times. Returns the
/// differenced series and, per level, the `s` seed values needed to
/// invert forecasts.
pub fn seasonal_difference(y: &[f64], s: usize, levels: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    assert!(
        y.len() > s * levels,
        "series too short for {levels} seasonal differences at lag {s}"
    );
    let mut cur = y.to_vec();
    let mut seeds = Vec::with_capacity(levels);
    for _ in 0..levels {
        seeds.push(cur[cur.len() - s..].to_vec());
        cur = cur.windows(s + 1).map(|w| w[s] - w[0]).collect();
    }
    (cur, seeds)
}

/// Invert [`seasonal_difference`] on a block of future values.
pub fn seasonal_undifference(forecasts: &[f64], seeds: &[Vec<f64>]) -> Vec<f64> {
    let mut cur = forecasts.to_vec();
    for seed in seeds.iter().rev() {
        let s = seed.len();
        let mut ring = seed.clone();
        for (h, v) in cur.iter_mut().enumerate() {
            let base = ring[h % s];
            *v += base;
            ring[h % s] = *v;
        }
    }
    cur
}

/// A fitted seasonal ARIMA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SarimaModel {
    /// The orders.
    pub spec: SarimaSpec,
    /// Non-seasonal AR coefficients.
    pub phi: Vec<f64>,
    /// Non-seasonal MA coefficients.
    pub theta: Vec<f64>,
    /// Seasonal AR coefficients (lags s, 2s, …).
    pub sphi: Vec<f64>,
    /// Seasonal MA coefficients.
    pub stheta: Vec<f64>,
    /// Mean of the fully differenced series.
    pub mean: f64,
    /// Innovation variance.
    pub sigma2: f64,
    /// Observations used in the regression.
    pub nobs: usize,
}

impl SarimaModel {
    /// Fit by the seasonal Hannan–Rissanen procedure.
    pub fn fit(y: &[f64], spec: SarimaSpec) -> Result<Self, FitError> {
        let need = spec.s * spec.sd + spec.d + 3 * spec.max_lag() + 20;
        if y.len() < need {
            return Err(FitError::TooShort {
                have: y.len(),
                need,
            });
        }
        let (w1, _) = seasonal_difference(y, spec.s, spec.sd);
        let (w, _) = difference(&w1, spec.d);
        let mu = mean(&w);
        let wc: Vec<f64> = w.iter().map(|v| v - mu).collect();
        if crate::stats::variance(&wc) < 1e-12 {
            // the differencing already explains the series perfectly
            // (e.g. a pure periodic signal): the zero-coefficient model is
            // exact, not an error
            return Ok(Self {
                spec,
                phi: vec![],
                theta: vec![],
                sphi: vec![],
                stheta: vec![],
                mean: mu,
                sigma2: 1e-12,
                nobs: wc.len(),
            });
        }

        // Stage 1: long AR covering at least one season.
        let long_p = (spec.max_lag() + 2)
            .max(spec.s + 1)
            .min(wc.len() / 4)
            .max(1);
        let long = fit_ar(&wc, long_p).ok_or(FitError::Degenerate)?;
        let e = long.residuals(&wc);

        // Stage 2: OLS with seasonal and non-seasonal regressors.
        let start = long_p.max(spec.max_lag());
        let rows = wc.len().saturating_sub(start);
        let ncols = spec.p + spec.sp + spec.q + spec.sq;
        if rows < ncols + 5 {
            return Err(FitError::TooShort {
                have: y.len(),
                need: y.len() + ncols + 5 - rows,
            });
        }
        if ncols == 0 {
            let s2 = crate::stats::variance(&wc).max(1e-12);
            return Ok(Self {
                spec,
                phi: vec![],
                theta: vec![],
                sphi: vec![],
                stheta: vec![],
                mean: mu,
                sigma2: s2,
                nobs: wc.len(),
            });
        }
        let mut xd = Vec::with_capacity(rows * ncols);
        let mut targets = Vec::with_capacity(rows);
        for t in start..wc.len() {
            for j in 1..=spec.p {
                xd.push(wc[t - j]);
            }
            for j in 1..=spec.sp {
                xd.push(wc[t - j * spec.s]);
            }
            for j in 1..=spec.q {
                xd.push(e[t - j]);
            }
            for j in 1..=spec.sq {
                xd.push(e[t - j * spec.s]);
            }
            targets.push(wc[t]);
        }
        let x = Matrix::from_vec(rows, ncols, xd);
        let beta = least_squares(&x, &targets).ok_or(FitError::Degenerate)?;
        let (phi, rest) = beta.split_at(spec.p);
        let (sphi, rest) = rest.split_at(spec.sp);
        let (theta, stheta) = rest.split_at(spec.q);

        let mut model = Self {
            spec,
            phi: phi.to_vec(),
            theta: theta.to_vec(),
            sphi: sphi.to_vec(),
            stheta: stheta.to_vec(),
            mean: mu,
            sigma2: 1.0,
            nobs: rows,
        };
        let resid = model.residuals_differenced(&w);
        let used = &resid[start..];
        model.sigma2 = (used.iter().map(|r| r * r).sum::<f64>() / used.len() as f64).max(1e-12);
        Ok(model)
    }

    /// Conditional residuals on the fully differenced scale.
    pub fn residuals_differenced(&self, w: &[f64]) -> Vec<f64> {
        let start = self.spec.max_lag();
        let mut e = vec![0.0; w.len()];
        for t in start..w.len() {
            e[t] = w[t] - self.predict_differenced(w, &e, t);
        }
        e
    }

    /// One-step conditional mean at index `t` of the differenced series.
    fn predict_differenced(&self, w: &[f64], e: &[f64], t: usize) -> f64 {
        let s = self.spec.s;
        let mut pred = self.mean;
        for (j, f) in self.phi.iter().enumerate() {
            pred += f * (w[t - 1 - j] - self.mean);
        }
        for (j, f) in self.sphi.iter().enumerate() {
            pred += f * (w[t - (j + 1) * s] - self.mean);
        }
        for (j, th) in self.theta.iter().enumerate() {
            pred += th * e[t - 1 - j];
        }
        for (j, th) in self.stheta.iter().enumerate() {
            pred += th * e[t - (j + 1) * s];
        }
        pred
    }

    /// MMSE forecast on the original scale (Eqn. 12 with the seasonal
    /// operators included).
    pub fn forecast(&self, history: &[f64], horizon: usize) -> Vec<f64> {
        let (w1, sseeds) = seasonal_difference(history, self.spec.s, self.spec.sd);
        let (w, dseeds) = difference(&w1, self.spec.d);
        assert!(
            w.len() > self.spec.max_lag(),
            "history too short to forecast"
        );
        let mut wx = w.clone();
        let mut ex = self.residuals_differenced(&w);
        for _ in 0..horizon {
            let t = wx.len();
            // future innovations are zero; guard underflow for seasonal lags
            let pred = if t >= self.spec.max_lag() {
                self.predict_differenced(&wx, &ex, t)
            } else {
                self.mean
            };
            wx.push(pred);
            ex.push(0.0);
        }
        let inner = undifference(&wx[w.len()..], &dseeds);
        seasonal_undifference(&inner, &sseeds)
    }

    /// One-step rolling predictions over `series[split..]` (Fig. 6
    /// protocol).
    pub fn rolling_one_step(&self, series: &[f64], split: usize) -> Vec<f64> {
        (split..series.len())
            .map(|t| self.forecast(&series[..t], 1)[0])
            .collect()
    }

    /// Akaike information criterion.
    pub fn aic(&self) -> f64 {
        self.nobs as f64 * self.sigma2.ln() + 2.0 * self.spec.param_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{weekly_traffic_trace, TraceConfig};
    use crate::metrics::mse;

    #[test]
    fn seasonal_difference_removes_period() {
        // pure periodic signal: seasonal difference is exactly zero
        let s = 12;
        let y: Vec<f64> = (0..120).map(|t| ((t % s) as f64) * 2.0 + 5.0).collect();
        let (w, seeds) = seasonal_difference(&y, s, 1);
        assert!(w.iter().all(|v| v.abs() < 1e-12));
        assert_eq!(seeds[0].len(), s);
    }

    #[test]
    fn seasonal_undifference_inverts() {
        let s = 4;
        let y: Vec<f64> = (0..32)
            .map(|t| (t as f64 * 0.7).sin() * 3.0 + t as f64 * 0.1)
            .collect();
        // difference the full series, then "forecast" the true future
        // values' differences and invert: must reproduce them
        let future: Vec<f64> = (32..40)
            .map(|t| (t as f64 * 0.7).sin() * 3.0 + t as f64 * 0.1)
            .collect();
        let mut extended = y.clone();
        extended.extend_from_slice(&future);
        let (wext, _) = seasonal_difference(&extended, s, 1);
        let (_, seeds) = seasonal_difference(&y, s, 1);
        let future_diffs = &wext[wext.len() - 8..];
        let rebuilt = seasonal_undifference(future_diffs, &seeds);
        for (a, b) in rebuilt.iter().zip(&future) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn two_level_seasonal_roundtrip() {
        let s = 3;
        let y: Vec<f64> = (0..60)
            .map(|t| (t * t) as f64 * 0.01 + (t % 3) as f64)
            .collect();
        let future: Vec<f64> = (60..66)
            .map(|t| (t * t) as f64 * 0.01 + (t % 3) as f64)
            .collect();
        let mut ext = y.clone();
        ext.extend_from_slice(&future);
        let (wext, _) = seasonal_difference(&ext, s, 2);
        let (_, seeds) = seasonal_difference(&y, s, 2);
        let rebuilt = seasonal_undifference(&wext[wext.len() - 6..], &seeds);
        for (a, b) in rebuilt.iter().zip(&future) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sarima_beats_plain_arima_at_seasonal_horizons() {
        // One step ahead, AR noise dominates and plain ARIMA is already
        // near-optimal; the seasonal structure pays off at day-scale
        // horizons where ARIMA's forecast decays to the mean but SARIMA
        // reproduces the daily cycle.
        let s = 48;
        let cfg = TraceConfig {
            len: 7 * s,
            samples_per_day: s,
            seed: 5,
        };
        let y = weekly_traffic_trace(&cfg);
        let horizon = s; // one full day ahead
        let sarima = SarimaModel::fit(&y[..5 * s], SarimaSpec::new(1, 0, 0, 1, 1, 0, s))
            .expect("seasonal fit");
        let arima =
            crate::arima::ArimaModel::fit(&y[..5 * s], crate::arima::ArimaSpec::new(1, 1, 1))
                .expect("plain fit");
        let mut sarima_err = 0.0;
        let mut arima_err = 0.0;
        for origin in [5 * s, 5 * s + s / 2] {
            let actual = &y[origin..origin + horizon];
            sarima_err += mse(&sarima.forecast(&y[..origin], horizon), actual);
            arima_err += mse(&arima.forecast(&y[..origin], horizon), actual);
        }
        assert!(
            sarima_err < arima_err,
            "SARIMA {sarima_err} should beat ARIMA {arima_err} a day ahead"
        );
    }

    #[test]
    fn seasonal_forecast_repeats_the_period() {
        // noiseless seasonal pattern: multi-step forecast must reproduce it
        let s = 6;
        let pattern = [10.0, 14.0, 20.0, 18.0, 12.0, 8.0];
        let y: Vec<f64> = (0..20 * s).map(|t| pattern[t % s]).collect();
        let m = SarimaModel::fit(&y, SarimaSpec::new(0, 0, 0, 1, 1, 0, s)).unwrap();
        let fc = m.forecast(&y, s);
        for (h, f) in fc.iter().enumerate() {
            let expect = pattern[(y.len() + h) % s];
            assert!((f - expect).abs() < 0.5, "h={h}: {f} vs {expect}");
        }
    }

    #[test]
    fn too_short_rejected() {
        let y = vec![1.0; 20];
        let err = SarimaModel::fit(&y, SarimaSpec::new(1, 0, 1, 1, 1, 1, 12)).unwrap_err();
        assert!(matches!(err, FitError::TooShort { .. }));
    }

    #[test]
    fn display_format() {
        let spec = SarimaSpec::new(1, 0, 1, 1, 1, 1, 48);
        assert_eq!(spec.to_string(), "SARIMA(1,0,1)(1,1,1)_48");
        assert_eq!(spec.param_count(), 5);
    }
}

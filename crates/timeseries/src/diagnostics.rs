//! Model-fit diagnostics: the checks Box–Jenkins practice runs after
//! estimation — residual whiteness (Ljung–Box), residual mean/variance,
//! and in-sample accuracy — bundled into one report so callers (and the
//! experiment harness) can decide whether a fitted model is trustworthy
//! before wiring it into the alert pipeline.

use crate::arima::ArimaModel;
use crate::sarima::SarimaModel;
use crate::series::difference;
use crate::stats::{ljung_box, looks_white, mean, variance};
use serde::{Deserialize, Serialize};

/// Diagnostic summary of a fitted model's residuals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FitReport {
    /// Human-readable model name.
    pub model: String,
    /// Residual mean (should be ≈ 0).
    pub residual_mean: f64,
    /// Residual variance (≈ σ̂²).
    pub residual_variance: f64,
    /// Ljung–Box Q statistic at the chosen lag.
    pub ljung_box_q: f64,
    /// Lags used for the portmanteau test.
    pub lags: usize,
    /// True when every residual autocorrelation stays inside the
    /// ±2/√n band — the "residuals look like white noise" verdict.
    pub residuals_white: bool,
    /// Akaike information criterion of the fit.
    pub aic: f64,
    /// Observations the residuals were computed over.
    pub n: usize,
}

impl FitReport {
    /// Overall verdict: a usable model has near-zero-mean, white
    /// residuals.
    pub fn acceptable(&self) -> bool {
        self.residuals_white
            && self.residual_mean.abs() <= 3.0 * (self.residual_variance / self.n as f64).sqrt()
    }
}

/// Diagnose a fitted ARIMA model against the series it was fit on.
pub fn diagnose_arima(model: &ArimaModel, y: &[f64], lags: usize) -> FitReport {
    let (w, _) = difference(y, model.spec.d);
    let resid = model.residuals_differenced(&w);
    let start = model.phi.len().max(model.theta.len());
    let used = &resid[start..];
    FitReport {
        model: model.spec.to_string(),
        residual_mean: mean(used),
        residual_variance: variance(used),
        ljung_box_q: ljung_box(used, lags.min(used.len().saturating_sub(2)).max(1)),
        lags,
        residuals_white: looks_white(used, lags.min(used.len().saturating_sub(2)).max(1)),
        aic: model.aic(),
        n: used.len(),
    }
}

/// Diagnose a fitted seasonal ARIMA model.
pub fn diagnose_sarima(model: &SarimaModel, y: &[f64], lags: usize) -> FitReport {
    let (w1, _) = crate::sarima::seasonal_difference(y, model.spec.s, model.spec.sd);
    let (w, _) = difference(&w1, model.spec.d);
    let resid = model.residuals_differenced(&w);
    let start = model
        .phi
        .len()
        .max(model.theta.len())
        .max(model.sphi.len() * model.spec.s)
        .max(model.stheta.len() * model.spec.s);
    let used = &resid[start..];
    FitReport {
        model: model.spec.to_string(),
        residual_mean: mean(used),
        residual_variance: variance(used),
        ljung_box_q: ljung_box(used, lags.min(used.len().saturating_sub(2)).max(1)),
        lags,
        residuals_white: looks_white(used, lags.min(used.len().saturating_sub(2)).max(1)),
        aic: model.aic(),
        n: used.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arima::ArimaSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ar1(phi: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut y = vec![0.0];
        for _ in 0..n {
            let e: f64 = rng.gen_range(-0.5..0.5);
            let prev = *y.last().expect("non-empty");
            y.push(phi * prev + e);
        }
        y
    }

    #[test]
    fn correct_model_passes_diagnostics() {
        let y = ar1(0.7, 8_000, 1);
        let m = ArimaModel::fit(&y, ArimaSpec::new(1, 0, 0)).unwrap();
        let report = diagnose_arima(&m, &y, 10);
        assert!(report.residuals_white, "{report:?}");
        assert!(report.acceptable(), "{report:?}");
        assert!(report.residual_mean.abs() < 0.02);
        // σ² of uniform(-0.5, 0.5) = 1/12
        assert!((report.residual_variance - 1.0 / 12.0).abs() < 0.01);
    }

    #[test]
    fn underfitted_model_fails_diagnostics() {
        // AR(2) data fit with white-noise-only ARIMA(0,0,q=0 is rejected;
        // use an MA(1) which cannot absorb the AR(2) structure)
        let mut rng = StdRng::seed_from_u64(3);
        let mut y = vec![0.0, 0.0];
        for t in 2..8_000 {
            let e: f64 = rng.gen_range(-0.5..0.5);
            y.push(0.6 * y[t - 1] + 0.3 * y[t - 2] + e);
        }
        let m = ArimaModel::fit(&y, ArimaSpec::new(0, 0, 1)).unwrap();
        let report = diagnose_arima(&m, &y, 10);
        assert!(!report.residuals_white, "underfit must show in residuals");
        assert!(!report.acceptable());
    }

    #[test]
    fn diagnostics_rank_models_by_aic() {
        let y = ar1(0.7, 4_000, 5);
        let right = ArimaModel::fit(&y, ArimaSpec::new(1, 0, 0)).unwrap();
        let wrong = ArimaModel::fit(&y, ArimaSpec::new(0, 0, 1)).unwrap();
        let r1 = diagnose_arima(&right, &y, 10);
        let r2 = diagnose_arima(&wrong, &y, 10);
        assert!(r1.aic < r2.aic, "correct model should win on AIC");
    }

    #[test]
    fn sarima_diagnostics_on_seasonal_data() {
        use crate::generator::{weekly_traffic_trace, TraceConfig};
        use crate::sarima::{SarimaModel, SarimaSpec};
        let s = 24;
        let y = weekly_traffic_trace(&TraceConfig {
            len: 7 * s,
            samples_per_day: s,
            seed: 8,
        });
        let m = SarimaModel::fit(&y, SarimaSpec::new(1, 0, 1, 1, 1, 0, s)).unwrap();
        let report = diagnose_sarima(&m, &y, 12);
        assert!(report.n > 0);
        assert!(report.residual_variance > 0.0);
        assert!(report.model.contains("SARIMA"));
    }
}

//! # timeseries
//!
//! From-scratch time-series forecasting for the Sheriff reproduction
//! (ICPP'15, Sec. IV): ARIMA(p, d, q) with Box–Jenkins order selection,
//! the NARNET nonlinear autoregressive neural network, the dynamic
//! rolling-MSE model selector that combines them (Eqn. 14), and seeded
//! synthetic trace generators standing in for the paper's proprietary
//! ZopleCloud data-center traces.
//!
//! ```
//! use timeseries::arima::{ArimaModel, ArimaSpec};
//! use timeseries::generator::{weekly_traffic_trace, TraceConfig};
//!
//! let y = weekly_traffic_trace(&TraceConfig { len: 7 * 24, samples_per_day: 24, seed: 1 });
//! let model = ArimaModel::fit(&y[..120], ArimaSpec::new(1, 1, 1)).unwrap();
//! let forecast = model.forecast(&y[..120], 12);
//! assert_eq!(forecast.len(), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ar;
pub mod arima;
pub mod boxjenkins;
pub mod diagnostics;
pub mod generator;
pub mod holtwinters;
pub mod interval;
pub mod io;
pub mod linalg;
pub mod metrics;
pub mod narnet;
pub mod normalize;
pub mod sarima;
pub mod selector;
pub mod series;
pub mod stats;

pub use arima::{ArimaModel, ArimaSpec, FitError};
pub use boxjenkins::{select, select_seasonal, SelectionConfig};
pub use diagnostics::{diagnose_arima, diagnose_sarima, FitReport};
pub use holtwinters::{HoltWinters, HwConfig};
pub use interval::{first_alert_step, Forecast};
pub use narnet::{Narnet, NarnetConfig};
pub use normalize::MinMaxScaler;
pub use sarima::{SarimaModel, SarimaSpec};
pub use selector::{DynamicSelector, Predictor};

//! Forecast-accuracy metrics (the paper evaluates with prediction error /
//! minimum square error, Fig. 6–8).

/// Mean squared error between predictions and actuals.
pub fn mse(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len(), "length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(actual)
        .map(|(p, a)| (p - a).powi(2))
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error.
pub fn rmse(pred: &[f64], actual: &[f64]) -> f64 {
    mse(pred, actual).sqrt()
}

/// Mean absolute error.
pub fn mae(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len(), "length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean absolute percentage error (skips zero actuals).
pub fn mape(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len(), "length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (p, a) in pred.iter().zip(actual) {
        if a.abs() > 1e-12 {
            sum += ((p - a) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * sum / n as f64
    }
}

/// Per-point bias (prediction − actual), the "Bias"/"Prediction Error"
/// series plotted under Fig. 6–8.
pub fn bias(pred: &[f64], actual: &[f64]) -> Vec<f64> {
    assert_eq!(pred.len(), actual.len(), "length mismatch");
    pred.iter().zip(actual).map(|(p, a)| p - a).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_rmse_known() {
        let p = [1.0, 2.0, 3.0];
        let a = [1.0, 4.0, 3.0];
        assert!((mse(&p, &a) - 4.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&p, &a) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mae_and_bias() {
        let p = [2.0, 2.0];
        let a = [1.0, 3.0];
        assert_eq!(mae(&p, &a), 1.0);
        assert_eq!(bias(&p, &a), vec![1.0, -1.0]);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let p = [1.0, 110.0];
        let a = [0.0, 100.0];
        assert!((mape(&p, &a) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mse(&[], &[]), 0.0);
        assert_eq!(mae(&[], &[]), 0.0);
        assert_eq!(mape(&[], &[]), 0.0);
    }

    #[test]
    fn perfect_prediction_is_zero_error() {
        let y = [3.0, 1.0, 4.0];
        assert_eq!(mse(&y, &y), 0.0);
        assert_eq!(mape(&y, &y), 0.0);
    }
}

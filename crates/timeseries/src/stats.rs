//! Descriptive statistics for Box–Jenkins identification: autocovariance,
//! ACF, PACF (Durbin–Levinson), and the Ljung–Box portmanteau test used to
//! check residual whiteness.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(y: &[f64]) -> f64 {
    if y.is_empty() {
        0.0
    } else {
        y.iter().sum::<f64>() / y.len() as f64
    }
}

/// Population variance.
pub fn variance(y: &[f64]) -> f64 {
    if y.is_empty() {
        return 0.0;
    }
    let m = mean(y);
    y.iter().map(|v| (v - m).powi(2)).sum::<f64>() / y.len() as f64
}

/// Biased sample autocovariance at lags `0..=max_lag`
/// (`γ̂(k) = 1/n Σ (y_t − ȳ)(y_{t+k} − ȳ)`, the standard estimator which
/// guarantees a positive semi-definite autocovariance sequence).
pub fn autocovariance(y: &[f64], max_lag: usize) -> Vec<f64> {
    let n = y.len();
    assert!(max_lag < n, "max_lag must be < series length");
    let m = mean(y);
    (0..=max_lag)
        .map(|k| (0..n - k).map(|t| (y[t] - m) * (y[t + k] - m)).sum::<f64>() / n as f64)
        .collect()
}

/// Autocorrelation function at lags `0..=max_lag` (ρ(0) = 1).
pub fn acf(y: &[f64], max_lag: usize) -> Vec<f64> {
    let gamma = autocovariance(y, max_lag);
    let g0 = gamma[0];
    if g0 <= 0.0 {
        // constant series: no correlation structure
        let mut out = vec![0.0; max_lag + 1];
        out[0] = 1.0;
        return out;
    }
    gamma.iter().map(|g| g / g0).collect()
}

/// Partial autocorrelation function at lags `1..=max_lag` via the
/// Durbin–Levinson recursion. `pacf(y, m)[k-1]` is φ_kk.
pub fn pacf(y: &[f64], max_lag: usize) -> Vec<f64> {
    let rho = acf(y, max_lag);
    let mut phi_prev: Vec<f64> = Vec::new();
    let mut out = Vec::with_capacity(max_lag);
    for k in 1..=max_lag {
        let phi_kk = if k == 1 {
            rho[1]
        } else {
            let num = rho[k]
                - phi_prev
                    .iter()
                    .enumerate()
                    .map(|(j, p)| p * rho[k - 1 - j])
                    .sum::<f64>();
            let den = 1.0
                - phi_prev
                    .iter()
                    .enumerate()
                    .map(|(j, p)| p * rho[j + 1])
                    .sum::<f64>();
            if den.abs() < 1e-12 {
                0.0
            } else {
                num / den
            }
        };
        let mut phi_new = Vec::with_capacity(k);
        for j in 0..k - 1 {
            phi_new.push(phi_prev[j] - phi_kk * phi_prev[k - 2 - j]);
        }
        phi_new.push(phi_kk);
        out.push(phi_kk);
        phi_prev = phi_new;
    }
    out
}

/// Ljung–Box Q statistic over residual autocorrelations at lags
/// `1..=max_lag`. Large Q ⇒ residuals are not white noise. The caller
/// compares against a χ² quantile; we also expose a rough whiteness check.
pub fn ljung_box(residuals: &[f64], max_lag: usize) -> f64 {
    let n = residuals.len() as f64;
    let rho = acf(residuals, max_lag);
    n * (n + 2.0)
        * (1..=max_lag)
            .map(|k| rho[k] * rho[k] / (n - k as f64))
            .sum::<f64>()
}

/// Conservative whiteness heuristic: true when all |ρ(k)| for k ≥ 1 stay
/// within the ±2/√n large-sample band.
pub fn looks_white(residuals: &[f64], max_lag: usize) -> bool {
    let band = 2.0 / (residuals.len() as f64).sqrt();
    acf(residuals, max_lag)[1..].iter().all(|r| r.abs() <= band)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn mean_and_variance() {
        let y = [2.0, 4.0, 6.0];
        assert_eq!(mean(&y), 4.0);
        assert!((variance(&y) - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn acf_lag0_is_one() {
        let y = [1.0, 3.0, 2.0, 5.0, 4.0, 6.0];
        let r = acf(&y, 3);
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert!(r[1..].iter().all(|v| v.abs() <= 1.0 + 1e-12));
    }

    #[test]
    fn acf_of_constant_series() {
        let r = acf(&[5.0; 10], 3);
        assert_eq!(r[0], 1.0);
        assert!(r[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ar1_acf_decays_geometrically() {
        // y_t = 0.8 y_{t-1} + e_t has ρ(k) ≈ 0.8^k
        let mut rng = StdRng::seed_from_u64(42);
        let mut y = vec![0.0];
        for _ in 0..20_000 {
            let e: f64 = rng.gen_range(-1.0..1.0);
            let prev = *y.last().expect("non-empty");
            y.push(0.8 * prev + e);
        }
        let r = acf(&y, 3);
        assert!((r[1] - 0.8).abs() < 0.05, "rho1 = {}", r[1]);
        assert!((r[2] - 0.64).abs() < 0.07, "rho2 = {}", r[2]);
    }

    #[test]
    fn ar1_pacf_cuts_off_after_lag1() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut y = vec![0.0];
        for _ in 0..20_000 {
            let e: f64 = rng.gen_range(-1.0..1.0);
            let prev = *y.last().expect("non-empty");
            y.push(0.7 * prev + e);
        }
        let p = pacf(&y, 4);
        assert!((p[0] - 0.7).abs() < 0.05, "phi11 = {}", p[0]);
        for (k, v) in p[1..].iter().enumerate() {
            assert!(v.abs() < 0.05, "phi_{}{} = {v}", k + 2, k + 2);
        }
    }

    #[test]
    fn white_noise_passes_ljung_box_band() {
        let mut rng = StdRng::seed_from_u64(9);
        let e: Vec<f64> = (0..5_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        assert!(looks_white(&e, 10));
        // an AR(1) series must fail the same band
        let mut y = vec![0.0];
        for i in 0..4_999 {
            y.push(0.9 * y[i] + e[i]);
        }
        assert!(!looks_white(&y, 10));
        assert!(ljung_box(&y, 10) > ljung_box(&e, 10));
    }
}

//! Dynamic model selection (Sec. IV-B, Eqn. 14).
//!
//! Rather than committing to a single model, Sheriff maintains a pool of
//! fitted predictors (typically two ARIMA and two NARNET variants). At
//! each step it emits the prediction of the model with the lowest rolling
//! mean-square prediction error
//! `MSE_f(t, T_p) = (1/T_p) Σ_{i=t−T_p+1..t} ERROR_f(i)²` over the last
//! `T_p` observations.

use crate::arima::ArimaModel;
use crate::holtwinters::{HoltWinters, HwConfig};
use crate::narnet::Narnet;
use crate::sarima::SarimaModel;
use std::collections::VecDeque;

/// A fitted one-step predictor usable in the dynamic pool.
#[derive(Debug, Clone)]
pub enum Predictor {
    /// A fitted ARIMA model.
    Arima(ArimaModel),
    /// A trained NARNET.
    Narnet(Narnet),
    /// A fitted seasonal ARIMA model.
    Sarima(SarimaModel),
    /// Holt–Winters smoothing, re-smoothed over the full history at each
    /// prediction (O(n) per call; exact online equivalence).
    HoltWinters(HwConfig),
}

impl Predictor {
    /// One-step-ahead prediction from the observed history.
    pub fn predict_next(&self, history: &[f64]) -> f64 {
        match self {
            Predictor::Arima(m) => m.forecast(history, 1)[0],
            Predictor::Narnet(n) => n.predict_next(history),
            Predictor::Sarima(m) => m.forecast(history, 1)[0],
            Predictor::HoltWinters(cfg) => {
                if history.len() >= 2 * cfg.season {
                    HoltWinters::fit(history, *cfg).predict_next()
                } else {
                    // not enough seasons yet: persistence fallback
                    history.last().copied().unwrap_or(0.0)
                }
            }
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> String {
        match self {
            Predictor::Arima(m) => m.spec.to_string(),
            Predictor::Narnet(n) => format!("NARNET({},·)", n.lags()),
            Predictor::Sarima(m) => m.spec.to_string(),
            Predictor::HoltWinters(cfg) => format!("HoltWinters(s={})", cfg.season),
        }
    }
}

/// The combined model: a pool plus rolling error bookkeeping.
#[derive(Debug, Clone)]
pub struct DynamicSelector {
    models: Vec<Predictor>,
    window: usize,
    errors: Vec<VecDeque<f64>>,
}

impl DynamicSelector {
    /// Pool with rolling window `T_p` (the paper's `T_p` period).
    pub fn new(models: Vec<Predictor>, window: usize) -> Self {
        assert!(!models.is_empty(), "need at least one model");
        assert!(window >= 1, "window must be positive");
        let n = models.len();
        Self {
            models,
            window,
            errors: vec![VecDeque::new(); n],
        }
    }

    /// Rolling MSE_f(t, T_p) of model `f`; `INFINITY` before any errors are
    /// recorded so untested models are only used when nothing has history.
    pub fn rolling_mse(&self, f: usize) -> f64 {
        let e = &self.errors[f];
        if e.is_empty() {
            f64::INFINITY
        } else {
            e.iter().map(|x| x * x).sum::<f64>() / e.len() as f64
        }
    }

    /// Index of the model the selector would trust right now.
    pub fn best_model(&self) -> usize {
        let any_history = self.errors.iter().any(|e| !e.is_empty());
        if !any_history {
            return 0;
        }
        (0..self.models.len())
            .min_by(|&a, &b| {
                self.rolling_mse(a)
                    .partial_cmp(&self.rolling_mse(b))
                    .expect("MSE is never NaN")
            })
            .expect("non-empty pool")
    }

    /// Predict the next value of `history` using the currently-best model.
    /// Returns (prediction, model index used).
    pub fn predict_next(&self, history: &[f64]) -> (f64, usize) {
        let best = self.best_model();
        (self.models[best].predict_next(history), best)
    }

    /// Record the realised value for the step just predicted; every model's
    /// own prediction error enters its rolling window.
    pub fn observe(&mut self, history: &[f64], actual: f64) {
        for (f, model) in self.models.iter().enumerate() {
            let p = model.predict_next(history);
            let e = &mut self.errors[f];
            e.push_back(actual - p);
            if e.len() > self.window {
                e.pop_front();
            }
        }
    }

    /// Run the full open-loop evaluation protocol over `series[split..]`:
    /// predict each point with the currently-best model, then reveal the
    /// actual. Returns the combined prediction series and, per point, the
    /// index of the model used.
    pub fn run(&mut self, series: &[f64], split: usize) -> (Vec<f64>, Vec<usize>) {
        assert!(split < series.len(), "split beyond series end");
        let mut preds = Vec::with_capacity(series.len() - split);
        let mut used = Vec::with_capacity(series.len() - split);
        for t in split..series.len() {
            let history = &series[..t];
            let (p, f) = self.predict_next(history);
            preds.push(p);
            used.push(f);
            self.observe(history, series[t]);
        }
        (preds, used)
    }

    /// Labels of the pool models, in index order.
    pub fn labels(&self) -> Vec<String> {
        self.models.iter().map(Predictor::label).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arima::ArimaSpec;
    use crate::metrics::mse;
    use crate::narnet::NarnetConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A series whose first half is linear AR(1) and second half is a
    /// strongly nonlinear threshold process: no single model wins on both.
    fn mixed_series(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut y: Vec<f64> = vec![0.1];
        for t in 1..n {
            let e: f64 = rng.gen_range(-0.05..0.05);
            let prev = y[t - 1];
            let v = if t < n / 2 {
                0.8 * prev + e
            } else if prev > 0.0 {
                0.9 * prev - 0.5 + e
            } else {
                -0.8 * prev + 0.4 + e
            };
            y.push(v);
        }
        y
    }

    fn pool(train: &[f64]) -> Vec<Predictor> {
        let arima = ArimaModel::fit(train, ArimaSpec::new(1, 0, 1)).unwrap();
        let nn = Narnet::fit(
            train,
            NarnetConfig {
                lags: 6,
                hidden: 12,
                epochs: 120,
                patience: 15,
                ..NarnetConfig::default()
            },
        );
        vec![Predictor::Arima(arima), Predictor::Narnet(nn)]
    }

    #[test]
    fn selector_at_least_matches_single_models() {
        let y = mixed_series(1_000, 42);
        let split = 700;
        let models = pool(&y[..split]);
        // individual model errors
        let single: Vec<f64> = models
            .iter()
            .map(|m| {
                let preds: Vec<f64> = (split..y.len()).map(|t| m.predict_next(&y[..t])).collect();
                mse(&preds, &y[split..])
            })
            .collect();
        let mut sel = DynamicSelector::new(models, 20);
        let (preds, _) = sel.run(&y, split);
        let combined = mse(&preds, &y[split..]);
        let best_single = single.iter().cloned().fold(f64::INFINITY, f64::min);
        // the combined model must be competitive with the best single model
        assert!(
            combined <= best_single * 1.25,
            "combined {combined} vs best single {best_single}"
        );
    }

    #[test]
    fn selector_switches_models_on_mixed_data() {
        let y = mixed_series(1_000, 7);
        let split = 400; // test spans the regime change at 500
        let models = pool(&y[..split]);
        let mut sel = DynamicSelector::new(models, 15);
        let (_, used) = sel.run(&y, split);
        let distinct: std::collections::HashSet<_> = used.iter().collect();
        assert!(distinct.len() > 1, "selector never switched models");
    }

    #[test]
    fn rolling_window_bounds_error_history() {
        let y = mixed_series(300, 3);
        let models = pool(&y[..250]);
        let mut sel = DynamicSelector::new(models, 5);
        let (_, _) = sel.run(&y, 250);
        for f in 0..2 {
            assert!(sel.errors[f].len() <= 5);
            assert!(sel.rolling_mse(f).is_finite());
        }
    }

    #[test]
    fn untested_pool_uses_first_model() {
        let y = mixed_series(300, 9);
        let models = pool(&y[..250]);
        let sel = DynamicSelector::new(models, 5);
        assert_eq!(sel.best_model(), 0);
        assert_eq!(sel.rolling_mse(0), f64::INFINITY);
    }

    #[test]
    fn seasonal_predictors_join_the_pool() {
        use crate::generator::{weekly_traffic_trace, TraceConfig};
        let s = 24;
        let y = weekly_traffic_trace(&TraceConfig {
            len: 7 * s,
            samples_per_day: s,
            seed: 9,
        });
        let split = 5 * s;
        let mut models = vec![Predictor::HoltWinters(
            crate::holtwinters::HwConfig::with_season(s),
        )];
        if let Ok(m) = crate::sarima::SarimaModel::fit(
            &y[..split],
            crate::sarima::SarimaSpec::new(1, 0, 0, 1, 1, 0, s),
        ) {
            models.push(Predictor::Sarima(m));
        }
        assert!(models.len() >= 2);
        let labels: Vec<String> = models.iter().map(Predictor::label).collect();
        assert!(labels[0].contains("HoltWinters"));
        assert!(labels[1].contains("SARIMA"));
        let mut sel = DynamicSelector::new(models, 12);
        let (preds, _) = sel.run(&y, split);
        let m = crate::metrics::mse(&preds, &y[split..]);
        // seasonal pool must beat predicting the global mean
        let mean = crate::stats::mean(&y[..split]);
        let mean_mse = crate::metrics::mse(&vec![mean; y.len() - split], &y[split..]);
        assert!(m < mean_mse, "pool {m} vs mean {mean_mse}");
    }

    #[test]
    fn holtwinters_predictor_falls_back_when_short() {
        let p = Predictor::HoltWinters(crate::holtwinters::HwConfig::with_season(50));
        assert_eq!(p.predict_next(&[3.0, 4.0]), 4.0);
        assert_eq!(p.predict_next(&[]), 0.0);
    }

    #[test]
    fn labels_name_both_model_families() {
        let y = mixed_series(300, 1);
        let sel = DynamicSelector::new(pool(&y[..250]), 5);
        let labels = sel.labels();
        assert!(labels[0].contains("ARIMA"));
        assert!(labels[1].contains("NARNET"));
    }
}

//! Lag and difference operators over raw series (Sec. IV-B).
//!
//! The paper defines the lag operator `L^j Y_t = Y_{t−j}` and the lag-1
//! difference `∇Y_t = Y_t − Y_{t−1}`, applied `d` times to render a series
//! stationary before ARMA fitting, then inverted to undifference the
//! forecasts back to the original scale (Eqn. 12's `(∇^d)^{-1}`).

/// Apply the lag-1 difference operator once: output length is `n − 1`.
pub fn difference_once(y: &[f64]) -> Vec<f64> {
    y.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Apply `∇^d`: difference `d` times. Returns the differenced series and
/// the *seed values* (the last original value at each level) needed to
/// invert the transform.
pub fn difference(y: &[f64], d: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(y.len() > d, "series too short to difference {d} times");
    let mut cur = y.to_vec();
    let mut seeds = Vec::with_capacity(d);
    for _ in 0..d {
        seeds.push(*cur.last().expect("non-empty by assertion"));
        cur = difference_once(&cur);
    }
    (cur, seeds)
}

/// Invert `∇^d` on a block of *future* values: given forecasts of the
/// differenced series and the seeds captured by [`difference`], reconstruct
/// forecasts on the original scale.
pub fn undifference(forecasts: &[f64], seeds: &[f64]) -> Vec<f64> {
    let mut cur = forecasts.to_vec();
    // seeds were pushed outermost-first; integrate innermost-first
    for &seed in seeds.iter().rev() {
        let mut acc = seed;
        for v in cur.iter_mut() {
            acc += *v;
            *v = acc;
        }
    }
    cur
}

/// Build a lagged design matrix: row `t` is `[y_{t−1}, …, y_{t−p}]` for
/// each `t in p..n`, paired with the targets `y_t`. Used by AR and NARNET
/// fitting.
pub fn lag_matrix(y: &[f64], p: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    assert!(p >= 1 && y.len() > p, "need more observations than lags");
    let mut rows = Vec::with_capacity(y.len() - p);
    let mut targets = Vec::with_capacity(y.len() - p);
    for t in p..y.len() {
        let row: Vec<f64> = (1..=p).map(|j| y[t - j]).collect();
        rows.push(row);
        targets.push(y[t]);
    }
    (rows, targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difference_once_known() {
        assert_eq!(difference_once(&[1.0, 4.0, 9.0, 16.0]), vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn double_difference_of_quadratic_is_constant() {
        let y: Vec<f64> = (0..8).map(|i| (i * i) as f64).collect();
        let (dd, seeds) = difference(&y, 2);
        assert_eq!(seeds.len(), 2);
        assert!(dd.iter().all(|&v| (v - 2.0).abs() < 1e-12), "{dd:?}");
    }

    #[test]
    fn undifference_inverts_difference_d1() {
        let y = [5.0, 7.0, 6.0, 9.0, 12.0];
        let (dy, seeds) = difference(&y, 1);
        // treat the last 2 differenced points as "forecasts" of themselves:
        // undifferencing the whole differenced tail must reproduce the tail
        let rebuilt = undifference(&dy, &[y[0]]);
        assert_eq!(rebuilt, y[1..].to_vec());
        assert_eq!(seeds, vec![12.0]);
    }

    #[test]
    fn undifference_inverts_difference_d2() {
        let y: Vec<f64> = vec![1.0, 3.0, 8.0, 17.0, 31.0, 52.0];
        let (dd, _) = difference(&y, 2);
        // seeds for forward forecasting: last value at each level
        // level0 last = 52, level1 last = 52-31 = 21
        // forecast the "next" double-diff value = dd pattern; verify algebra:
        let next_dd = 2.0; // arbitrary
        let out = undifference(&[next_dd], &[52.0, 21.0]);
        // next level1 = 21 + 2 = 23; next level0 = 52 + 23 = 75
        assert_eq!(out, vec![75.0]);
        assert_eq!(dd.len(), 4);
    }

    #[test]
    fn multi_step_undifference_accumulates() {
        let out = undifference(&[1.0, 1.0, 1.0], &[10.0]);
        assert_eq!(out, vec![11.0, 12.0, 13.0]);
    }

    #[test]
    fn lag_matrix_shapes_and_values() {
        let y = [1.0, 2.0, 3.0, 4.0, 5.0];
        let (rows, targets) = lag_matrix(&y, 2);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![2.0, 1.0]); // y_{t-1}, y_{t-2} for t = 2
        assert_eq!(targets, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "series too short")]
    fn difference_rejects_short_series() {
        difference(&[1.0], 1);
    }
}

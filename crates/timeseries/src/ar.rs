//! Pure autoregressive estimation: Yule–Walker equations solved with the
//! Levinson recursion. Used directly for AR(p) models and as the first
//! stage of the Hannan–Rissanen ARMA estimator.

use crate::linalg::solve_toeplitz;
use crate::stats::autocovariance;

/// Result of fitting an AR(p) process to a (stationary) series.
#[derive(Debug, Clone)]
pub struct ArFit {
    /// AR coefficients φ_1..φ_p.
    pub phi: Vec<f64>,
    /// Innovation variance σ².
    pub sigma2: f64,
    /// Series mean (the model is fit on the demeaned series).
    pub mean: f64,
}

/// Fit AR(p) by Yule–Walker. Returns `None` when the autocovariance
/// sequence is degenerate (e.g. constant series).
pub fn fit_ar(y: &[f64], p: usize) -> Option<ArFit> {
    assert!(p >= 1, "AR order must be at least 1");
    assert!(y.len() > p + 1, "series too short for AR({p})");
    let gamma = autocovariance(y, p);
    if gamma[0] <= 1e-12 {
        return None;
    }
    let phi = solve_toeplitz(&gamma[..p], &gamma[1..=p])?;
    let sigma2 = gamma[0]
        - phi
            .iter()
            .zip(&gamma[1..=p])
            .map(|(f, g)| f * g)
            .sum::<f64>();
    Some(ArFit {
        phi,
        sigma2: sigma2.max(1e-12),
        mean: crate::stats::mean(y),
    })
}

impl ArFit {
    /// In-sample one-step residuals `e_t = y_t − ŷ_t` (conditional on the
    /// first `p` observations; those entries are zero).
    pub fn residuals(&self, y: &[f64]) -> Vec<f64> {
        let p = self.phi.len();
        let mut out = vec![0.0; y.len()];
        for t in p..y.len() {
            let pred = self.mean
                + self
                    .phi
                    .iter()
                    .enumerate()
                    .map(|(j, f)| f * (y[t - 1 - j] - self.mean))
                    .sum::<f64>();
            out[t] = y[t] - pred;
        }
        out
    }

    /// One-step-ahead prediction given the most recent observations
    /// (`history` on the same scale the model was fit on).
    pub fn predict_next(&self, history: &[f64]) -> f64 {
        let p = self.phi.len();
        assert!(history.len() >= p, "need at least p observations");
        self.mean
            + self
                .phi
                .iter()
                .enumerate()
                .map(|(j, f)| f * (history[history.len() - 1 - j] - self.mean))
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ar_series(phi: &[f64], n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = phi.len();
        let mut y = vec![0.0; p];
        for _ in 0..n {
            let e: f64 = rng.gen_range(-0.5..0.5);
            let t = y.len();
            let v: f64 = phi
                .iter()
                .enumerate()
                .map(|(j, f)| f * y[t - 1 - j])
                .sum::<f64>()
                + e;
            y.push(v);
        }
        y
    }

    #[test]
    fn recovers_ar1_coefficient() {
        let y = ar_series(&[0.75], 30_000, 3);
        let fit = fit_ar(&y, 1).unwrap();
        assert!((fit.phi[0] - 0.75).abs() < 0.03, "phi = {:?}", fit.phi);
    }

    #[test]
    fn recovers_ar2_coefficients() {
        let y = ar_series(&[0.5, 0.3], 50_000, 11);
        let fit = fit_ar(&y, 2).unwrap();
        assert!((fit.phi[0] - 0.5).abs() < 0.05, "phi = {:?}", fit.phi);
        assert!((fit.phi[1] - 0.3).abs() < 0.05, "phi = {:?}", fit.phi);
    }

    #[test]
    fn sigma2_close_to_innovation_variance() {
        // uniform(-0.5, 0.5) has variance 1/12
        let y = ar_series(&[0.6], 40_000, 5);
        let fit = fit_ar(&y, 1).unwrap();
        assert!(
            (fit.sigma2 - 1.0 / 12.0).abs() < 0.01,
            "sigma2 = {}",
            fit.sigma2
        );
    }

    #[test]
    fn residuals_are_whiter_than_series() {
        let y = ar_series(&[0.8], 5_000, 7);
        let fit = fit_ar(&y, 1).unwrap();
        let resid = fit.residuals(&y);
        let r_res = crate::stats::acf(&resid[1..], 1)[1].abs();
        let r_y = crate::stats::acf(&y, 1)[1].abs();
        assert!(r_res < r_y / 4.0, "resid acf {r_res}, series acf {r_y}");
    }

    #[test]
    fn predict_next_uses_latest_values() {
        let fit = ArFit {
            phi: vec![0.5],
            sigma2: 1.0,
            mean: 0.0,
        };
        assert_eq!(fit.predict_next(&[2.0, 4.0]), 2.0);
    }

    #[test]
    fn constant_series_returns_none() {
        assert!(fit_ar(&[3.0; 100], 2).is_none());
    }
}

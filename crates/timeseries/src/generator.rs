//! Synthetic trace generation — the ZopleCloud substitute (DESIGN.md §1).
//!
//! The paper's prediction study (Sec. VI-A, Fig. 3–5) uses proprietary
//! traces from a local data-center provider: weekly switch traffic, VM CPU
//! utilisation and disk-I/O speed. These generators produce seeded,
//! reproducible series with the same qualitative structure: strong diurnal
//! and weekly periodicity (the "explicit diurnal traffic pattern" of
//! telecom workloads \[24\]), autocorrelated noise, and bursts. A
//! threshold-autoregressive generator supplies the nonlinear regime where
//! NARNET outperforms ARIMA (Fig. 7).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shared shape parameters for the periodic generators.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of samples to generate.
    pub len: usize,
    /// Samples per day (e.g. 144 for 10-minute sampling).
    pub samples_per_day: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TraceConfig {
    /// One day at 10-minute sampling.
    pub fn one_day(seed: u64) -> Self {
        Self {
            len: 144,
            samples_per_day: 144,
            seed,
        }
    }

    /// One week at 2-hour sampling (84 points/week, like Fig. 5's scale).
    pub fn one_week(seed: u64) -> Self {
        Self {
            len: 7 * 12,
            samples_per_day: 12,
            seed,
        }
    }
}

/// AR(1) noise process shared by the generators.
fn ar1_noise(rng: &mut StdRng, n: usize, phi: f64, scale: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut prev = 0.0;
    for _ in 0..n {
        let e: f64 = rng.gen_range(-1.0..1.0);
        prev = phi * prev + scale * e;
        out.push(prev);
    }
    out
}

/// CPU-utilisation trace in percent (Fig. 3): diurnal sinusoid around a
/// business-hours plateau, AR(1) noise, sporadic load spikes; clamped to
/// [0, 100].
pub fn cpu_trace(cfg: &TraceConfig) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let noise = ar1_noise(&mut rng, cfg.len, 0.6, 6.0);
    let spd = cfg.samples_per_day as f64;
    // different tenants peak at different hours: each trace gets its own
    // diurnal phase, so co-located workloads do not surge in lock-step
    let phase_offset: f64 = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
    (0..cfg.len)
        .map(|t| {
            let day_phase = 2.0 * std::f64::consts::PI * (t as f64) / spd + phase_offset;
            let base = 45.0 + 25.0 * (day_phase - 1.2).sin();
            let spike = if rng.gen_bool(0.03) {
                rng.gen_range(15.0..40.0)
            } else {
                0.0
            };
            (base + noise[t] + spike).clamp(0.0, 100.0)
        })
        .collect()
}

/// Disk-I/O rate trace in MB (Fig. 4): low baseline with heavy bursts
/// (batch jobs, backups) and mild periodicity; clamped to [0, 1200].
pub fn disk_io_trace(cfg: &TraceConfig) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x10));
    let noise = ar1_noise(&mut rng, cfg.len, 0.4, 40.0);
    let spd = cfg.samples_per_day as f64;
    let mut burst_left = 0usize;
    let mut burst_height = 0.0;
    (0..cfg.len)
        .map(|t| {
            let day_phase = 2.0 * std::f64::consts::PI * (t as f64) / spd;
            let base = 180.0 + 90.0 * (day_phase + 0.5).sin();
            if burst_left == 0 && rng.gen_bool(0.05) {
                burst_left = rng.gen_range(2..6);
                burst_height = rng.gen_range(300.0..900.0);
            }
            let burst = if burst_left > 0 {
                burst_left -= 1;
                burst_height
            } else {
                0.0
            };
            (base + noise[t] + burst).clamp(0.0, 1200.0)
        })
        .collect()
}

/// Weekly switch-traffic trace in MB (Fig. 5): daily sinusoid whose
/// amplitude is modulated by a weekday/weekend factor, plus AR(1) noise —
/// "the weekly traffic have its peaks and troughs regularly" (Sec. VI-A).
pub fn weekly_traffic_trace(cfg: &TraceConfig) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x20));
    let noise = ar1_noise(&mut rng, cfg.len, 0.7, 4.0);
    let spd = cfg.samples_per_day as f64;
    (0..cfg.len)
        .map(|t| {
            let day = (t as f64 / spd).floor() as usize % 7;
            let weekday_factor = if day < 5 { 1.0 } else { 0.55 };
            let day_phase = 2.0 * std::f64::consts::PI * (t as f64) / spd;
            let base = 50.0 + weekday_factor * 35.0 * (day_phase - 1.0).sin().max(-0.4);
            (base + noise[t]).max(0.0)
        })
        .collect()
}

/// Nonlinear (threshold-autoregressive) trace where the dynamics switch
/// regime on the sign of the previous value — linear ARIMA cannot capture
/// this, NARNET can (Fig. 7's motivation).
pub fn nonlinear_trace(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x30));
    let mut y = Vec::with_capacity(len);
    let mut prev: f64 = 0.2;
    for t in 0..len {
        let e: f64 = rng.gen_range(-0.08..0.08);
        let v = if prev > 0.0 {
            0.85 * prev - 0.45
        } else {
            -0.75 * prev + 0.35
        };
        prev = v + e + 0.1 * ((t as f64) * 0.05).sin();
        y.push(prev);
    }
    y
}

/// A memory-utilisation trace in [0, 1]: slow random walk with mean
/// reversion (memory changes slower than CPU). Used by the simulator's
/// workload profiles.
pub fn memory_trace(cfg: &TraceConfig) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x40));
    let mut level: f64 = rng.gen_range(0.3..0.6);
    (0..cfg.len)
        .map(|_| {
            let e: f64 = rng.gen_range(-0.02..0.02);
            level += e + 0.01 * (0.5 - level);
            level = level.clamp(0.0, 1.0);
            level
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::acf;

    #[test]
    fn cpu_trace_in_percent_range() {
        let y = cpu_trace(&TraceConfig::one_day(1));
        assert_eq!(y.len(), 144);
        assert!(y.iter().all(|&v| (0.0..=100.0).contains(&v)));
        // must actually vary
        assert!(crate::stats::variance(&y) > 10.0);
    }

    #[test]
    fn disk_io_trace_bursty_and_bounded() {
        let cfg = TraceConfig {
            len: 600,
            samples_per_day: 144,
            seed: 2,
        };
        let y = disk_io_trace(&cfg);
        assert!(y.iter().all(|&v| (0.0..=1200.0).contains(&v)));
        let max = y.iter().cloned().fold(0.0, f64::max);
        let mean = crate::stats::mean(&y);
        assert!(max > 2.0 * mean, "no bursts: max {max}, mean {mean}");
    }

    #[test]
    fn weekly_traffic_has_strong_daily_periodicity() {
        let cfg = TraceConfig {
            len: 7 * 24,
            samples_per_day: 24,
            seed: 3,
        };
        let y = weekly_traffic_trace(&cfg);
        let r = acf(&y, 24);
        assert!(r[24] > 0.3, "daily-lag autocorrelation too weak: {}", r[24]);
    }

    #[test]
    fn weekend_traffic_lower_than_weekday() {
        let cfg = TraceConfig {
            len: 7 * 48,
            samples_per_day: 48,
            seed: 4,
        };
        let y = weekly_traffic_trace(&cfg);
        let weekday_peak: f64 = y[..5 * 48].iter().cloned().fold(0.0, f64::max);
        let weekend_peak: f64 = y[5 * 48..].iter().cloned().fold(0.0, f64::max);
        assert!(
            weekend_peak < weekday_peak,
            "{weekend_peak} !< {weekday_peak}"
        );
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let cfg = TraceConfig::one_day(9);
        assert_eq!(cpu_trace(&cfg), cpu_trace(&cfg));
        assert_ne!(
            cpu_trace(&cfg),
            cpu_trace(&TraceConfig::one_day(10)),
            "different seeds must differ"
        );
    }

    #[test]
    fn nonlinear_trace_is_bounded_and_nonlinear() {
        let y = nonlinear_trace(2_000, 5);
        assert!(y.iter().all(|v| v.abs() < 5.0));
        // regime switching keeps the lag-1 ACF well below an AR(1) with
        // comparable variance
        let r = acf(&y, 2);
        assert!(r[1].abs() < 0.9);
    }

    #[test]
    fn memory_trace_in_unit_interval() {
        let cfg = TraceConfig::one_day(6);
        let y = memory_trace(&cfg);
        assert!(y.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}

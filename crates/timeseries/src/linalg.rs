//! Minimal dense linear algebra used by the ARIMA estimators and NARNET.
//!
//! The forecasting stack needs only small solves (≤ a few hundred
//! unknowns): Toeplitz systems for Yule–Walker, normal equations for the
//! Hannan–Rissanen regression, and dense matrix products for the neural
//! network. Implementing these ~200 lines keeps the reproduction free of
//! external math crates (see DESIGN.md §5).

use serde::{Deserialize, Serialize};

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Self { rows, cols, data }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow one row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop contiguous in both
        // `other` and `out` rows (cache-friendly for row-major data).
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (c, &o) in crow.iter_mut().zip(orow) {
                    *c += a * o;
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum::<f64>())
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Solve `self * x = b` with LU decomposition and partial pivoting.
    /// Returns `None` when the matrix is (numerically) singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve needs a square matrix");
        assert_eq!(self.rows, b.len(), "rhs dimension mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();

        for col in 0..n {
            // pivot
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if pivot != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot * n + c);
                }
                x.swap(col, pivot);
            }
            // eliminate
            let d = a[col * n + col];
            for r in (col + 1)..n {
                let f = a[r * n + col] / d;
                if f == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= f * a[col * n + c];
                }
                x[r] -= f * x[col];
            }
        }
        // back substitution
        for col in (0..n).rev() {
            let mut v = x[col];
            for c in (col + 1)..n {
                v -= a[col * n + c] * x[c];
            }
            x[col] = v / a[col * n + col];
        }
        Some(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Ordinary least squares: find `beta` minimising `‖X·beta − y‖²` via the
/// normal equations with a small ridge term for numerical stability.
/// Returns `None` when the system is degenerate.
pub fn least_squares(x: &Matrix, y: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(x.rows(), y.len(), "row count must match rhs");
    let xt = x.transpose();
    let mut xtx = xt.matmul(x);
    // Tikhonov regularisation keeps near-collinear lag regressors solvable.
    let ridge = 1e-8;
    for i in 0..xtx.rows() {
        xtx[(i, i)] += ridge;
    }
    let xty = xt.matvec(y);
    xtx.solve(&xty)
}

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Solve a symmetric Toeplitz system `T x = b` where `T[i][j] = r[|i−j|]`,
/// using the Levinson recursion in O(n²). Used by Yule–Walker. Returns
/// `None` when the recursion breaks down (non-positive-definite `r`).
pub fn solve_toeplitz(r: &[f64], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    assert!(r.len() >= n, "need autocovariances up to lag n-1");
    if n == 0 {
        return Some(Vec::new());
    }
    if r[0].abs() < 1e-12 {
        return None;
    }
    // Levinson–Durbin for general RHS (Golub & Van Loan §4.7).
    let mut x = vec![b[0] / r[0]];
    let mut y = vec![-r[1.min(r.len() - 1)] / r[0]]; // backward vector
    for k in 1..n {
        // beta = prediction error of the order-k Szegő recursion
        let mut beta = r[0];
        for (i, yi) in y.iter().enumerate() {
            beta += r[i + 1] * yi;
        }
        if beta.abs() < 1e-12 {
            return None;
        }
        // update solution x
        let mut mu = b[k];
        for (i, xi) in x.iter().enumerate() {
            mu -= r[k - i] * xi;
        }
        let mu = mu / beta;
        for (i, xi) in x.iter_mut().enumerate() {
            *xi += mu * y[k - 1 - i];
        }
        x.push(mu);
        if k == n - 1 {
            break;
        }
        // update backward vector y
        let mut gamma = -r[k + 1];
        for (i, yi) in y.iter().enumerate() {
            gamma -= r[k - i] * yi;
        }
        let gamma = gamma / beta;
        let old = y.clone();
        for (i, yi) in y.iter_mut().enumerate() {
            *yi += gamma * old[k - 1 - i];
        }
        y.push(gamma);
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        approx(c.data(), &[58.0, 64.0, 139.0, 154.0], 1e-12);
    }

    #[test]
    fn matvec_and_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        approx(&a.matvec(&[1.0, 0.0, -1.0]), &[-2.0, -2.0], 1e-12);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t[(2, 0)], 3.0);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        approx(&x, &[1.0, 3.0], 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // zero on the diagonal forces a row swap
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        approx(&x, &[3.0, 2.0], 1e-12);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn least_squares_recovers_line() {
        // y = 3 + 2x with exact data
        let n = 20;
        let mut xd = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let xi = i as f64;
            xd.extend_from_slice(&[1.0, xi]);
            y.push(3.0 + 2.0 * xi);
        }
        let x = Matrix::from_vec(n, 2, xd);
        let beta = least_squares(&x, &y).unwrap();
        approx(&beta, &[3.0, 2.0], 1e-5);
    }

    #[test]
    fn toeplitz_matches_dense_solve() {
        let r = [4.0, 1.0, 0.5, 0.25];
        let b = [1.0, 2.0, 3.0, 4.0];
        let n = 4;
        let mut dense = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                dense[(i, j)] = r[i.abs_diff(j)];
            }
        }
        let expect = dense.solve(&b).unwrap();
        let got = solve_toeplitz(&r, &b).unwrap();
        approx(&got, &expect, 1e-9);
    }

    #[test]
    fn toeplitz_size_one() {
        let got = solve_toeplitz(&[2.0], &[4.0]).unwrap();
        approx(&got, &[2.0], 1e-12);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}

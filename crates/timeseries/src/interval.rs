//! Forecast intervals. Sec. IV-B: "each time we should obtain a forecast
//! range of the prediction result, we can use the method … to decide the
//! predicted value" — the MMSE forecast comes with a variance, and the
//! pre-alert rule can fire on the interval's upper edge rather than the
//! point estimate (earlier, more conservative alerts).
//!
//! For an ARMA process written as `Y_t = μ + Σ ψ_j Z_{t−j}` (the MA(∞)
//! expansion), the h-step forecast error variance is
//! `σ² · Σ_{j<h} ψ_j²`; differencing is handled by integrating the ψ
//! weights.

use crate::arima::ArimaModel;
use serde::{Deserialize, Serialize};

/// A point forecast with a symmetric confidence band.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Forecast {
    /// MMSE point estimate.
    pub mean: f64,
    /// Lower edge of the band.
    pub lower: f64,
    /// Upper edge of the band.
    pub upper: f64,
    /// Forecast standard error.
    pub std_error: f64,
}

/// Compute the ψ (impulse-response) weights of an ARMA(p, q) model:
/// `ψ_0 = 1`, `ψ_j = θ_j + Σ_{i=1..min(j,p)} φ_i ψ_{j−i}`.
pub fn psi_weights(phi: &[f64], theta: &[f64], n: usize) -> Vec<f64> {
    let mut psi = Vec::with_capacity(n);
    psi.push(1.0);
    for j in 1..n {
        let mut v = if j <= theta.len() { theta[j - 1] } else { 0.0 };
        for (i, &f) in phi.iter().enumerate() {
            let lag = j as i64 - (i as i64 + 1);
            if lag >= 0 {
                v += f * psi[lag as usize];
            }
        }
        psi.push(v);
    }
    psi
}

/// Integrate ψ weights once per differencing order: the forecast of the
/// original series is a cumulative sum of forecasts of the differenced
/// series, so its error weights are partial sums of the inner weights.
fn integrate(psi: &[f64], d: usize) -> Vec<f64> {
    let mut cur = psi.to_vec();
    for _ in 0..d {
        let mut acc = 0.0;
        for v in cur.iter_mut() {
            acc += *v;
            *v = acc;
        }
    }
    cur
}

impl ArimaModel {
    /// MMSE forecasts with `z`-standard-error bands (z = 1.96 for 95 %).
    ///
    /// Combines [`ArimaModel::forecast`] with the ψ-weight variance
    /// `Var[e_{t+h}] = σ̂² Σ_{j<h} ψ̃_j²` where ψ̃ are the `d`-integrated
    /// weights.
    pub fn forecast_with_interval(&self, history: &[f64], horizon: usize, z: f64) -> Vec<Forecast> {
        assert!(z >= 0.0, "band width must be non-negative");
        let means = self.forecast(history, horizon);
        let psi = integrate(&psi_weights(&self.phi, &self.theta, horizon), self.spec.d);
        let mut cum = 0.0;
        means
            .into_iter()
            .zip(psi)
            .map(|(mean, w)| {
                cum += w * w;
                let se = (self.sigma2 * cum).sqrt();
                Forecast {
                    mean,
                    lower: mean - z * se,
                    upper: mean + z * se,
                    std_error: se,
                }
            })
            .collect()
    }
}

/// The conservative pre-alert rule: alert when the *upper* edge of the
/// h-step forecast band crosses the threshold. Returns the first step (1-
/// based) at which that happens.
pub fn first_alert_step(forecasts: &[Forecast], threshold: f64) -> Option<usize> {
    forecasts
        .iter()
        .position(|f| f.upper > threshold)
        .map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arima::{ArimaModel, ArimaSpec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ar1(phi: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut y = vec![0.0];
        for _ in 0..n {
            let e: f64 = rng.gen_range(-0.5..0.5);
            let prev = *y.last().expect("non-empty");
            y.push(phi * prev + e);
        }
        y
    }

    #[test]
    fn psi_weights_of_ar1_are_geometric() {
        let psi = psi_weights(&[0.5], &[], 5);
        let expect = [1.0, 0.5, 0.25, 0.125, 0.0625];
        for (a, b) in psi.iter().zip(expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn psi_weights_of_ma1() {
        let psi = psi_weights(&[], &[0.7], 4);
        assert_eq!(psi, vec![1.0, 0.7, 0.0, 0.0]);
    }

    #[test]
    fn psi_weights_of_arma11() {
        // ψ_1 = φ + θ, ψ_j = φ ψ_{j−1} afterwards
        let psi = psi_weights(&[0.5], &[0.3], 4);
        assert!((psi[1] - 0.8).abs() < 1e-12);
        assert!((psi[2] - 0.4).abs() < 1e-12);
        assert!((psi[3] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn interval_width_grows_with_horizon() {
        let y = ar1(0.7, 5_000, 1);
        let m = ArimaModel::fit(&y, ArimaSpec::new(1, 0, 0)).unwrap();
        let fc = m.forecast_with_interval(&y, 10, 1.96);
        for w in fc.windows(2) {
            assert!(
                w[1].std_error >= w[0].std_error - 1e-12,
                "variance must be non-decreasing"
            );
        }
        // h=1 standard error ≈ innovation σ
        assert!((fc[0].std_error - m.sigma2.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn random_walk_interval_grows_like_sqrt_h() {
        // ARIMA(0,1,0): Var[e_h] = h σ²
        let mut rng = StdRng::seed_from_u64(3);
        let mut y = vec![0.0f64];
        for _ in 0..3_000 {
            let e: f64 = rng.gen_range(-0.5..0.5);
            let prev = *y.last().expect("non-empty");
            y.push(prev + e);
        }
        let m = ArimaModel::fit(&y, ArimaSpec::new(0, 1, 0)).unwrap();
        let fc = m.forecast_with_interval(&y, 9, 1.0);
        let r = fc[8].std_error / fc[0].std_error;
        assert!((r - 3.0).abs() < 0.01, "sqrt(9) = 3, got {r}");
    }

    #[test]
    fn band_contains_future_values_mostly() {
        let y = ar1(0.6, 3_000, 9);
        let split = 2_900;
        let m = ArimaModel::fit(&y[..split], ArimaSpec::new(1, 0, 0)).unwrap();
        // count 95% coverage of 1-step forecasts over the test range
        let mut covered = 0;
        let mut total = 0;
        for t in split..y.len() - 1 {
            let fc = m.forecast_with_interval(&y[..t], 1, 1.96)[0];
            if y[t] >= fc.lower && y[t] <= fc.upper {
                covered += 1;
            }
            total += 1;
        }
        let rate = covered as f64 / total as f64;
        assert!(rate > 0.85, "coverage {rate} too low for a 95% band");
    }

    #[test]
    fn first_alert_step_finds_upper_crossing() {
        let fcs = vec![
            Forecast {
                mean: 0.5,
                lower: 0.4,
                upper: 0.6,
                std_error: 0.05,
            },
            Forecast {
                mean: 0.7,
                lower: 0.5,
                upper: 0.93,
                std_error: 0.1,
            },
            Forecast {
                mean: 0.8,
                lower: 0.6,
                upper: 1.0,
                std_error: 0.1,
            },
        ];
        assert_eq!(first_alert_step(&fcs, 0.9), Some(2));
        assert_eq!(first_alert_step(&fcs, 1.5), None);
        // the conservative rule fires before the point estimate would
        assert!(fcs[1].mean < 0.9);
    }
}

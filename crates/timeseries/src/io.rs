//! Trace I/O: load real data-center traces from CSV (the format
//! monitoring stacks export) and save generated ones. The paper's
//! pipeline starts from ZopleCloud's collected series; this is the seam
//! where a deployment would feed its own.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// I/O or parse failure while reading a trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A cell failed to parse as a number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending cell contents.
        cell: String,
    },
    /// The requested column is absent.
    MissingColumn(String),
    /// Rows have inconsistent arity.
    RaggedRow {
        /// 1-based line number.
        line: usize,
    },
    /// `write_csv` was handed no columns at all.
    EmptyColumns,
    /// `write_csv` was handed columns of differing lengths.
    MisalignedColumns {
        /// The offending column's name.
        column: String,
        /// Its length.
        len: usize,
        /// The length of the first column, which sets the row count.
        expected: usize,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "I/O error: {e}"),
            TraceIoError::Parse { line, cell } => {
                write!(f, "line {line}: cannot parse {cell:?} as a number")
            }
            TraceIoError::MissingColumn(c) => write!(f, "column {c:?} not found"),
            TraceIoError::RaggedRow { line } => write!(f, "line {line}: wrong number of cells"),
            TraceIoError::EmptyColumns => write!(f, "need at least one column"),
            TraceIoError::MisalignedColumns {
                column,
                len,
                expected,
            } => write!(f, "column {column:?} has {len} rows, expected {expected}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Write named series as a CSV with a header row. All series must share
/// a length; mismatches surface as typed errors instead of panics.
pub fn write_csv(path: &Path, columns: &[(&str, &[f64])]) -> Result<(), TraceIoError> {
    let Some((_, first)) = columns.first() else {
        return Err(TraceIoError::EmptyColumns);
    };
    let len = first.len();
    for (name, c) in columns {
        if c.len() != len {
            return Err(TraceIoError::MisalignedColumns {
                column: name.to_string(),
                len: c.len(),
                expected: len,
            });
        }
    }
    let mut out = BufWriter::new(File::create(path)?);
    let header: Vec<&str> = columns.iter().map(|(n, _)| *n).collect();
    writeln!(out, "{}", header.join(","))?;
    for row in 0..len {
        let cells: Vec<String> = columns
            .iter()
            .filter_map(|(_, c)| c.get(row).map(f64::to_string))
            .collect();
        writeln!(out, "{}", cells.join(","))?;
    }
    out.flush()?;
    Ok(())
}

/// Read a CSV with a header row into named columns.
pub fn read_csv(path: &Path) -> Result<Vec<(String, Vec<f64>)>, TraceIoError> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let Some(header) = lines.next() else {
        return Ok(Vec::new());
    };
    let names: Vec<String> = header?.split(',').map(|s| s.trim().to_string()).collect();
    let mut columns: Vec<(String, Vec<f64>)> = names.into_iter().map(|n| (n, Vec::new())).collect();
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != columns.len() {
            return Err(TraceIoError::RaggedRow { line: i + 2 });
        }
        for (col, cell) in columns.iter_mut().zip(cells) {
            let v: f64 = cell.trim().parse().map_err(|_| TraceIoError::Parse {
                line: i + 2,
                cell: cell.to_string(),
            })?;
            col.1.push(v);
        }
    }
    Ok(columns)
}

/// Read one named column from a CSV trace file.
pub fn read_csv_column(path: &Path, name: &str) -> Result<Vec<f64>, TraceIoError> {
    let columns = read_csv(path)?;
    columns
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, c)| c)
        .ok_or_else(|| TraceIoError::MissingColumn(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sheriff-ts-io-{name}-{}.csv", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_data() {
        let path = tmp("roundtrip");
        let a = [1.0, 2.5, -3.0];
        let b = [0.1, 0.2, 0.3];
        write_csv(&path, &[("traffic", &a), ("cpu", &b)]).unwrap();
        let cols = read_csv(&path).unwrap();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].0, "traffic");
        assert_eq!(cols[0].1, a.to_vec());
        assert_eq!(cols[1].1, b.to_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_single_column_by_name() {
        let path = tmp("column");
        write_csv(&path, &[("x", &[1.0, 2.0]), ("y", &[3.0, 4.0])]).unwrap();
        assert_eq!(read_csv_column(&path, "y").unwrap(), vec![3.0, 4.0]);
        let err = read_csv_column(&path, "z").unwrap_err();
        assert!(matches!(err, TraceIoError::MissingColumn(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_errors_carry_location() {
        let path = tmp("bad");
        std::fs::write(&path, "a,b\n1.0,2.0\nx,3.0\n").unwrap();
        let err = read_csv(&path).unwrap_err();
        match err {
            TraceIoError::Parse { line, cell } => {
                assert_eq!(line, 3);
                assert_eq!(cell, "x");
            }
            other => panic!("wrong error: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ragged_rows_rejected() {
        let path = tmp("ragged");
        std::fs::write(&path, "a,b\n1.0\n").unwrap();
        assert!(matches!(
            read_csv(&path).unwrap_err(),
            TraceIoError::RaggedRow { line: 2 }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generated_trace_roundtrips_through_csv_and_fits() {
        use crate::arima::{ArimaModel, ArimaSpec};
        use crate::generator::{weekly_traffic_trace, TraceConfig};
        let path = tmp("fit");
        let y = weekly_traffic_trace(&TraceConfig {
            len: 300,
            samples_per_day: 48,
            seed: 1,
        });
        write_csv(&path, &[("traffic", &y)]).unwrap();
        let loaded = read_csv_column(&path, "traffic").unwrap();
        assert_eq!(loaded, y);
        // the loaded trace feeds straight into the paper pipeline
        assert!(ArimaModel::fit(&loaded, ArimaSpec::new(1, 1, 1)).is_ok());
        std::fs::remove_file(&path).ok();
    }
}

//! Network-aware migration transfer scheduling on the event core.
//!
//! Sheriff's cost model (Eqn. 1) prices each pre-copy independently, and
//! the fabric runtime historically settled every committed migration
//! instantaneously. In a real Fat-Tree the pre-copies of concurrent
//! migrations *share links*: two transfers crossing the same core link
//! each get half its bandwidth, and completion times stretch accordingly
//! (Wang et al., "Virtual Machine Migration Planning in SDN"). This crate
//! models exactly that contention, deterministically:
//!
//! * every committed 2PC migration becomes a [`TransferSpec`] with a byte
//!   size derived from the VM's capacity;
//! * a route is chosen from the k-shortest candidate paths
//!   ([`route_candidates`], built on `dcn-topology`'s Yen machinery) with
//!   a deterministic lexicographic tie-break;
//! * concurrent transfers share per-link capacity under
//!   progressive-filling **max-min fairness**, and every admission or
//!   completion recomputes all rates and re-schedules each transfer's
//!   completion time;
//! * each shared link runs a QCN congestion point (`dcn-sim`); when the
//!   primary route's worst-link severity crosses
//!   [`TransferConfig::reroute_threshold`] a new transfer is steered onto
//!   the least-congested alternate (a *reroute*), and a full admission
//!   window ([`TransferConfig::max_concurrent`]) queues it instead.
//!
//! The scheduler is pure virtual-time state: no clocks, no randomness,
//! `BTreeMap` everywhere — same inputs, byte-identical schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dcn_sim::qcn::{CongestionPoint, CpConfig};
use dcn_topology::graph::{EdgeIdx, NetGraph, NodeIdx};
use dcn_topology::ksp::k_shortest_paths;
use serde::{Deserialize, Serialize};
use sheriff_obs::Histogram;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Residual-byte tolerance: below this a transfer counts as finished.
const EPS: f64 = 1e-9;
/// Floor on a computed rate so completion times stay finite.
const MIN_RATE: f64 = 1e-6;

/// How a transfer picks among its k candidate routes at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RouteStrategy {
    /// Take the shortest candidate unless QCN severity on it exceeds the
    /// reroute threshold; then the first under-threshold alternate (or
    /// the least-severe candidate when all are hot).
    #[default]
    Shortest,
    /// Always take the candidate whose busiest link carries the fewest
    /// concurrent transfers (ties: fewer hops, then candidate order).
    LeastLoaded,
}

/// Knobs for the transfer scheduler. `None` on
/// `FabricConfig::transfer` disables the model entirely (instantaneous
/// settlement, byte-identical to the pre-transfer fabric).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferConfig {
    /// Migration-lane capacity of every link, in bytes per virtual tick.
    pub link_bandwidth: f64,
    /// Bytes of pre-copy traffic per unit of VM capacity (Eqn. 1's
    /// `m.capacity` scaled into transferable bytes).
    pub bytes_per_capacity: f64,
    /// Admission cap on concurrently running transfers; `0` = unlimited.
    pub max_concurrent: usize,
    /// Number of k-shortest-path route candidates computed per transfer.
    pub k_paths: usize,
    /// Route selection policy at admission.
    pub route_strategy: RouteStrategy,
    /// QCN severity in `[0, 1]` above which the primary route is
    /// abandoned for an alternate (a `TransferRerouted` event).
    pub reroute_threshold: f64,
}

impl Default for TransferConfig {
    fn default() -> Self {
        Self {
            link_bandwidth: 4.0,
            bytes_per_capacity: 8.0,
            max_concurrent: 0,
            k_paths: 4,
            route_strategy: RouteStrategy::Shortest,
            reroute_threshold: 0.25,
        }
    }
}

/// One route candidate: the links it crosses, in path order.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteCandidate {
    /// Node sequence, inclusive of both endpoints.
    pub nodes: Vec<NodeIdx>,
    /// Edge indices along the path.
    pub links: Vec<EdgeIdx>,
}

impl RouteCandidate {
    /// Hop count of the candidate.
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// Compute up to `k` candidate routes between two topology nodes,
/// shortest first, with a deterministic tie-break: equal-cost paths are
/// ordered lexicographically by node sequence, so the same topology
/// always yields the same candidate list regardless of internal search
/// order.
pub fn route_candidates(g: &NetGraph, src: NodeIdx, dst: NodeIdx, k: usize) -> Vec<RouteCandidate> {
    let mut paths = k_shortest_paths(g, src, dst, k.max(1), |_| 1.0);
    paths.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.nodes.cmp(&b.nodes))
    });
    paths
        .into_iter()
        .map(|p| RouteCandidate {
            links: p.edges(g),
            nodes: p.nodes,
        })
        .collect()
}

/// What the caller submits: one committed migration's pre-copy.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferSpec {
    /// Caller-chosen identifier (the fabric uses the 2PC request id).
    pub id: u64,
    /// The VM being moved, as a plain index.
    pub vm: u64,
    /// Destination rack index; a rack crash cancels transfers bound for
    /// it via [`TransferScheduler::cancel_rack`].
    pub dst_rack: usize,
    /// Total pre-copy volume in bytes.
    pub bytes: f64,
}

/// Outcome of [`TransferScheduler::submit`].
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// The transfer is running; rates were recomputed fleet-wide.
    Started(Started),
    /// The concurrency cap is reached; the transfer waits in FIFO order
    /// and starts from a later [`TransferScheduler::poll`].
    Queued,
}

/// A transfer that just began streaming.
#[derive(Debug, Clone, PartialEq)]
pub struct Started {
    /// Caller identifier.
    pub id: u64,
    /// The VM being moved.
    pub vm: u64,
    /// Pre-copy volume in bytes.
    pub bytes: f64,
    /// Hop count of the chosen route (0 for an intra-rack move).
    pub hops: usize,
    /// Max-min fair rate granted at admission, bytes per tick.
    pub rate: f64,
    /// Whether congestion steered it off the primary candidate.
    pub rerouted: bool,
    /// Ticks spent waiting in the admission queue.
    pub waited: u64,
}

/// A transfer that finished streaming its last byte.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Caller identifier.
    pub id: u64,
    /// The VM that finished moving.
    pub vm: u64,
    /// Pre-copy volume in bytes.
    pub bytes: f64,
    /// Wall ticks from admission to completion (≥ 1).
    pub duration: u64,
    /// Achieved bandwidth `bytes / duration`.
    pub achieved_bw: f64,
}

/// A streaming transfer steered onto an alternate route by QCN
/// congestion feedback mid-flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Rerouted {
    /// Caller identifier.
    pub id: u64,
    /// The VM being moved.
    pub vm: u64,
    /// Hop count of the new route.
    pub hops: usize,
}

/// Everything that happened at one [`TransferScheduler::poll`].
#[derive(Debug, Clone, Default)]
pub struct TransferTick {
    /// Transfers that finished at this tick.
    pub completions: Vec<Completion>,
    /// Queued transfers admitted now that capacity freed up.
    pub started: Vec<Started>,
    /// Streams QCN pressure moved onto an alternate route this tick.
    pub rerouted: Vec<Rerouted>,
}

impl TransferTick {
    /// True when the poll neither completed, admitted, nor rerouted
    /// anything.
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty() && self.started.is_empty() && self.rerouted.is_empty()
    }
}

/// An in-flight transfer.
#[derive(Debug, Clone)]
struct Active {
    vm: u64,
    dst_rack: usize,
    bytes: f64,
    remaining: f64,
    links: Vec<EdgeIdx>,
    hops: usize,
    rate: f64,
    rate_since: u64,
    started_at: u64,
    rerouted: bool,
    /// Remaining route alternatives, kept so QCN pressure can steer the
    /// stream mid-flight.
    candidates: Vec<RouteCandidate>,
}

/// A transfer parked behind the admission cap.
#[derive(Debug, Clone)]
struct Queued {
    spec: TransferSpec,
    candidates: Vec<RouteCandidate>,
    since: u64,
}

/// Deterministic bandwidth-sharing transfer scheduler.
///
/// Drive it from an event loop: [`submit`](Self::submit) at each 2PC
/// COMMIT, [`poll`](Self::poll) at every activated tick, and schedule a
/// wake at [`next_event_time`](Self::next_event_time). All state is
/// ordered (`BTreeMap`) and advanced only by the virtual times passed
/// in, so identical call sequences produce identical schedules.
#[derive(Debug, Clone)]
pub struct TransferScheduler {
    cfg: TransferConfig,
    active: BTreeMap<u64, Active>,
    queue: VecDeque<Queued>,
    /// Per-link QCN congestion points, keyed by edge index.
    cps: BTreeMap<EdgeIdx, CongestionPoint>,
    /// Concurrent users per link as of the last recompute.
    link_users: BTreeMap<EdgeIdx, usize>,
    completes_at: BTreeMap<u64, u64>,
    /// Virtual time of the last QCN sampling interval.
    sampled_at: u64,
    peak_sharing: usize,
    reroutes: usize,
    queue_delays: usize,
    starts: usize,
    completes: usize,
    completion_hist: Histogram,
    bandwidth_hist: Histogram,
}

impl TransferScheduler {
    /// A scheduler with no transfers in flight.
    pub fn new(cfg: TransferConfig) -> Self {
        Self {
            cfg,
            active: BTreeMap::new(),
            queue: VecDeque::new(),
            cps: BTreeMap::new(),
            link_users: BTreeMap::new(),
            completes_at: BTreeMap::new(),
            sampled_at: 0,
            peak_sharing: 0,
            reroutes: 0,
            queue_delays: 0,
            starts: 0,
            completes: 0,
            completion_hist: Histogram::exponential(1.0, 2.0, 16),
            bandwidth_hist: Histogram::exponential(0.125, 2.0, 12),
        }
    }

    /// The knobs this scheduler was built with.
    pub fn config(&self) -> &TransferConfig {
        &self.cfg
    }

    fn capacity(&self) -> f64 {
        if self.cfg.link_bandwidth > 0.0 {
            self.cfg.link_bandwidth
        } else {
            1.0
        }
    }

    /// No transfers running and none queued.
    pub fn is_idle(&self) -> bool {
        self.active.is_empty() && self.queue.is_empty()
    }

    /// Count of currently running transfers.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Count of transfers waiting behind the admission cap.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// VM indices with a pre-copy running or queued; the planner must
    /// not re-plan these as source or destination mid-transfer.
    pub fn in_flight_vms(&self) -> BTreeSet<u64> {
        self.active
            .values()
            .map(|a| a.vm)
            .chain(self.queue.iter().map(|q| q.spec.vm))
            .collect()
    }

    /// Peak number of transfers that ever shared one link.
    pub fn peak_link_sharing(&self) -> usize {
        self.peak_sharing
    }

    /// Transfers steered off their primary route by congestion.
    pub fn reroutes(&self) -> usize {
        self.reroutes
    }

    /// Admissions delayed by the concurrency cap.
    pub fn queue_delays(&self) -> usize {
        self.queue_delays
    }

    /// Transfers admitted so far.
    pub fn starts(&self) -> usize {
        self.starts
    }

    /// Transfers completed so far.
    pub fn completes(&self) -> usize {
        self.completes
    }

    /// Histogram of completion times in ticks.
    pub fn completion_histogram(&self) -> &Histogram {
        &self.completion_hist
    }

    /// Histogram of achieved per-transfer bandwidth in bytes/tick.
    pub fn bandwidth_histogram(&self) -> &Histogram {
        &self.bandwidth_hist
    }

    /// Earliest tick at which a running transfer completes, under
    /// current rates. `None` when nothing is running (a non-empty queue
    /// still needs a wake: poll again next tick to admit it).
    pub fn next_event_time(&self) -> Option<u64> {
        self.completes_at.values().min().copied()
    }

    /// Submit a pre-copy at COMMIT time. `candidates` come from
    /// [`route_candidates`]; an empty list means an intra-rack move that
    /// crosses no shared links. Duplicate ids are rejected as `Queued`
    /// never — the caller deduplicates by request id.
    pub fn submit(
        &mut self,
        now: u64,
        spec: TransferSpec,
        candidates: Vec<RouteCandidate>,
    ) -> Admission {
        self.settle(now);
        if self.cfg.max_concurrent > 0 && self.active.len() >= self.cfg.max_concurrent {
            self.queue_delays += 1;
            self.queue.push_back(Queued {
                spec,
                candidates,
                since: now,
            });
            return Admission::Queued;
        }
        let id = spec.id;
        self.admit(now, spec, &candidates);
        self.recompute(now);
        Admission::Started(self.started_info(id, 0))
    }

    /// Insert an Active entry with its route chosen; rates are stale
    /// until the caller recomputes.
    fn admit(&mut self, now: u64, spec: TransferSpec, candidates: &[RouteCandidate]) {
        let (links, hops, rerouted) = self.choose_route(candidates);
        if rerouted {
            self.reroutes += 1;
        }
        self.starts += 1;
        self.active.insert(
            spec.id,
            Active {
                vm: spec.vm,
                dst_rack: spec.dst_rack,
                bytes: spec.bytes,
                remaining: spec.bytes.max(0.0),
                links,
                hops,
                rate: self.capacity(),
                rate_since: now,
                started_at: now,
                rerouted,
                candidates: candidates.to_vec(),
            },
        );
    }

    /// Worst QCN severity along a set of links.
    fn severity_of_links(&self, links: &[EdgeIdx]) -> f64 {
        links
            .iter()
            .map(|l| self.cps.get(l).map_or(0.0, CongestionPoint::severity))
            .fold(0.0, f64::max)
    }

    /// Worst QCN severity along a candidate.
    fn severity_of(&self, c: &RouteCandidate) -> f64 {
        self.severity_of_links(&c.links)
    }

    /// Pick a route; returns `(links, hops, rerouted)`.
    fn choose_route(&self, candidates: &[RouteCandidate]) -> (Vec<EdgeIdx>, usize, bool) {
        let Some(primary) = candidates.first() else {
            return (Vec::new(), 0, false);
        };
        let pick = |i: usize| match candidates.get(i) {
            Some(c) => (c.links.clone(), c.hops(), i != 0),
            None => (primary.links.clone(), primary.hops(), false),
        };
        match self.cfg.route_strategy {
            RouteStrategy::Shortest => {
                let thr = self.cfg.reroute_threshold;
                if self.severity_of(primary) <= thr {
                    return pick(0);
                }
                // primary is hot: first alternate under threshold, else
                // the least-severe candidate overall
                for (i, c) in candidates.iter().enumerate().skip(1) {
                    if self.severity_of(c) <= thr {
                        return pick(i);
                    }
                }
                let mut best = 0usize;
                let mut best_sev = self.severity_of(primary);
                for (i, c) in candidates.iter().enumerate().skip(1) {
                    let s = self.severity_of(c);
                    if s < best_sev - EPS {
                        best = i;
                        best_sev = s;
                    }
                }
                pick(best)
            }
            RouteStrategy::LeastLoaded => {
                let load = |c: &RouteCandidate| {
                    c.links
                        .iter()
                        .map(|l| self.link_users.get(l).copied().unwrap_or(0))
                        .max()
                        .unwrap_or(0)
                };
                let mut best = 0usize;
                let mut key = (load(primary), primary.hops());
                for (i, c) in candidates.iter().enumerate().skip(1) {
                    let k = (load(c), c.hops());
                    if k < key {
                        best = i;
                        key = k;
                    }
                }
                pick(best)
            }
        }
    }

    fn started_info(&self, id: u64, waited: u64) -> Started {
        match self.active.get(&id) {
            Some(a) => Started {
                id,
                vm: a.vm,
                bytes: a.bytes,
                hops: a.hops,
                rate: a.rate,
                rerouted: a.rerouted,
                waited,
            },
            // unreachable: callers only ask about ids they just admitted
            None => Started {
                id,
                vm: 0,
                bytes: 0.0,
                hops: 0,
                rate: 0.0,
                rerouted: false,
                waited,
            },
        }
    }

    /// Advance every running transfer's residual bytes to `now`.
    fn settle(&mut self, now: u64) {
        for a in self.active.values_mut() {
            let dt = now.saturating_sub(a.rate_since);
            if dt > 0 {
                a.remaining = (a.remaining - a.rate * dt as f64).max(0.0);
                a.rate_since = now;
            }
        }
    }

    /// Progressive-filling max-min fairness: repeatedly grant every
    /// unfrozen transfer the smallest per-link fair share, freeze the
    /// transfers crossing the saturated link(s), subtract their share,
    /// and continue until all transfers are frozen. Also advances each
    /// used link's QCN congestion point by one sampling interval
    /// (demand = users × capacity in, capacity out) and re-schedules
    /// every completion time.
    fn recompute(&mut self, now: u64) {
        let cap = self.capacity();
        let mut users: BTreeMap<EdgeIdx, Vec<u64>> = BTreeMap::new();
        for (&id, a) in &self.active {
            for &l in &a.links {
                users.entry(l).or_default().push(id);
            }
        }
        let mut avail: BTreeMap<EdgeIdx, f64> = users.keys().map(|&l| (l, cap)).collect();
        let mut unfrozen: BTreeSet<u64> = self
            .active
            .iter()
            .filter(|(_, a)| !a.links.is_empty())
            .map(|(&id, _)| id)
            .collect();
        let mut rates: BTreeMap<u64, f64> = BTreeMap::new();
        while !unfrozen.is_empty() {
            let mut share = f64::INFINITY;
            for (l, us) in &users {
                let n = us.iter().filter(|id| unfrozen.contains(id)).count();
                if n > 0 {
                    share = share.min(avail.get(l).copied().unwrap_or(0.0) / n as f64);
                }
            }
            if !share.is_finite() {
                break;
            }
            let mut frozen_now: BTreeSet<u64> = BTreeSet::new();
            for (l, us) in &users {
                let n = us.iter().filter(|id| unfrozen.contains(id)).count();
                if n > 0 && avail.get(l).copied().unwrap_or(0.0) / n as f64 <= share + EPS {
                    frozen_now.extend(us.iter().filter(|id| unfrozen.contains(id)));
                }
            }
            if frozen_now.is_empty() {
                break;
            }
            for &id in &frozen_now {
                rates.insert(id, share);
                if let Some(a) = self.active.get(&id) {
                    for &l in &a.links {
                        if let Some(v) = avail.get_mut(&l) {
                            *v = (*v - share).max(0.0);
                        }
                    }
                }
                unfrozen.remove(&id);
            }
        }
        let peak = users.values().map(Vec::len).max().unwrap_or(0);
        self.peak_sharing = self.peak_sharing.max(peak);
        self.link_users = users.iter().map(|(&l, us)| (l, us.len())).collect();
        // one QCN sampling interval per recompute, scaled by the
        // virtual time elapsed since the last one so queues integrate
        // demand over long streaming stretches (clamped to >= 1 so
        // same-tick admission bursts still build pressure): used links
        // see their aggregate demand, idle links drain
        let dt = now.saturating_sub(self.sampled_at).max(1) as f64;
        self.sampled_at = now;
        let sampled: BTreeSet<EdgeIdx> = users
            .keys()
            .copied()
            .chain(self.cps.keys().copied())
            .collect();
        for l in sampled {
            let n = self.link_users.get(&l).copied().unwrap_or(0);
            let cp = self
                .cps
                .entry(l)
                .or_insert_with(|| CongestionPoint::new(CpConfig::default()));
            let _ = cp.sample(n as f64 * cap * dt, cap * dt);
        }
        self.completes_at.clear();
        for (&id, a) in self.active.iter_mut() {
            a.rate = if a.links.is_empty() {
                cap
            } else {
                rates.get(&id).copied().unwrap_or(cap).max(MIN_RATE)
            };
            a.rate_since = now;
            let ticks = if a.remaining <= EPS {
                1
            } else {
                let t = (a.remaining / a.rate).ceil();
                if t >= 1.0 {
                    t as u64
                } else {
                    1
                }
            };
            self.completes_at.insert(id, now + ticks);
        }
    }

    /// Advance to `now`: harvest completions, admit queued transfers
    /// into freed slots, and recompute the bandwidth shares. Call at
    /// every activated tick; the scheduler never completes a transfer
    /// in the same tick it was admitted.
    pub fn poll(&mut self, now: u64) -> TransferTick {
        self.settle(now);
        let done: Vec<u64> = self
            .active
            .iter()
            .filter(|(_, a)| a.remaining <= EPS && a.started_at < now)
            .map(|(&id, _)| id)
            .collect();
        let mut completions = Vec::new();
        for id in done {
            if let Some(a) = self.active.remove(&id) {
                self.completes_at.remove(&id);
                let duration = (now - a.started_at).max(1);
                let achieved = a.bytes / duration as f64;
                self.completion_hist.record(duration as f64);
                self.bandwidth_hist.record(achieved);
                self.completes += 1;
                completions.push(Completion {
                    id,
                    vm: a.vm,
                    bytes: a.bytes,
                    duration,
                    achieved_bw: achieved,
                });
            }
        }
        let mut admitted: Vec<(u64, u64)> = Vec::new();
        while (self.cfg.max_concurrent == 0 || self.active.len() < self.cfg.max_concurrent)
            && !self.queue.is_empty()
        {
            if let Some(q) = self.queue.pop_front() {
                let id = q.spec.id;
                let waited = now.saturating_sub(q.since);
                self.admit(now, q.spec, &q.candidates);
                admitted.push((id, waited));
            }
        }
        let rerouted = self.reroute_hot_streams();
        self.recompute(now);
        let started = admitted
            .into_iter()
            .map(|(id, waited)| self.started_info(id, waited))
            .collect();
        TransferTick {
            completions,
            started,
            rerouted,
        }
    }

    /// The QCN reaction path for streams already in flight: when a
    /// transfer's current route has gone hot, steer it onto the
    /// coldest strictly-better alternate. Each transfer moves at most
    /// once in its lifetime, so two streams sharing a hot pair of
    /// links settle on disjoint (or jointly chosen) alternates instead
    /// of ping-ponging.
    fn reroute_hot_streams(&mut self) -> Vec<Rerouted> {
        let thr = self.cfg.reroute_threshold;
        let mut moved = Vec::new();
        let ids: Vec<u64> = self.active.keys().copied().collect();
        for id in ids {
            let Some(a) = self.active.get(&id) else {
                continue;
            };
            if a.rerouted || a.links.is_empty() || a.candidates.len() < 2 {
                continue;
            }
            let current = self.severity_of_links(&a.links);
            if current <= thr {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for (i, c) in a.candidates.iter().enumerate() {
                if c.links == a.links {
                    continue;
                }
                let s = self.severity_of(c);
                if s < current - EPS && best.is_none_or(|(_, bs)| s < bs - EPS) {
                    best = Some((i, s));
                }
            }
            let Some((i, _)) = best else {
                continue;
            };
            let Some((links, hops)) = self
                .active
                .get(&id)
                .and_then(|a| a.candidates.get(i))
                .map(|c| (c.links.clone(), c.hops()))
            else {
                continue;
            };
            if let Some(a) = self.active.get_mut(&id) {
                a.links = links;
                a.hops = hops;
                a.rerouted = true;
                self.reroutes += 1;
                moved.push(Rerouted { id, vm: a.vm, hops });
            }
        }
        moved
    }

    /// Cancel one transfer (2PC abort or crash); residual bytes are
    /// discarded and remaining transfers speed up at the next poll.
    pub fn cancel(&mut self, id: u64, now: u64) -> bool {
        self.settle(now);
        let hit = self.active.remove(&id).is_some();
        self.completes_at.remove(&id);
        let before = self.queue.len();
        self.queue.retain(|q| q.spec.id != id);
        let hit = hit || self.queue.len() != before;
        if hit {
            self.recompute(now);
        }
        hit
    }

    /// Cancel every transfer bound for a crashed destination rack;
    /// returns the cancelled ids (running and queued).
    pub fn cancel_rack(&mut self, rack: usize, now: u64) -> Vec<u64> {
        self.settle(now);
        let ids: Vec<u64> = self
            .active
            .iter()
            .filter(|(_, a)| a.dst_rack == rack)
            .map(|(&id, _)| id)
            .collect();
        let mut cancelled = ids;
        for id in &cancelled {
            self.active.remove(id);
            self.completes_at.remove(id);
        }
        let queued: Vec<u64> = self
            .queue
            .iter()
            .filter(|q| q.spec.dst_rack == rack)
            .map(|q| q.spec.id)
            .collect();
        self.queue.retain(|q| q.spec.dst_rack != rack);
        cancelled.extend(queued);
        if !cancelled.is_empty() {
            self.recompute(now);
        }
        cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::fattree::{self, FatTreeConfig};
    use dcn_topology::Dcn;

    fn spec(id: u64, bytes: f64) -> TransferSpec {
        TransferSpec {
            id,
            vm: id,
            dst_rack: 0,
            bytes,
        }
    }

    fn shared_link() -> Vec<RouteCandidate> {
        vec![RouteCandidate {
            nodes: vec![0, 1],
            links: vec![7],
        }]
    }

    #[test]
    fn solo_transfer_gets_full_bandwidth() {
        let mut ts = TransferScheduler::new(TransferConfig::default());
        let adm = ts.submit(0, spec(1, 8.0), shared_link());
        let Admission::Started(s) = adm else {
            panic!("should start");
        };
        assert!((s.rate - 4.0).abs() < 1e-12);
        assert_eq!(ts.next_event_time(), Some(2));
        let tick = ts.poll(2);
        assert_eq!(tick.completions.len(), 1);
        assert_eq!(tick.completions[0].duration, 2);
        assert!((tick.completions[0].achieved_bw - 4.0).abs() < 1e-12);
        assert!(ts.is_idle());
    }

    #[test]
    fn two_transfers_on_one_link_halve_and_stretch() {
        let mut ts = TransferScheduler::new(TransferConfig::default());
        ts.submit(0, spec(1, 8.0), shared_link());
        ts.submit(0, spec(2, 8.0), shared_link());
        // both now run at 2.0 on the shared link: 4 ticks each
        assert_eq!(ts.next_event_time(), Some(4));
        assert_eq!(ts.peak_link_sharing(), 2);
        let tick = ts.poll(4);
        assert_eq!(tick.completions.len(), 2);
        for c in &tick.completions {
            assert_eq!(c.duration, 4);
            assert!((c.achieved_bw - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn finishing_transfer_speeds_up_the_survivor() {
        let mut ts = TransferScheduler::new(TransferConfig::default());
        ts.submit(0, spec(1, 4.0), shared_link());
        ts.submit(0, spec(2, 8.0), shared_link());
        // shared at 2.0: #1 finishes at t=2 with 0 left, #2 has 4 left
        assert_eq!(ts.next_event_time(), Some(2));
        let tick = ts.poll(2);
        assert_eq!(tick.completions.len(), 1);
        assert_eq!(tick.completions[0].id, 1);
        // survivor back to full rate: 4 bytes / 4.0 = 1 tick
        assert_eq!(ts.next_event_time(), Some(3));
        let tick = ts.poll(3);
        assert_eq!(tick.completions.len(), 1);
        assert_eq!(tick.completions[0].id, 2);
        assert_eq!(tick.completions[0].duration, 3);
    }

    #[test]
    fn disjoint_links_do_not_share() {
        let mut ts = TransferScheduler::new(TransferConfig::default());
        ts.submit(
            0,
            spec(1, 8.0),
            vec![RouteCandidate {
                nodes: vec![0, 1],
                links: vec![3],
            }],
        );
        ts.submit(
            0,
            spec(2, 8.0),
            vec![RouteCandidate {
                nodes: vec![2, 3],
                links: vec![9],
            }],
        );
        assert_eq!(ts.next_event_time(), Some(2));
        assert_eq!(ts.peak_link_sharing(), 1);
    }

    #[test]
    fn max_min_respects_multi_link_bottlenecks() {
        // A crosses links {1}, B crosses {1, 2}, C crosses {2}.
        // Max-min: share on link1 = 2.0 freezes A and B; C then gets the
        // leftover 2.0 + ... on link2: avail 4 - 2 (B) = 2.0.
        let mut ts = TransferScheduler::new(TransferConfig::default());
        ts.submit(
            0,
            spec(1, 8.0),
            vec![RouteCandidate {
                nodes: vec![0, 1],
                links: vec![1],
            }],
        );
        ts.submit(
            0,
            spec(2, 8.0),
            vec![RouteCandidate {
                nodes: vec![0, 2],
                links: vec![1, 2],
            }],
        );
        ts.submit(
            0,
            spec(3, 8.0),
            vec![RouteCandidate {
                nodes: vec![1, 2],
                links: vec![2],
            }],
        );
        // every transfer should land at 2.0: 8 bytes → 4 ticks
        assert_eq!(ts.next_event_time(), Some(4));
        let tick = ts.poll(4);
        assert_eq!(tick.completions.len(), 3);
    }

    #[test]
    fn admission_cap_queues_and_promotes_fifo() {
        let cfg = TransferConfig {
            max_concurrent: 1,
            ..TransferConfig::default()
        };
        let mut ts = TransferScheduler::new(cfg);
        assert!(matches!(
            ts.submit(0, spec(1, 4.0), shared_link()),
            Admission::Started(_)
        ));
        assert!(matches!(
            ts.submit(0, spec(2, 4.0), shared_link()),
            Admission::Queued
        ));
        assert_eq!(ts.queue_delays(), 1);
        // 4 bytes at rate 4.0: #1 completes at t=1 and frees the slot
        let tick = ts.poll(1);
        assert_eq!(tick.completions.len(), 1);
        assert_eq!(tick.completions[0].id, 1);
        assert_eq!(tick.started.len(), 1);
        assert_eq!(tick.started[0].id, 2);
        assert_eq!(tick.started[0].waited, 1);
        assert!(!ts.is_idle());
        let tick = ts.poll(2);
        assert_eq!(tick.completions.len(), 1);
        assert!(ts.is_idle());
    }

    #[test]
    fn sustained_sharing_trips_qcn_and_reroutes() {
        let two_routes = || {
            vec![
                RouteCandidate {
                    nodes: vec![0, 1, 2],
                    links: vec![10, 11],
                },
                RouteCandidate {
                    nodes: vec![0, 3, 2],
                    links: vec![20, 21],
                },
            ]
        };
        let mut ts = TransferScheduler::new(TransferConfig {
            reroute_threshold: 0.2,
            ..TransferConfig::default()
        });
        // hammer the primary: each submit recomputes and samples the
        // QCN points, so severity on links 10/11 climbs
        for i in 0..8 {
            ts.submit(0, spec(i, 64.0), two_routes());
        }
        assert!(ts.reroutes() > 0, "QCN pressure must steer someone away");
        // at least one rerouted transfer runs on the alternate links
        assert!(ts
            .active
            .values()
            .any(|a| a.rerouted && a.links == vec![20, 21]));
    }

    #[test]
    fn hot_streams_reroute_mid_flight_at_most_once() {
        let two_routes = || {
            vec![
                RouteCandidate {
                    nodes: vec![0, 1, 2],
                    links: vec![10, 11],
                },
                RouteCandidate {
                    nodes: vec![0, 3, 2],
                    links: vec![20, 21],
                },
            ]
        };
        let mut ts = TransferScheduler::new(TransferConfig {
            link_bandwidth: 1.0,
            reroute_threshold: 0.1,
            ..TransferConfig::default()
        });
        // two long streams share the primary; severity lags their
        // admission, so both start on links 10/11
        ts.submit(0, spec(1, 200.0), two_routes());
        ts.submit(0, spec(2, 200.0), two_routes());
        assert_eq!(ts.reroutes(), 0, "admission cannot see its own sharing");
        // sustained 2-way sharing integrates queue over elapsed time;
        // the next polls steer the streams onto the colder alternate
        let mut moved = Vec::new();
        for t in [20u64, 40, 60] {
            moved.extend(ts.poll(t).rerouted);
        }
        assert!(!moved.is_empty(), "QCN pressure must reroute a stream");
        assert!(ts.reroutes() >= 1);
        assert!(ts
            .active
            .values()
            .any(|a| a.rerouted && a.links == vec![20, 21]));
        // each stream moves at most once — no ping-pong
        let after = ts.reroutes();
        for t in [80u64, 100, 120] {
            ts.poll(t);
        }
        assert_eq!(ts.reroutes(), after, "reroutes are once per transfer");
    }

    #[test]
    fn cancel_rack_drops_running_and_queued() {
        let cfg = TransferConfig {
            max_concurrent: 1,
            ..TransferConfig::default()
        };
        let mut ts = TransferScheduler::new(cfg);
        let mut s1 = spec(1, 4.0);
        s1.dst_rack = 3;
        let mut s2 = spec(2, 4.0);
        s2.dst_rack = 3;
        ts.submit(0, s1, shared_link());
        ts.submit(0, s2, shared_link());
        let cancelled = ts.cancel_rack(3, 1);
        assert_eq!(cancelled, vec![1, 2]);
        assert!(ts.is_idle());
    }

    #[test]
    fn route_candidates_are_deterministically_ordered() {
        let dcn: Dcn = fattree::build(&FatTreeConfig::paper(4));
        let src = dcn.rack_node(dcn_topology::RackId::from_index(0));
        let dst = dcn.rack_node(dcn_topology::RackId::from_index(5));
        let a = route_candidates(&dcn.graph, src, dst, 4);
        let b = route_candidates(&dcn.graph, src, dst, 4);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // shortest first, and equal-cost candidates in lexicographic
        // node order
        for w in a.windows(2) {
            assert!(
                w[0].links.len() < w[1].links.len()
                    || (w[0].links.len() == w[1].links.len() && w[0].nodes < w[1].nodes)
            );
        }
    }

    #[test]
    fn same_inputs_same_schedule() {
        let run = || {
            let mut ts = TransferScheduler::new(TransferConfig::default());
            let mut log = String::new();
            for i in 0..6 {
                ts.submit(i, spec(i, 8.0 + i as f64), shared_link());
            }
            let mut t = 1;
            while !ts.is_idle() && t < 200 {
                let tick = ts.poll(t);
                for c in &tick.completions {
                    log.push_str(&format!("{}@{}:{:.6};", c.id, t, c.achieved_bw));
                }
                t += 1;
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn histograms_observe_completions() {
        let mut ts = TransferScheduler::new(TransferConfig::default());
        ts.submit(0, spec(1, 8.0), shared_link());
        ts.poll(2);
        assert_eq!(ts.completion_histogram().count(), 1);
        assert_eq!(ts.bandwidth_histogram().count(), 1);
        assert_eq!(ts.completes(), 1);
    }
}

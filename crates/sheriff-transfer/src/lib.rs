//! Network-aware migration transfer scheduling on the event core.
//!
//! Sheriff's cost model (Eqn. 1) prices each pre-copy independently, and
//! the fabric runtime historically settled every committed migration
//! instantaneously. In a real Fat-Tree the pre-copies of concurrent
//! migrations *share links*: two transfers crossing the same core link
//! each get half its bandwidth, and completion times stretch accordingly
//! (Wang et al., "Virtual Machine Migration Planning in SDN"). This crate
//! models exactly that contention, deterministically:
//!
//! * every committed 2PC migration becomes a [`TransferSpec`] with a byte
//!   size derived from the VM's capacity;
//! * a route is chosen from the k-shortest candidate paths
//!   ([`route_candidates`], built on `dcn-topology`'s Yen machinery) with
//!   a deterministic lexicographic tie-break;
//! * concurrent transfers share per-link capacity under
//!   progressive-filling **max-min fairness**, and every admission or
//!   completion recomputes all rates and re-schedules each transfer's
//!   completion time;
//! * each shared link runs a QCN congestion point (`dcn-sim`); when the
//!   primary route's worst-link severity crosses
//!   [`TransferConfig::reroute_threshold`] a new transfer is steered onto
//!   the least-congested alternate (a *reroute*), and a full admission
//!   window ([`TransferConfig::max_concurrent`]) queues it instead.
//!
//! The scheduler is pure virtual-time state: no clocks, no randomness,
//! `BTreeMap` everywhere — same inputs, byte-identical schedules.
//!
//! # Fault tolerance
//!
//! Transfers survive network faults with a deterministic recovery state
//! machine (`Streaming → Stalled → Resumed/Retried → Completed/Failed`):
//!
//! * [`fail_link`](TransferScheduler::fail_link) — a stream whose route
//!   loses a link is steered onto the first surviving candidate path
//!   (max-min shares recompute fleet-wide), or enters **Stalled** when no
//!   viable path exists;
//! * progress is **checkpointed**: bytes copied before the fault are
//!   retained, and a resumed or re-routed stream continues from its
//!   checkpoint plus a [`TransferConfig::dirty_rate`] re-copy penalty
//!   (iterative pre-copy semantics) instead of restarting from zero;
//! * a stalled stream retries on exponential backoff with deterministic
//!   jitter (the same discipline as the fabric's retransmission policy);
//!   exhausting [`TransferConfig::max_attempts`] yields a
//!   [`Failed`] record the caller escalates to a clean 2PC abort.
//!
//! With no failed links every recovery path is inert: the schedule is
//! byte-identical to the fault-oblivious scheduler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dcn_sim::qcn::{CongestionPoint, CpConfig};
use dcn_topology::graph::{EdgeIdx, NetGraph, NodeIdx};
use dcn_topology::ksp::k_shortest_paths;
use serde::{Deserialize, Serialize};
use sheriff_obs::Histogram;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Residual-byte tolerance: below this a transfer counts as finished.
const EPS: f64 = 1e-9;
/// Floor on a computed rate so completion times stay finite.
const MIN_RATE: f64 = 1e-6;

/// How a transfer picks among its k candidate routes at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RouteStrategy {
    /// Take the shortest candidate unless QCN severity on it exceeds the
    /// reroute threshold; then the first under-threshold alternate (or
    /// the least-severe candidate when all are hot).
    #[default]
    Shortest,
    /// Always take the candidate whose busiest link carries the fewest
    /// concurrent transfers (ties: fewer hops, then candidate order).
    LeastLoaded,
}

/// Knobs for the transfer scheduler. `None` on
/// `FabricConfig::transfer` disables the model entirely (instantaneous
/// settlement, byte-identical to the pre-transfer fabric).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferConfig {
    /// Migration-lane capacity of every link, in bytes per virtual tick.
    pub link_bandwidth: f64,
    /// Bytes of pre-copy traffic per unit of VM capacity (Eqn. 1's
    /// `m.capacity` scaled into transferable bytes).
    pub bytes_per_capacity: f64,
    /// Admission cap on concurrently running transfers; `0` = unlimited.
    pub max_concurrent: usize,
    /// Number of k-shortest-path route candidates computed per transfer.
    pub k_paths: usize,
    /// Route selection policy at admission.
    pub route_strategy: RouteStrategy,
    /// QCN severity in `[0, 1]` above which the primary route is
    /// abandoned for an alternate (a `TransferRerouted` event).
    pub reroute_threshold: f64,
    /// Fraction of already-copied bytes re-dirtied by a fault: a stream
    /// re-routed or resumed after a link failure re-copies
    /// `dirty_rate × copied` bytes on top of its checkpoint (iterative
    /// pre-copy semantics). `0.0` = perfect checkpoint, `1.0` = restart.
    #[serde(default = "default_dirty_rate")]
    pub dirty_rate: f64,
    /// Base of the stalled-stream retry backoff in ticks: retry `n`
    /// fires after `stall_budget · 2ⁿ` ticks (capped at 8× the budget)
    /// plus a deterministic jitter in `[0, stall_budget)`.
    #[serde(default = "default_stall_budget")]
    pub stall_budget: u64,
    /// Retry attempts a stalled stream gets before it fails for good
    /// and the caller must abort its transaction.
    #[serde(default = "default_max_attempts")]
    pub max_attempts: u32,
}

fn default_dirty_rate() -> f64 {
    0.25
}

fn default_stall_budget() -> u64 {
    16
}

fn default_max_attempts() -> u32 {
    4
}

impl Default for TransferConfig {
    fn default() -> Self {
        Self {
            link_bandwidth: 4.0,
            bytes_per_capacity: 8.0,
            max_concurrent: 0,
            k_paths: 4,
            route_strategy: RouteStrategy::Shortest,
            reroute_threshold: 0.25,
            dirty_rate: default_dirty_rate(),
            stall_budget: default_stall_budget(),
            max_attempts: default_max_attempts(),
        }
    }
}

/// One route candidate: the links it crosses, in path order.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteCandidate {
    /// Node sequence, inclusive of both endpoints.
    pub nodes: Vec<NodeIdx>,
    /// Edge indices along the path.
    pub links: Vec<EdgeIdx>,
}

impl RouteCandidate {
    /// Hop count of the candidate.
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// Compute up to `k` candidate routes between two topology nodes,
/// shortest first, with a deterministic tie-break: equal-cost paths are
/// ordered lexicographically by node sequence, so the same topology
/// always yields the same candidate list regardless of internal search
/// order.
pub fn route_candidates(g: &NetGraph, src: NodeIdx, dst: NodeIdx, k: usize) -> Vec<RouteCandidate> {
    let mut paths = k_shortest_paths(g, src, dst, k.max(1), |_| 1.0);
    paths.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.nodes.cmp(&b.nodes))
    });
    paths
        .into_iter()
        .map(|p| RouteCandidate {
            links: p.edges(g),
            nodes: p.nodes,
        })
        .collect()
}

/// What the caller submits: one committed migration's pre-copy.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferSpec {
    /// Caller-chosen identifier (the fabric uses the 2PC request id).
    pub id: u64,
    /// The VM being moved, as a plain index.
    pub vm: u64,
    /// Destination rack index; a rack crash cancels transfers bound for
    /// it via [`TransferScheduler::cancel_rack`].
    pub dst_rack: usize,
    /// Total pre-copy volume in bytes.
    pub bytes: f64,
}

/// Outcome of [`TransferScheduler::submit`].
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// The transfer is running; rates were recomputed fleet-wide.
    Started(Started),
    /// The concurrency cap is reached; the transfer waits in FIFO order
    /// and starts from a later [`TransferScheduler::poll`].
    Queued,
}

/// A transfer that just began streaming.
#[derive(Debug, Clone, PartialEq)]
pub struct Started {
    /// Caller identifier.
    pub id: u64,
    /// The VM being moved.
    pub vm: u64,
    /// Pre-copy volume in bytes.
    pub bytes: f64,
    /// Hop count of the chosen route (0 for an intra-rack move).
    pub hops: usize,
    /// Max-min fair rate granted at admission, bytes per tick.
    pub rate: f64,
    /// Whether congestion steered it off the primary candidate.
    pub rerouted: bool,
    /// Ticks spent waiting in the admission queue.
    pub waited: u64,
    /// Admitted straight into `Stalled` because every candidate route
    /// crosses a failed link; it streams nothing until a restore or
    /// retry finds a path.
    pub stalled: bool,
}

/// A transfer that finished streaming its last byte.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Caller identifier.
    pub id: u64,
    /// The VM that finished moving.
    pub vm: u64,
    /// Pre-copy volume in bytes.
    pub bytes: f64,
    /// Wall ticks from admission to completion (≥ 1).
    pub duration: u64,
    /// Achieved bandwidth `bytes / duration`.
    pub achieved_bw: f64,
}

/// A streaming transfer steered onto an alternate route by QCN
/// congestion feedback mid-flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Rerouted {
    /// Caller identifier.
    pub id: u64,
    /// The VM being moved.
    pub vm: u64,
    /// Hop count of the new route.
    pub hops: usize,
}

/// A stream that lost its route to a link failure and found no surviving
/// candidate: it holds its checkpoint and waits on the retry backoff.
#[derive(Debug, Clone, PartialEq)]
pub struct Stalled {
    /// Caller identifier.
    pub id: u64,
    /// The VM being moved.
    pub vm: u64,
    /// The failed link that severed its route.
    pub link: EdgeIdx,
}

/// A stalled stream that found a viable route again and resumed from its
/// checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Resumed {
    /// Caller identifier.
    pub id: u64,
    /// The VM being moved.
    pub vm: u64,
    /// Bytes the checkpoint spared it from re-copying (copied before the
    /// fault, minus the dirty re-copy penalty).
    pub saved: f64,
    /// Ticks spent stalled before the resume.
    pub stalled_ticks: u64,
}

/// A stalled stream's retry timer fired; it probed for a surviving route.
#[derive(Debug, Clone, PartialEq)]
pub struct Retried {
    /// Caller identifier.
    pub id: u64,
    /// The VM being moved.
    pub vm: u64,
    /// Retry attempts used so far (1-based).
    pub attempt: u32,
}

/// A stalled stream that exhausted its retry budget: the transfer is
/// gone and the caller must abort its 2PC transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Failed {
    /// Caller identifier.
    pub id: u64,
    /// The VM that failed to move.
    pub vm: u64,
    /// Retry attempts consumed before giving up.
    pub attempts: u32,
}

/// Everything one [`TransferScheduler::fail_link`] call did to the
/// in-flight fleet.
#[derive(Debug, Clone, Default)]
pub struct LinkOutcome {
    /// Streams that lost their route and found no surviving candidate.
    pub stalled: Vec<Stalled>,
    /// Streams steered onto a surviving candidate path (checkpoint kept,
    /// dirty penalty applied).
    pub rerouted: Vec<Rerouted>,
}

/// Everything that happened at one [`TransferScheduler::poll`].
#[derive(Debug, Clone, Default)]
pub struct TransferTick {
    /// Transfers that finished at this tick.
    pub completions: Vec<Completion>,
    /// Queued transfers admitted now that capacity freed up.
    pub started: Vec<Started>,
    /// Streams QCN pressure moved onto an alternate route this tick.
    pub rerouted: Vec<Rerouted>,
    /// Stalled streams whose retry timer fired this tick.
    pub retried: Vec<Retried>,
    /// Stalled streams that found a route on retry and resumed.
    pub resumed: Vec<Resumed>,
    /// Stalled streams that exhausted their retry budget this tick.
    pub failed: Vec<Failed>,
}

impl TransferTick {
    /// True when the poll neither completed, admitted, rerouted,
    /// retried, resumed, nor failed anything.
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty()
            && self.started.is_empty()
            && self.rerouted.is_empty()
            && self.retried.is_empty()
            && self.resumed.is_empty()
            && self.failed.is_empty()
    }
}

/// An in-flight transfer.
#[derive(Debug, Clone)]
struct Active {
    vm: u64,
    dst_rack: usize,
    bytes: f64,
    remaining: f64,
    links: Vec<EdgeIdx>,
    hops: usize,
    rate: f64,
    rate_since: u64,
    started_at: u64,
    rerouted: bool,
    /// Remaining route alternatives, kept so QCN pressure can steer the
    /// stream mid-flight.
    candidates: Vec<RouteCandidate>,
    /// `Some(tick)` while stalled on a link failure: streaming no bytes,
    /// waiting for a restore or the retry timer.
    stalled_since: Option<u64>,
    /// When the stalled retry timer fires (meaningless while streaming).
    retry_at: u64,
    /// Retry attempts consumed over the transfer's lifetime.
    attempt: u32,
}

/// A transfer parked behind the admission cap.
#[derive(Debug, Clone)]
struct Queued {
    spec: TransferSpec,
    candidates: Vec<RouteCandidate>,
    since: u64,
}

/// Deterministic bandwidth-sharing transfer scheduler.
///
/// Drive it from an event loop: [`submit`](Self::submit) at each 2PC
/// COMMIT, [`poll`](Self::poll) at every activated tick, and schedule a
/// wake at [`next_event_time`](Self::next_event_time). All state is
/// ordered (`BTreeMap`) and advanced only by the virtual times passed
/// in, so identical call sequences produce identical schedules.
#[derive(Debug, Clone)]
pub struct TransferScheduler {
    cfg: TransferConfig,
    active: BTreeMap<u64, Active>,
    queue: VecDeque<Queued>,
    /// Per-link QCN congestion points, keyed by edge index.
    cps: BTreeMap<EdgeIdx, CongestionPoint>,
    /// Concurrent users per link as of the last recompute.
    link_users: BTreeMap<EdgeIdx, usize>,
    completes_at: BTreeMap<u64, u64>,
    /// Virtual time of the last QCN sampling interval.
    sampled_at: u64,
    peak_sharing: usize,
    reroutes: usize,
    queue_delays: usize,
    starts: usize,
    completes: usize,
    completion_hist: Histogram,
    bandwidth_hist: Histogram,
    /// Links currently failed; routes crossing any of these are not
    /// viable. Empty ⇒ every recovery path below is inert.
    failed_links: BTreeSet<EdgeIdx>,
    stalls: usize,
    resumes: usize,
    retries: usize,
    failures: usize,
    saved_bytes: f64,
    stall_hist: Histogram,
}

impl TransferScheduler {
    /// A scheduler with no transfers in flight.
    pub fn new(cfg: TransferConfig) -> Self {
        Self {
            cfg,
            active: BTreeMap::new(),
            queue: VecDeque::new(),
            cps: BTreeMap::new(),
            link_users: BTreeMap::new(),
            completes_at: BTreeMap::new(),
            sampled_at: 0,
            peak_sharing: 0,
            reroutes: 0,
            queue_delays: 0,
            starts: 0,
            completes: 0,
            completion_hist: Histogram::exponential(1.0, 2.0, 16),
            bandwidth_hist: Histogram::exponential(0.125, 2.0, 12),
            failed_links: BTreeSet::new(),
            stalls: 0,
            resumes: 0,
            retries: 0,
            failures: 0,
            saved_bytes: 0.0,
            stall_hist: Histogram::exponential(1.0, 2.0, 16),
        }
    }

    /// The knobs this scheduler was built with.
    pub fn config(&self) -> &TransferConfig {
        &self.cfg
    }

    fn capacity(&self) -> f64 {
        if self.cfg.link_bandwidth > 0.0 {
            self.cfg.link_bandwidth
        } else {
            1.0
        }
    }

    /// No transfers running and none queued.
    pub fn is_idle(&self) -> bool {
        self.active.is_empty() && self.queue.is_empty()
    }

    /// Count of currently running transfers.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Count of transfers waiting behind the admission cap.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// VM indices with a pre-copy running or queued; the planner must
    /// not re-plan these as source or destination mid-transfer.
    pub fn in_flight_vms(&self) -> BTreeSet<u64> {
        self.active
            .values()
            .map(|a| a.vm)
            .chain(self.queue.iter().map(|q| q.spec.vm))
            .collect()
    }

    /// Peak number of transfers that ever shared one link.
    pub fn peak_link_sharing(&self) -> usize {
        self.peak_sharing
    }

    /// Transfers steered off their primary route by congestion.
    pub fn reroutes(&self) -> usize {
        self.reroutes
    }

    /// Admissions delayed by the concurrency cap.
    pub fn queue_delays(&self) -> usize {
        self.queue_delays
    }

    /// Transfers admitted so far.
    pub fn starts(&self) -> usize {
        self.starts
    }

    /// Transfers completed so far.
    pub fn completes(&self) -> usize {
        self.completes
    }

    /// Histogram of completion times in ticks.
    pub fn completion_histogram(&self) -> &Histogram {
        &self.completion_hist
    }

    /// Histogram of achieved per-transfer bandwidth in bytes/tick.
    pub fn bandwidth_histogram(&self) -> &Histogram {
        &self.bandwidth_hist
    }

    /// Streams that entered `Stalled` after losing their route.
    pub fn stalls(&self) -> usize {
        self.stalls
    }

    /// Stalled streams that found a route again and resumed.
    pub fn resumes(&self) -> usize {
        self.resumes
    }

    /// Stalled retry timers fired.
    pub fn retries(&self) -> usize {
        self.retries
    }

    /// Transfers that exhausted their retry budget and must be aborted
    /// by the caller. Rack-crash cancellations are not counted here —
    /// the caller decides whether a cancellation is terminal (see
    /// [`TransferScheduler::cancel_rack`]).
    pub fn failures(&self) -> usize {
        self.failures
    }

    /// Checkpointed bytes resumed streams did *not* have to re-copy
    /// (copied before the fault, minus the dirty re-copy penalty).
    pub fn resumed_bytes_saved(&self) -> f64 {
        self.saved_bytes
    }

    /// Histogram of stall durations in ticks (recorded at resume).
    pub fn stall_histogram(&self) -> &Histogram {
        &self.stall_hist
    }

    /// The links currently marked failed.
    pub fn failed_link_set(&self) -> &BTreeSet<EdgeIdx> {
        &self.failed_links
    }

    /// Ids of every active transfer (streaming or stalled), in order.
    /// The fabric's auditor checks each against the intent journal.
    pub fn active_ids(&self) -> Vec<u64> {
        self.active.keys().copied().collect()
    }

    /// Invariant probe: streams still *streaming* (not stalled) whose
    /// route crosses a failed link. Always empty unless the recovery
    /// machinery has a bug; each entry is `(id, offending link)`.
    pub fn streaming_on_failed_links(&self) -> Vec<(u64, EdgeIdx)> {
        let mut hits = Vec::new();
        for (&id, a) in &self.active {
            if a.stalled_since.is_some() {
                continue;
            }
            if let Some(&l) = a.links.iter().find(|l| self.failed_links.contains(l)) {
                hits.push((id, l));
            }
        }
        hits
    }

    /// Earliest tick at which a running transfer completes or a stalled
    /// one retries, under current rates. `None` when nothing is running
    /// (a non-empty queue still needs a wake: poll again next tick to
    /// admit it).
    pub fn next_event_time(&self) -> Option<u64> {
        let next_retry = self
            .active
            .values()
            .filter(|a| a.stalled_since.is_some())
            .map(|a| a.retry_at)
            .min();
        match (self.completes_at.values().min().copied(), next_retry) {
            (Some(c), Some(r)) => Some(c.min(r)),
            (c, r) => c.or(r),
        }
    }

    /// A route is viable when none of its links are currently failed.
    fn viable(&self, links: &[EdgeIdx]) -> bool {
        self.failed_links.is_empty() || !links.iter().any(|l| self.failed_links.contains(l))
    }

    /// Exponential backoff with deterministic jitter for a stalled
    /// stream's retry `attempt` (0-based) — the same discipline as the
    /// fabric's retransmission policy, hashed over `(id, attempt)` with
    /// SplitMix64 so concurrent stalls don't retry in lockstep.
    fn retry_delay(&self, attempt: u32, id: u64) -> u64 {
        let base = self.cfg.stall_budget.max(1);
        let exp = base
            .saturating_mul(1u64 << attempt.min(16))
            .min(base.saturating_mul(8));
        let jitter = if base > 1 {
            let mut z = id ^ ((attempt as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) % base
        } else {
            0
        };
        exp + jitter
    }

    /// Submit a pre-copy at COMMIT time. `candidates` come from
    /// [`route_candidates`]; an empty list means an intra-rack move that
    /// crosses no shared links. Duplicate ids are rejected as `Queued`
    /// never — the caller deduplicates by request id.
    pub fn submit(
        &mut self,
        now: u64,
        spec: TransferSpec,
        candidates: Vec<RouteCandidate>,
    ) -> Admission {
        self.settle(now);
        if self.cfg.max_concurrent > 0 && self.active.len() >= self.cfg.max_concurrent {
            self.queue_delays += 1;
            self.queue.push_back(Queued {
                spec,
                candidates,
                since: now,
            });
            return Admission::Queued;
        }
        let id = spec.id;
        self.admit(now, spec, &candidates);
        self.recompute(now);
        Admission::Started(self.started_info(id, 0))
    }

    /// Insert an Active entry with its route chosen; rates are stale
    /// until the caller recomputes. When every candidate crosses a
    /// failed link the transfer is admitted straight into `Stalled`.
    fn admit(&mut self, now: u64, spec: TransferSpec, candidates: &[RouteCandidate]) {
        self.starts += 1;
        match self.choose_route(candidates) {
            Some((links, hops, rerouted)) => {
                if rerouted {
                    self.reroutes += 1;
                }
                self.active.insert(
                    spec.id,
                    Active {
                        vm: spec.vm,
                        dst_rack: spec.dst_rack,
                        bytes: spec.bytes,
                        remaining: spec.bytes.max(0.0),
                        links,
                        hops,
                        rate: self.capacity(),
                        rate_since: now,
                        started_at: now,
                        rerouted,
                        candidates: candidates.to_vec(),
                        stalled_since: None,
                        retry_at: 0,
                        attempt: 0,
                    },
                );
            }
            None => {
                self.stalls += 1;
                let retry_at = now + self.retry_delay(0, spec.id);
                self.active.insert(
                    spec.id,
                    Active {
                        vm: spec.vm,
                        dst_rack: spec.dst_rack,
                        bytes: spec.bytes,
                        remaining: spec.bytes.max(0.0),
                        links: Vec::new(),
                        hops: 0,
                        rate: 0.0,
                        rate_since: now,
                        started_at: now,
                        rerouted: false,
                        candidates: candidates.to_vec(),
                        stalled_since: Some(now),
                        retry_at,
                        attempt: 0,
                    },
                );
            }
        }
    }

    /// Worst QCN severity along a set of links.
    fn severity_of_links(&self, links: &[EdgeIdx]) -> f64 {
        links
            .iter()
            .map(|l| self.cps.get(l).map_or(0.0, CongestionPoint::severity))
            .fold(0.0, f64::max)
    }

    /// Worst QCN severity along a candidate.
    fn severity_of(&self, c: &RouteCandidate) -> f64 {
        self.severity_of_links(&c.links)
    }

    /// Pick a route among the candidates that avoid every failed link;
    /// returns `(links, hops, rerouted)`, or `None` when candidates
    /// exist but all cross a failed link (the caller stalls the
    /// transfer). An empty candidate list is an intra-rack move that
    /// crosses no shared links.
    fn choose_route(&self, candidates: &[RouteCandidate]) -> Option<(Vec<EdgeIdx>, usize, bool)> {
        if candidates.is_empty() {
            return Some((Vec::new(), 0, false));
        }
        let idxs: Vec<usize> = (0..candidates.len())
            .filter(|&i| candidates.get(i).is_some_and(|c| self.viable(&c.links)))
            .collect();
        let (&first, rest) = idxs.split_first()?;
        let primary = candidates.get(first)?;
        let pick = |i: usize| {
            candidates
                .get(i)
                .map(|c| (c.links.clone(), c.hops(), i != 0))
                .unwrap_or_else(|| (primary.links.clone(), primary.hops(), first != 0))
        };
        match self.cfg.route_strategy {
            RouteStrategy::Shortest => {
                let thr = self.cfg.reroute_threshold;
                if self.severity_of(primary) <= thr {
                    return Some(pick(first));
                }
                // primary is hot: first alternate under threshold, else
                // the least-severe candidate overall
                for &i in rest {
                    if candidates
                        .get(i)
                        .is_some_and(|c| self.severity_of(c) <= thr)
                    {
                        return Some(pick(i));
                    }
                }
                let mut best = first;
                let mut best_sev = self.severity_of(primary);
                for &i in rest {
                    let Some(c) = candidates.get(i) else { continue };
                    let s = self.severity_of(c);
                    if s < best_sev - EPS {
                        best = i;
                        best_sev = s;
                    }
                }
                Some(pick(best))
            }
            RouteStrategy::LeastLoaded => {
                let load = |c: &RouteCandidate| {
                    c.links
                        .iter()
                        .map(|l| self.link_users.get(l).copied().unwrap_or(0))
                        .max()
                        .unwrap_or(0)
                };
                let mut best = first;
                let mut key = (load(primary), primary.hops());
                for &i in rest {
                    let Some(c) = candidates.get(i) else { continue };
                    let k = (load(c), c.hops());
                    if k < key {
                        best = i;
                        key = k;
                    }
                }
                Some(pick(best))
            }
        }
    }

    fn started_info(&self, id: u64, waited: u64) -> Started {
        match self.active.get(&id) {
            Some(a) => Started {
                id,
                vm: a.vm,
                bytes: a.bytes,
                hops: a.hops,
                rate: a.rate,
                rerouted: a.rerouted,
                waited,
                stalled: a.stalled_since.is_some(),
            },
            // unreachable: callers only ask about ids they just admitted
            None => Started {
                id,
                vm: 0,
                bytes: 0.0,
                hops: 0,
                rate: 0.0,
                rerouted: false,
                waited,
                stalled: false,
            },
        }
    }

    /// Advance every running transfer's residual bytes to `now`.
    fn settle(&mut self, now: u64) {
        for a in self.active.values_mut() {
            let dt = now.saturating_sub(a.rate_since);
            if dt > 0 {
                a.remaining = (a.remaining - a.rate * dt as f64).max(0.0);
                a.rate_since = now;
            }
        }
    }

    /// Progressive-filling max-min fairness: repeatedly grant every
    /// unfrozen transfer the smallest per-link fair share, freeze the
    /// transfers crossing the saturated link(s), subtract their share,
    /// and continue until all transfers are frozen. Also advances each
    /// used link's QCN congestion point by one sampling interval
    /// (demand = users × capacity in, capacity out) and re-schedules
    /// every completion time.
    fn recompute(&mut self, now: u64) {
        let cap = self.capacity();
        let mut users: BTreeMap<EdgeIdx, Vec<u64>> = BTreeMap::new();
        for (&id, a) in &self.active {
            if a.stalled_since.is_some() {
                continue;
            }
            for &l in &a.links {
                users.entry(l).or_default().push(id);
            }
        }
        let mut avail: BTreeMap<EdgeIdx, f64> = users.keys().map(|&l| (l, cap)).collect();
        let mut unfrozen: BTreeSet<u64> = self
            .active
            .iter()
            .filter(|(_, a)| !a.links.is_empty())
            .map(|(&id, _)| id)
            .collect();
        let mut rates: BTreeMap<u64, f64> = BTreeMap::new();
        while !unfrozen.is_empty() {
            let mut share = f64::INFINITY;
            for (l, us) in &users {
                let n = us.iter().filter(|id| unfrozen.contains(id)).count();
                if n > 0 {
                    share = share.min(avail.get(l).copied().unwrap_or(0.0) / n as f64);
                }
            }
            if !share.is_finite() {
                break;
            }
            let mut frozen_now: BTreeSet<u64> = BTreeSet::new();
            for (l, us) in &users {
                let n = us.iter().filter(|id| unfrozen.contains(id)).count();
                if n > 0 && avail.get(l).copied().unwrap_or(0.0) / n as f64 <= share + EPS {
                    frozen_now.extend(us.iter().filter(|id| unfrozen.contains(id)));
                }
            }
            if frozen_now.is_empty() {
                break;
            }
            for &id in &frozen_now {
                rates.insert(id, share);
                if let Some(a) = self.active.get(&id) {
                    for &l in &a.links {
                        if let Some(v) = avail.get_mut(&l) {
                            *v = (*v - share).max(0.0);
                        }
                    }
                }
                unfrozen.remove(&id);
            }
        }
        let peak = users.values().map(Vec::len).max().unwrap_or(0);
        self.peak_sharing = self.peak_sharing.max(peak);
        self.link_users = users.iter().map(|(&l, us)| (l, us.len())).collect();
        // one QCN sampling interval per recompute, scaled by the
        // virtual time elapsed since the last one so queues integrate
        // demand over long streaming stretches (clamped to >= 1 so
        // same-tick admission bursts still build pressure): used links
        // see their aggregate demand, idle links drain
        let dt = now.saturating_sub(self.sampled_at).max(1) as f64;
        self.sampled_at = now;
        let sampled: BTreeSet<EdgeIdx> = users
            .keys()
            .copied()
            .chain(self.cps.keys().copied())
            .collect();
        for l in sampled {
            let n = self.link_users.get(&l).copied().unwrap_or(0);
            let cp = self
                .cps
                .entry(l)
                .or_insert_with(|| CongestionPoint::new(CpConfig::default()));
            let _ = cp.sample(n as f64 * cap * dt, cap * dt);
        }
        self.completes_at.clear();
        for (&id, a) in self.active.iter_mut() {
            if a.stalled_since.is_some() {
                // stalled: streams nothing, completes never; its wake is
                // the retry timer, not a completion time
                a.rate = 0.0;
                a.rate_since = now;
                continue;
            }
            a.rate = if a.links.is_empty() {
                cap
            } else {
                rates.get(&id).copied().unwrap_or(cap).max(MIN_RATE)
            };
            a.rate_since = now;
            let ticks = if a.remaining <= EPS {
                1
            } else {
                let t = (a.remaining / a.rate).ceil();
                if t >= 1.0 {
                    t as u64
                } else {
                    1
                }
            };
            self.completes_at.insert(id, now + ticks);
        }
    }

    /// Advance to `now`: harvest completions, admit queued transfers
    /// into freed slots, and recompute the bandwidth shares. Call at
    /// every activated tick; the scheduler never completes a transfer
    /// in the same tick it was admitted.
    pub fn poll(&mut self, now: u64) -> TransferTick {
        self.settle(now);
        let (retried, resumed, failed) = self.fire_retries(now);
        let done: Vec<u64> = self
            .active
            .iter()
            .filter(|(_, a)| a.stalled_since.is_none() && a.remaining <= EPS && a.started_at < now)
            .map(|(&id, _)| id)
            .collect();
        let mut completions = Vec::new();
        for id in done {
            if let Some(a) = self.active.remove(&id) {
                self.completes_at.remove(&id);
                let duration = (now - a.started_at).max(1);
                let achieved = a.bytes / duration as f64;
                self.completion_hist.record(duration as f64);
                self.bandwidth_hist.record(achieved);
                self.completes += 1;
                completions.push(Completion {
                    id,
                    vm: a.vm,
                    bytes: a.bytes,
                    duration,
                    achieved_bw: achieved,
                });
            }
        }
        let mut admitted: Vec<(u64, u64)> = Vec::new();
        while (self.cfg.max_concurrent == 0 || self.active.len() < self.cfg.max_concurrent)
            && !self.queue.is_empty()
        {
            if let Some(q) = self.queue.pop_front() {
                let id = q.spec.id;
                let waited = now.saturating_sub(q.since);
                self.admit(now, q.spec, &q.candidates);
                admitted.push((id, waited));
            }
        }
        let rerouted = self.reroute_hot_streams();
        self.recompute(now);
        let started = admitted
            .into_iter()
            .map(|(id, waited)| self.started_info(id, waited))
            .collect();
        TransferTick {
            completions,
            started,
            rerouted,
            retried,
            resumed,
            failed,
        }
    }

    /// Fire every stalled stream's due retry timer: each one probes for
    /// a surviving route (resuming from its checkpoint on success),
    /// backs off again, or — out of attempts — fails for good.
    #[allow(clippy::type_complexity)]
    fn fire_retries(&mut self, now: u64) -> (Vec<Retried>, Vec<Resumed>, Vec<Failed>) {
        let mut retried = Vec::new();
        let mut resumed = Vec::new();
        let mut failed = Vec::new();
        let due: Vec<u64> = self
            .active
            .iter()
            .filter(|(_, a)| a.stalled_since.is_some() && a.retry_at <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            let Some((vm, attempt)) = self.active.get_mut(&id).map(|a| {
                a.attempt += 1;
                (a.vm, a.attempt)
            }) else {
                continue;
            };
            self.retries += 1;
            retried.push(Retried { id, vm, attempt });
            if let Some(r) = self.try_resume(now, id) {
                resumed.push(r);
            } else if attempt >= self.cfg.max_attempts.max(1) {
                self.active.remove(&id);
                self.completes_at.remove(&id);
                self.failures += 1;
                failed.push(Failed {
                    id,
                    vm,
                    attempts: attempt,
                });
            } else {
                let delay = self.retry_delay(attempt, id);
                if let Some(a) = self.active.get_mut(&id) {
                    a.retry_at = now + delay;
                }
            }
        }
        (retried, resumed, failed)
    }

    /// Resume one stalled stream if any of its candidates avoids every
    /// failed link. Rates stay stale until the caller recomputes.
    fn try_resume(&mut self, now: u64, id: u64) -> Option<Resumed> {
        let (links, hops) = {
            let a = self.active.get(&id)?;
            a.stalled_since?;
            a.candidates
                .iter()
                .find(|c| self.viable(&c.links))
                .map(|c| (c.links.clone(), c.hops()))?
        };
        let a = self.active.get_mut(&id)?;
        let since = a.stalled_since.take().unwrap_or(now);
        a.links = links;
        a.hops = hops;
        let stalled_ticks = now.saturating_sub(since);
        let saved = (a.bytes - a.remaining).max(0.0);
        let vm = a.vm;
        self.saved_bytes += saved;
        self.stall_hist.record(stalled_ticks.max(1) as f64);
        self.resumes += 1;
        Some(Resumed {
            id,
            vm,
            saved,
            stalled_ticks,
        })
    }

    /// A link failed: every stream routed over it takes the dirty
    /// re-copy penalty against its checkpoint, then is steered onto the
    /// first surviving candidate path — or enters `Stalled` (rate zero,
    /// retry backoff armed) when no candidate avoids the failed links.
    pub fn fail_link(&mut self, now: u64, link: EdgeIdx) -> LinkOutcome {
        self.settle(now);
        let mut out = LinkOutcome::default();
        if !self.failed_links.insert(link) {
            return out; // already failed: nothing newly severed
        }
        let hit: Vec<u64> = self
            .active
            .iter()
            .filter(|(_, a)| a.stalled_since.is_none() && a.links.contains(&link))
            .map(|(&id, _)| id)
            .collect();
        if hit.is_empty() {
            return out;
        }
        let dirty = self.cfg.dirty_rate.clamp(0.0, 1.0);
        for id in hit {
            // iterative pre-copy: the fault re-dirties a fraction of the
            // copied bytes; the rest of the checkpoint survives
            if let Some(a) = self.active.get_mut(&id) {
                let copied = (a.bytes - a.remaining).max(0.0);
                a.remaining = (a.remaining + dirty * copied).min(a.bytes.max(0.0));
            }
            let choice = self.active.get(&id).and_then(|a| {
                a.candidates
                    .iter()
                    .find(|c| self.viable(&c.links))
                    .map(|c| (c.links.clone(), c.hops()))
            });
            match choice {
                Some((links, hops)) => {
                    if let Some(a) = self.active.get_mut(&id) {
                        a.links = links;
                        a.hops = hops;
                        self.reroutes += 1;
                        out.rerouted.push(Rerouted { id, vm: a.vm, hops });
                    }
                }
                None => {
                    let delay = self.retry_delay(self.active.get(&id).map_or(0, |a| a.attempt), id);
                    if let Some(a) = self.active.get_mut(&id) {
                        a.stalled_since = Some(now);
                        a.links = Vec::new();
                        a.hops = 0;
                        a.rate = 0.0;
                        a.retry_at = now + delay;
                        self.completes_at.remove(&id);
                        self.stalls += 1;
                        out.stalled.push(Stalled { id, vm: a.vm, link });
                    }
                }
            }
        }
        self.recompute(now);
        out
    }

    /// A failed link came back: every stalled stream that now has a
    /// viable candidate resumes from its checkpoint.
    pub fn restore_link(&mut self, now: u64, link: EdgeIdx) -> Vec<Resumed> {
        self.settle(now);
        if !self.failed_links.remove(&link) {
            return Vec::new();
        }
        let stalled: Vec<u64> = self
            .active
            .iter()
            .filter(|(_, a)| a.stalled_since.is_some())
            .map(|(&id, _)| id)
            .collect();
        let mut resumed = Vec::new();
        for id in stalled {
            if let Some(r) = self.try_resume(now, id) {
                resumed.push(r);
            }
        }
        if !resumed.is_empty() {
            self.recompute(now);
        }
        resumed
    }

    /// The QCN reaction path for streams already in flight: when a
    /// transfer's current route has gone hot, steer it onto the
    /// coldest strictly-better alternate. Each transfer moves at most
    /// once in its lifetime, so two streams sharing a hot pair of
    /// links settle on disjoint (or jointly chosen) alternates instead
    /// of ping-ponging.
    fn reroute_hot_streams(&mut self) -> Vec<Rerouted> {
        let thr = self.cfg.reroute_threshold;
        let mut moved = Vec::new();
        let ids: Vec<u64> = self.active.keys().copied().collect();
        for id in ids {
            let Some(a) = self.active.get(&id) else {
                continue;
            };
            if a.rerouted || a.links.is_empty() || a.candidates.len() < 2 {
                continue;
            }
            let current = self.severity_of_links(&a.links);
            if current <= thr {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for (i, c) in a.candidates.iter().enumerate() {
                if c.links == a.links || !self.viable(&c.links) {
                    continue;
                }
                let s = self.severity_of(c);
                if s < current - EPS && best.is_none_or(|(_, bs)| s < bs - EPS) {
                    best = Some((i, s));
                }
            }
            let Some((i, _)) = best else {
                continue;
            };
            let Some((links, hops)) = self
                .active
                .get(&id)
                .and_then(|a| a.candidates.get(i))
                .map(|c| (c.links.clone(), c.hops()))
            else {
                continue;
            };
            if let Some(a) = self.active.get_mut(&id) {
                a.links = links;
                a.hops = hops;
                a.rerouted = true;
                self.reroutes += 1;
                moved.push(Rerouted { id, vm: a.vm, hops });
            }
        }
        moved
    }

    /// Cancel one transfer (2PC abort or crash); residual bytes are
    /// discarded and remaining transfers speed up at the next poll.
    pub fn cancel(&mut self, id: u64, now: u64) -> bool {
        self.settle(now);
        let hit = self.active.remove(&id).is_some();
        self.completes_at.remove(&id);
        let before = self.queue.len();
        self.queue.retain(|q| q.spec.id != id);
        let hit = hit || self.queue.len() != before;
        if hit {
            self.recompute(now);
        }
        hit
    }

    /// Cancel every transfer bound for a crashed destination rack;
    /// returns the cancelled ids (running and queued).
    pub fn cancel_rack(&mut self, rack: usize, now: u64) -> Vec<u64> {
        self.settle(now);
        let ids: Vec<u64> = self
            .active
            .iter()
            .filter(|(_, a)| a.dst_rack == rack)
            .map(|(&id, _)| id)
            .collect();
        let mut cancelled = ids;
        for id in &cancelled {
            self.active.remove(id);
            self.completes_at.remove(id);
        }
        let queued: Vec<u64> = self
            .queue
            .iter()
            .filter(|q| q.spec.dst_rack == rack)
            .map(|q| q.spec.id)
            .collect();
        self.queue.retain(|q| q.spec.dst_rack != rack);
        cancelled.extend(queued);
        if !cancelled.is_empty() {
            // NOT counted in `failures`: whether a cancellation is a
            // real failure (no recovery coming) or a restartable blip
            // (the rack replays its journal and the COMMIT retransmits)
            // is the caller's call, not the scheduler's
            self.recompute(now);
        }
        cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::fattree::{self, FatTreeConfig};
    use dcn_topology::Dcn;

    fn spec(id: u64, bytes: f64) -> TransferSpec {
        TransferSpec {
            id,
            vm: id,
            dst_rack: 0,
            bytes,
        }
    }

    fn shared_link() -> Vec<RouteCandidate> {
        vec![RouteCandidate {
            nodes: vec![0, 1],
            links: vec![7],
        }]
    }

    #[test]
    fn solo_transfer_gets_full_bandwidth() {
        let mut ts = TransferScheduler::new(TransferConfig::default());
        let adm = ts.submit(0, spec(1, 8.0), shared_link());
        let Admission::Started(s) = adm else {
            panic!("should start");
        };
        assert!((s.rate - 4.0).abs() < 1e-12);
        assert_eq!(ts.next_event_time(), Some(2));
        let tick = ts.poll(2);
        assert_eq!(tick.completions.len(), 1);
        assert_eq!(tick.completions[0].duration, 2);
        assert!((tick.completions[0].achieved_bw - 4.0).abs() < 1e-12);
        assert!(ts.is_idle());
    }

    #[test]
    fn two_transfers_on_one_link_halve_and_stretch() {
        let mut ts = TransferScheduler::new(TransferConfig::default());
        ts.submit(0, spec(1, 8.0), shared_link());
        ts.submit(0, spec(2, 8.0), shared_link());
        // both now run at 2.0 on the shared link: 4 ticks each
        assert_eq!(ts.next_event_time(), Some(4));
        assert_eq!(ts.peak_link_sharing(), 2);
        let tick = ts.poll(4);
        assert_eq!(tick.completions.len(), 2);
        for c in &tick.completions {
            assert_eq!(c.duration, 4);
            assert!((c.achieved_bw - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn finishing_transfer_speeds_up_the_survivor() {
        let mut ts = TransferScheduler::new(TransferConfig::default());
        ts.submit(0, spec(1, 4.0), shared_link());
        ts.submit(0, spec(2, 8.0), shared_link());
        // shared at 2.0: #1 finishes at t=2 with 0 left, #2 has 4 left
        assert_eq!(ts.next_event_time(), Some(2));
        let tick = ts.poll(2);
        assert_eq!(tick.completions.len(), 1);
        assert_eq!(tick.completions[0].id, 1);
        // survivor back to full rate: 4 bytes / 4.0 = 1 tick
        assert_eq!(ts.next_event_time(), Some(3));
        let tick = ts.poll(3);
        assert_eq!(tick.completions.len(), 1);
        assert_eq!(tick.completions[0].id, 2);
        assert_eq!(tick.completions[0].duration, 3);
    }

    #[test]
    fn disjoint_links_do_not_share() {
        let mut ts = TransferScheduler::new(TransferConfig::default());
        ts.submit(
            0,
            spec(1, 8.0),
            vec![RouteCandidate {
                nodes: vec![0, 1],
                links: vec![3],
            }],
        );
        ts.submit(
            0,
            spec(2, 8.0),
            vec![RouteCandidate {
                nodes: vec![2, 3],
                links: vec![9],
            }],
        );
        assert_eq!(ts.next_event_time(), Some(2));
        assert_eq!(ts.peak_link_sharing(), 1);
    }

    #[test]
    fn max_min_respects_multi_link_bottlenecks() {
        // A crosses links {1}, B crosses {1, 2}, C crosses {2}.
        // Max-min: share on link1 = 2.0 freezes A and B; C then gets the
        // leftover 2.0 + ... on link2: avail 4 - 2 (B) = 2.0.
        let mut ts = TransferScheduler::new(TransferConfig::default());
        ts.submit(
            0,
            spec(1, 8.0),
            vec![RouteCandidate {
                nodes: vec![0, 1],
                links: vec![1],
            }],
        );
        ts.submit(
            0,
            spec(2, 8.0),
            vec![RouteCandidate {
                nodes: vec![0, 2],
                links: vec![1, 2],
            }],
        );
        ts.submit(
            0,
            spec(3, 8.0),
            vec![RouteCandidate {
                nodes: vec![1, 2],
                links: vec![2],
            }],
        );
        // every transfer should land at 2.0: 8 bytes → 4 ticks
        assert_eq!(ts.next_event_time(), Some(4));
        let tick = ts.poll(4);
        assert_eq!(tick.completions.len(), 3);
    }

    #[test]
    fn admission_cap_queues_and_promotes_fifo() {
        let cfg = TransferConfig {
            max_concurrent: 1,
            ..TransferConfig::default()
        };
        let mut ts = TransferScheduler::new(cfg);
        assert!(matches!(
            ts.submit(0, spec(1, 4.0), shared_link()),
            Admission::Started(_)
        ));
        assert!(matches!(
            ts.submit(0, spec(2, 4.0), shared_link()),
            Admission::Queued
        ));
        assert_eq!(ts.queue_delays(), 1);
        // 4 bytes at rate 4.0: #1 completes at t=1 and frees the slot
        let tick = ts.poll(1);
        assert_eq!(tick.completions.len(), 1);
        assert_eq!(tick.completions[0].id, 1);
        assert_eq!(tick.started.len(), 1);
        assert_eq!(tick.started[0].id, 2);
        assert_eq!(tick.started[0].waited, 1);
        assert!(!ts.is_idle());
        let tick = ts.poll(2);
        assert_eq!(tick.completions.len(), 1);
        assert!(ts.is_idle());
    }

    #[test]
    fn sustained_sharing_trips_qcn_and_reroutes() {
        let two_routes = || {
            vec![
                RouteCandidate {
                    nodes: vec![0, 1, 2],
                    links: vec![10, 11],
                },
                RouteCandidate {
                    nodes: vec![0, 3, 2],
                    links: vec![20, 21],
                },
            ]
        };
        let mut ts = TransferScheduler::new(TransferConfig {
            reroute_threshold: 0.2,
            ..TransferConfig::default()
        });
        // hammer the primary: each submit recomputes and samples the
        // QCN points, so severity on links 10/11 climbs
        for i in 0..8 {
            ts.submit(0, spec(i, 64.0), two_routes());
        }
        assert!(ts.reroutes() > 0, "QCN pressure must steer someone away");
        // at least one rerouted transfer runs on the alternate links
        assert!(ts
            .active
            .values()
            .any(|a| a.rerouted && a.links == vec![20, 21]));
    }

    #[test]
    fn hot_streams_reroute_mid_flight_at_most_once() {
        let two_routes = || {
            vec![
                RouteCandidate {
                    nodes: vec![0, 1, 2],
                    links: vec![10, 11],
                },
                RouteCandidate {
                    nodes: vec![0, 3, 2],
                    links: vec![20, 21],
                },
            ]
        };
        let mut ts = TransferScheduler::new(TransferConfig {
            link_bandwidth: 1.0,
            reroute_threshold: 0.1,
            ..TransferConfig::default()
        });
        // two long streams share the primary; severity lags their
        // admission, so both start on links 10/11
        ts.submit(0, spec(1, 200.0), two_routes());
        ts.submit(0, spec(2, 200.0), two_routes());
        assert_eq!(ts.reroutes(), 0, "admission cannot see its own sharing");
        // sustained 2-way sharing integrates queue over elapsed time;
        // the next polls steer the streams onto the colder alternate
        let mut moved = Vec::new();
        for t in [20u64, 40, 60] {
            moved.extend(ts.poll(t).rerouted);
        }
        assert!(!moved.is_empty(), "QCN pressure must reroute a stream");
        assert!(ts.reroutes() >= 1);
        assert!(ts
            .active
            .values()
            .any(|a| a.rerouted && a.links == vec![20, 21]));
        // each stream moves at most once — no ping-pong
        let after = ts.reroutes();
        for t in [80u64, 100, 120] {
            ts.poll(t);
        }
        assert_eq!(ts.reroutes(), after, "reroutes are once per transfer");
    }

    #[test]
    fn cancel_rack_drops_running_and_queued() {
        let cfg = TransferConfig {
            max_concurrent: 1,
            ..TransferConfig::default()
        };
        let mut ts = TransferScheduler::new(cfg);
        let mut s1 = spec(1, 4.0);
        s1.dst_rack = 3;
        let mut s2 = spec(2, 4.0);
        s2.dst_rack = 3;
        ts.submit(0, s1, shared_link());
        ts.submit(0, s2, shared_link());
        let cancelled = ts.cancel_rack(3, 1);
        assert_eq!(cancelled, vec![1, 2]);
        assert!(ts.is_idle());
    }

    #[test]
    fn route_candidates_are_deterministically_ordered() {
        let dcn: Dcn = fattree::build(&FatTreeConfig::paper(4));
        let src = dcn.rack_node(dcn_topology::RackId::from_index(0));
        let dst = dcn.rack_node(dcn_topology::RackId::from_index(5));
        let a = route_candidates(&dcn.graph, src, dst, 4);
        let b = route_candidates(&dcn.graph, src, dst, 4);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // shortest first, and equal-cost candidates in lexicographic
        // node order
        for w in a.windows(2) {
            assert!(
                w[0].links.len() < w[1].links.len()
                    || (w[0].links.len() == w[1].links.len() && w[0].nodes < w[1].nodes)
            );
        }
    }

    #[test]
    fn same_inputs_same_schedule() {
        let run = || {
            let mut ts = TransferScheduler::new(TransferConfig::default());
            let mut log = String::new();
            for i in 0..6 {
                ts.submit(i, spec(i, 8.0 + i as f64), shared_link());
            }
            let mut t = 1;
            while !ts.is_idle() && t < 200 {
                let tick = ts.poll(t);
                for c in &tick.completions {
                    log.push_str(&format!("{}@{}:{:.6};", c.id, t, c.achieved_bw));
                }
                t += 1;
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn histograms_observe_completions() {
        let mut ts = TransferScheduler::new(TransferConfig::default());
        ts.submit(0, spec(1, 8.0), shared_link());
        ts.poll(2);
        assert_eq!(ts.completion_histogram().count(), 1);
        assert_eq!(ts.bandwidth_histogram().count(), 1);
        assert_eq!(ts.completes(), 1);
    }

    #[test]
    fn link_failure_stalls_and_resume_keeps_the_checkpoint() {
        let cfg = TransferConfig {
            stall_budget: 4,
            ..TransferConfig::default()
        };
        let mut ts = TransferScheduler::new(cfg);
        ts.submit(0, spec(1, 8.0), shared_link());
        // one tick at rate 4.0: 4 bytes copied, 4 remain
        let out = ts.fail_link(1, 7);
        assert_eq!(out.stalled.len(), 1, "no alternate route exists");
        assert!(out.rerouted.is_empty());
        assert_eq!(ts.stalls(), 1);
        assert!(ts.streaming_on_failed_links().is_empty());
        // dirty penalty: 25% of the 4 copied bytes re-dirtied → 5 remain
        // and the stream holds at rate zero until a restore or retry
        assert_eq!(ts.next_event_time().map(|t| t >= 5), Some(true));
        let resumed = ts.restore_link(2, 7);
        assert_eq!(resumed.len(), 1);
        let r = &resumed[0];
        assert!((r.saved - 3.0).abs() < 1e-9, "checkpoint saved {}", r.saved);
        assert_eq!(r.stalled_ticks, 1);
        assert_eq!(ts.resumes(), 1);
        assert!((ts.resumed_bytes_saved() - 3.0).abs() < 1e-9);
        assert_eq!(ts.stall_histogram().count(), 1);
        // 5 bytes at 4.0 from t=2: completes at 4 — strictly earlier
        // than a restart-from-zero (8 bytes → t=4 only if restarted at
        // t=2 with ceil(8/4)=2... restart completes at 4 too; assert on
        // bytes, the acceptance criterion) — total re-copied is 5, not 8
        let tick = ts.poll(4);
        assert_eq!(tick.completions.len(), 1);
        assert!(ts.is_idle());
    }

    #[test]
    fn link_failure_reroutes_onto_surviving_candidate() {
        let two_routes = vec![
            RouteCandidate {
                nodes: vec![0, 1, 2],
                links: vec![10, 11],
            },
            RouteCandidate {
                nodes: vec![0, 3, 2],
                links: vec![20, 21],
            },
        ];
        let mut ts = TransferScheduler::new(TransferConfig::default());
        ts.submit(0, spec(1, 8.0), two_routes);
        let out = ts.fail_link(1, 10);
        assert!(out.stalled.is_empty(), "the alternate survives");
        assert_eq!(out.rerouted.len(), 1);
        assert_eq!(out.rerouted[0].hops, 2);
        assert_eq!(ts.stalls(), 0);
        assert!(ts.streaming_on_failed_links().is_empty());
        // checkpoint kept minus the dirty penalty: 4 copied, 1 re-dirtied,
        // 5 remain at rate 4.0 → completes at ceil(5/4)=2 ticks from t=1
        assert_eq!(ts.next_event_time(), Some(3));
        let tick = ts.poll(3);
        assert_eq!(tick.completions.len(), 1);
    }

    #[test]
    fn retry_exhaustion_fails_the_transfer() {
        let cfg = TransferConfig {
            stall_budget: 1,
            max_attempts: 2,
            ..TransferConfig::default()
        };
        let mut ts = TransferScheduler::new(cfg);
        ts.submit(0, spec(1, 8.0), shared_link());
        let out = ts.fail_link(0, 7);
        assert_eq!(out.stalled.len(), 1);
        // stall_budget 1 ⇒ no jitter: retry 1 fires at t=1, backs off
        // to t=3; retry 2 at t=3 exhausts the budget
        let tick = ts.poll(1);
        assert_eq!(tick.retried.len(), 1);
        assert_eq!(tick.retried[0].attempt, 1);
        assert!(tick.failed.is_empty());
        let tick = ts.poll(3);
        assert_eq!(tick.retried.len(), 1);
        assert_eq!(tick.failed.len(), 1);
        assert_eq!(tick.failed[0].attempts, 2);
        assert_eq!(ts.failures(), 1);
        assert_eq!(ts.retries(), 2);
        assert!(ts.is_idle());
    }

    #[test]
    fn retry_resumes_when_route_comes_back_between_polls() {
        let cfg = TransferConfig {
            stall_budget: 1,
            max_attempts: 4,
            ..TransferConfig::default()
        };
        let mut ts = TransferScheduler::new(cfg);
        ts.submit(0, spec(1, 8.0), shared_link());
        ts.fail_link(0, 7);
        // clear the fault without triggering the restore-path resume
        // (restore of a link that was never failed is a no-op)
        assert!(ts.restore_link(1, 99).is_empty());
        ts.failed_links.clear();
        let tick = ts.poll(1);
        assert_eq!(tick.retried.len(), 1);
        assert_eq!(tick.resumed.len(), 1, "retry probe must find the route");
        assert_eq!(ts.resumes(), 1);
        assert!(ts.poll(3).completions.len() == 1);
    }

    #[test]
    fn all_routes_dead_admits_straight_into_stalled() {
        let mut ts = TransferScheduler::new(TransferConfig::default());
        ts.fail_link(0, 7);
        let adm = ts.submit(0, spec(1, 8.0), shared_link());
        let Admission::Started(s) = adm else {
            panic!("should admit");
        };
        assert!(s.stalled, "every route crosses the failed link");
        assert_eq!(s.rate, 0.0);
        assert_eq!(ts.stalls(), 1);
        assert!(!ts.is_idle());
        // restore resumes it from byte zero (nothing copied, nothing saved)
        let resumed = ts.restore_link(2, 7);
        assert_eq!(resumed.len(), 1);
        assert_eq!(resumed[0].saved, 0.0);
        let tick = ts.poll(4);
        assert_eq!(tick.completions.len(), 1);
    }

    #[test]
    fn full_dirty_rate_restarts_from_zero() {
        let cfg = TransferConfig {
            dirty_rate: 1.0,
            ..TransferConfig::default()
        };
        let mut ts = TransferScheduler::new(cfg);
        ts.submit(0, spec(1, 8.0), shared_link());
        ts.fail_link(1, 7); // 4 copied, all re-dirtied
        let resumed = ts.restore_link(2, 7);
        assert_eq!(resumed.len(), 1);
        assert_eq!(resumed[0].saved, 0.0, "dirty_rate 1.0 saves nothing");
    }

    #[test]
    fn failed_links_steer_qcn_reroutes_away() {
        // the QCN mid-flight reroute must never pick a dead alternate
        let two_routes = || {
            vec![
                RouteCandidate {
                    nodes: vec![0, 1, 2],
                    links: vec![10, 11],
                },
                RouteCandidate {
                    nodes: vec![0, 3, 2],
                    links: vec![20, 21],
                },
            ]
        };
        let mut ts = TransferScheduler::new(TransferConfig {
            link_bandwidth: 1.0,
            reroute_threshold: 0.1,
            ..TransferConfig::default()
        });
        ts.submit(0, spec(1, 200.0), two_routes());
        ts.submit(0, spec(2, 200.0), two_routes());
        ts.fail_link(1, 20); // alternate is dead before QCN heats up
        for t in [20u64, 40, 60] {
            ts.poll(t);
        }
        assert!(
            ts.active.values().all(|a| a.links != vec![20, 21]),
            "no stream may sit on the failed alternate"
        );
        assert!(ts.streaming_on_failed_links().is_empty());
    }
}

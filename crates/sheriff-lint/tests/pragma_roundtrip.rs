//! Property test: `pragma::format` and `pragma::parse` are inverses for
//! arbitrary rule codes and reason strings — including reasons full of
//! quotes and backslashes, which the formatter must escape.

use proptest::prelude::*;
use sheriff_lint::lexer::Comment;
use sheriff_lint::pragma;

/// Alphanumeric + `_`, the rule-code alphabet.
const RULE_CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";

/// A hostile palette for reasons: escapes, quotes, parens, unicode.
const REASON_CHARS: &[char] = &[
    'a', 'b', 'z', ' ', '"', '\\', '(', ')', ',', '\'', 'é', '∞', '0', '9', '_', '-', ':',
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn format_parse_round_trips(
        rule_idx in proptest::collection::vec(0usize..RULE_CHARS.len(), 1..8),
        reason_idx in proptest::collection::vec(0usize..REASON_CHARS.len(), 1..24),
        line in 1u32..10_000,
    ) {
        let rule: String = rule_idx
            .iter()
            .filter_map(|&i| RULE_CHARS.get(i).map(|&b| b as char))
            .collect();
        let reason: String = reason_idx
            .iter()
            .filter_map(|&i| REASON_CHARS.get(i).copied())
            .collect();
        // the formatter never emits an empty reason; skip all-space ones
        prop_assume!(!reason.trim().is_empty());

        let text = pragma::format(&rule, &reason);
        let comment = Comment { text, line, col: 1 };
        let parsed = pragma::parse(&comment);
        prop_assert!(
            matches!(parsed, Some(Ok(_))),
            "{rule:?}/{reason:?} failed to parse: {parsed:?}"
        );
        let Some(Ok(p)) = parsed else { unreachable!() };
        prop_assert_eq!(&p.rule, &rule);
        prop_assert_eq!(&p.reason, &reason);
        prop_assert_eq!(p.line, line);
    }
}

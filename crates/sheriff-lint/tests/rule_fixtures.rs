//! Fixture coverage for every rule: one offending snippet, one clean
//! snippet, and one pragma-suppressed snippet each, linted through the
//! public `lint_source` entry point exactly as the CLI does.

use sheriff_lint::rules::{collect_legacy_fns, lint_source, LintContext};

const CORE: &str = "crates/sheriff-core/src/fixture.rs";

fn codes(path: &str, src: &str) -> Vec<String> {
    let ctx = LintContext::default();
    lint_source(path, src, &ctx)
        .into_iter()
        .map(|d| d.rule.to_string())
        .collect()
}

// ------------------------------------------------------------- DET01

#[test]
fn det01_flags_ambient_wall_clock() {
    let src = "pub fn tick() { let t = std::time::Instant::now(); let _ = t; }";
    assert_eq!(codes(CORE, src), vec!["DET01"]);
    let sys = "pub fn stamp() { let t = SystemTime::now(); let _ = t; }";
    assert_eq!(codes(CORE, sys), vec!["DET01"]);
}

#[test]
fn det01_clean_in_obs_and_under_pragma() {
    let src = "pub fn tick() { let t = std::time::Instant::now(); let _ = t; }";
    assert!(codes("crates/sheriff-obs/src/timer.rs", src).is_empty());
    let suppressed = "// sheriff-lint: allow(DET01, \"wall time never enters the report\")\n\
                      pub fn tick() { let t = std::time::Instant::now(); let _ = t; }";
    assert!(codes(CORE, suppressed).is_empty());
}

#[test]
fn det01_ignores_test_code() {
    let src = "#[test]\nfn timing() { let t = Instant::now(); let _ = t; }";
    assert!(codes(CORE, src).is_empty());
}

// ------------------------------------------------------------- DET02

#[test]
fn det02_flags_hash_iteration_in_deterministic_modules() {
    let src = "use std::collections::HashMap;\n\
               pub fn fates(outstanding: HashMap<u64, u32>) {\n\
                   for (id, fate) in &outstanding { report(*id, *fate); }\n\
               }";
    assert_eq!(codes(CORE, src), vec!["DET02"]);
    let method = "pub fn drain() {\n\
                  let mut m: HashMap<u64, u32> = HashMap::new();\n\
                  let fates: Vec<u32> = m.drain().map(|(_, f)| f).collect();\n\
                  let _ = fates;\n}";
    assert_eq!(codes(CORE, method), vec!["DET02"]);
}

#[test]
fn det02_clean_for_btree_sorts_and_other_modules() {
    let btree = "use std::collections::BTreeMap;\n\
                 pub fn fates(outstanding: BTreeMap<u64, u32>) {\n\
                     for (id, fate) in &outstanding { report(*id, *fate); }\n\
                 }";
    assert!(codes(CORE, btree).is_empty());
    // collect-then-sort within the next statement neutralises the visit
    let sorted = "pub fn ranked(rates: HashMap<u64, f64>) -> Vec<(u64, f64)> {\n\
                  let mut v: Vec<(u64, f64)> = rates.iter().map(|(k, r)| (*k, *r)).collect();\n\
                  v.sort_by_key(|(k, _)| *k);\n  v\n}";
    assert!(codes(CORE, sorted).is_empty());
    // the same offending code outside a deterministic module is fine
    let src = "pub fn fates(m: HashMap<u64, u32>) { for (i, f) in &m { report(*i, *f); } }";
    assert!(codes("crates/bench/src/fixture.rs", src).is_empty());
}

#[test]
fn det02_pragma_suppresses_with_reason() {
    let src = "pub fn fates(m: HashMap<u64, u32>) {\n\
               // sheriff-lint: allow(DET02, \"order folded into a commutative sum below\")\n\
               for (i, f) in &m { accumulate(*i, *f); }\n}";
    assert!(codes(CORE, src).is_empty());
}

// ------------------------------------------------------------- DET03

#[test]
fn det03_flags_ambient_randomness() {
    let src = "pub fn jitter() -> f64 { rand::random() }";
    assert_eq!(codes(CORE, src), vec!["DET03"]);
    let trng = "pub fn jitter() { let mut rng = thread_rng(); let _ = rng; }";
    assert_eq!(codes(CORE, trng), vec!["DET03"]);
}

#[test]
fn det03_clean_for_seeded_rngs_and_pragma() {
    let seeded = "pub fn jitter(seed: u64) { let rng = StdRng::seed_from_u64(seed); let _ = rng; }";
    assert!(codes(CORE, seeded).is_empty());
    let suppressed = "// sheriff-lint: allow(DET03, \"demo binary, not a management loop\")\n\
                      pub fn jitter() -> f64 { rand::random() }";
    assert!(codes(CORE, suppressed).is_empty());
}

// ----------------------------------------------------------- PANIC01

#[test]
fn panic01_flags_unwrap_expect_and_indexing() {
    assert_eq!(
        codes(
            CORE,
            "pub fn f(v: Vec<u32>) -> u32 { v.first().copied().unwrap() }"
        ),
        vec!["PANIC01"]
    );
    assert_eq!(
        codes(
            CORE,
            "pub fn f(v: Vec<u32>) -> u32 { *v.first().expect(\"nonempty\") }"
        ),
        vec!["PANIC01"]
    );
    assert_eq!(
        codes(CORE, "pub fn f(v: &[u32]) -> u32 { v[0] }"),
        vec!["PANIC01"]
    );
}

#[test]
fn panic01_clean_code_and_structural_brackets_pass() {
    // slice patterns, array types, attributes and macro brackets are
    // not index expressions
    let src = "#[derive(Clone)]\n\
               pub struct W { xs: [f64; 4] }\n\
               pub fn f(v: &[u32]) -> Option<u32> {\n\
                   if let [only] = v { return Some(*only); }\n\
                   let buf = vec![0u32; 3];\n\
                   let _ = buf;\n\
                   v.get(0).copied()\n\
               }";
    assert!(codes(CORE, src).is_empty());
}

#[test]
fn panic01_exempts_tests_and_respects_pragma() {
    let test_code =
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert_eq!(x()[0].unwrap(), 1); }\n}";
    assert!(codes(CORE, test_code).is_empty());
    let suppressed = "pub fn f(v: &[u32]) -> u32 {\n\
                      // sheriff-lint: allow(PANIC01, \"index bounded by the loop above\")\n\
                      v[0]\n}";
    assert!(codes(CORE, suppressed).is_empty());
}

// ---------------------------------------------------------- UNSAFE01

#[test]
fn unsafe01_requires_forbid_on_crate_roots_only() {
    let bare = "//! Crate docs.\npub fn f() {}";
    assert_eq!(codes("crates/dcn-sim/src/lib.rs", bare), vec!["UNSAFE01"]);
    assert_eq!(codes("src/lib.rs", bare), vec!["UNSAFE01"]);
    // non-root modules don't need the attribute
    assert!(codes("crates/dcn-sim/src/engine.rs", bare).is_empty());
    let guarded = "#![forbid(unsafe_code)]\npub fn f() {}";
    assert!(codes("crates/dcn-sim/src/lib.rs", guarded).is_empty());
}

// ------------------------------------------------------------- API01

fn legacy_ctx() -> LintContext {
    let defs = "#[cfg(feature = \"legacy\")]\n\
                #[deprecated]\n\
                pub fn centralized_migration(x: u32) -> u32 { x }\n\
                pub fn modern(x: u32) -> u32 { x }";
    let mut ctx = LintContext::default();
    ctx.legacy_fns.extend(collect_legacy_fns(defs));
    assert_eq!(
        ctx.legacy_fns.iter().collect::<Vec<_>>(),
        vec!["centralized_migration"],
        "pre-pass should find exactly the gated function"
    );
    ctx
}

#[test]
fn api01_flags_legacy_calls_outside_the_gate() {
    let ctx = legacy_ctx();
    let call = "pub fn run() { let _ = centralized_migration(3); }";
    let diags = lint_source(CORE, call, &ctx);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags.first().map(|d| d.rule), Some("API01"));
}

#[test]
fn api01_allows_gated_callers_tests_and_pragmas() {
    let ctx = legacy_ctx();
    let gated = "#[cfg(feature = \"legacy\")]\n\
                 pub fn compat() { let _ = centralized_migration(3); }";
    assert!(lint_source(CORE, gated, &ctx).is_empty());
    let test_code = "#[test]\nfn golden() { assert_eq!(centralized_migration(3), 3); }";
    assert!(lint_source(CORE, test_code, &ctx).is_empty());
    let suppressed =
        "// sheriff-lint: allow(API01, \"migration shim, removed with the legacy feature\")\n\
                      pub fn run() { let _ = centralized_migration(3); }";
    assert!(lint_source(CORE, suppressed, &ctx).is_empty());
}

// ------------------------------------------------------------- LINT00

#[test]
fn malformed_pragmas_are_reported_not_silent() {
    let src = "// sheriff-lint: allow(PANIC01)\n\
               pub fn f(v: &[u32]) -> u32 { v[0] }";
    let got = codes(CORE, src);
    assert_eq!(
        got,
        vec!["LINT00", "PANIC01"],
        "typo'd pragma must not suppress"
    );
}

#[test]
fn lint00_cannot_be_pragma_suppressed() {
    let src = "// sheriff-lint: allow(LINT00, \"quiet the meta rule\")\n\
               // sheriff-lint: allow(PANIC01)\n\
               pub fn f() {}";
    let got = codes(CORE, src);
    assert!(got.contains(&"LINT00".to_string()));
}

// ------------------------------------------- failure/epoch fencing

const FAILURE: &str = "crates/sheriff-core/src/failure.rs";

#[test]
fn failure_detector_module_is_det_scoped() {
    // the failure detector lives under sheriff-core: wall clock and
    // hash-ordered iteration are flagged there like everywhere else in
    // the deterministic core
    let clock = "pub fn now() -> u64 { let t = std::time::Instant::now(); drop(t); 0 }";
    assert_eq!(codes(FAILURE, clock), vec!["DET01"]);
    let hash = "use std::collections::HashMap;\n\
                pub fn sweep(h: HashMap<u64, u64>) { for (r, e) in &h { fence(*r, *e); } }";
    assert_eq!(codes(FAILURE, hash), vec!["DET02"]);
}

#[test]
fn epoch_comparison_pattern_lints_clean() {
    // the blessed epoch-fencing idiom: epochs live in a BTreeMap, the
    // fence reads with `.get()` and a 0 default (a rack never taken
    // over is implicitly at epoch 0), comparison is forward-only, and
    // sweeps iterate in rack order
    let src = "use std::collections::BTreeMap;\n\
        pub fn fence(epochs: &BTreeMap<u64, u64>, from: u64, msg_epoch: u64) -> Option<u64> {\n\
            let current = epochs.get(&from).copied().unwrap_or(0);\n\
            (msg_epoch < current).then_some(current)\n\
        }\n\
        pub fn sweep(epochs: &BTreeMap<u64, u64>) {\n\
            for (rack, epoch) in epochs { observe(*rack, *epoch); }\n\
        }";
    assert!(codes(FAILURE, src).is_empty());
}

#[test]
fn epoch_table_indexing_is_flagged() {
    // reaching into the epoch table with `[]` panics on a rack that was
    // never taken over; the fence must use `.get()` with a 0 default
    let src = "use std::collections::BTreeMap;\n\
        pub fn fence(epochs: &BTreeMap<u64, u64>, from: u64, e: u64) -> bool {\n\
            e < epochs[&from]\n\
        }";
    assert_eq!(codes(FAILURE, src), vec!["PANIC01"]);
}

// ------------------------------------------------- sheriff-sim scope

const SIM: &str = "crates/sheriff-sim/src/fixture.rs";

#[test]
fn event_core_is_det_scoped() {
    // the discrete-event scheduler is the root of the reproducibility
    // contract: wall clock, hash-ordered iteration and ambient
    // randomness are all flagged under crates/sheriff-sim/src/
    let clock = "pub fn now() -> u64 { let t = std::time::Instant::now(); drop(t); 0 }";
    assert_eq!(codes(SIM, clock), vec!["DET01"]);
    let hash = "use std::collections::HashMap;\n\
                pub fn drain(live: HashMap<u64, u32>) { for (id, ev) in &live { fire(*id, *ev); } }";
    assert_eq!(codes(SIM, hash), vec!["DET02"]);
    let rng = "pub fn jitter() -> f64 { rand::random() }";
    assert_eq!(codes(SIM, rng), vec!["DET03"]);
}

#[test]
fn event_queue_idiom_lints_clean() {
    // the blessed tombstone-queue idiom: a BinaryHeap of Reverse keys,
    // liveness in a BTreeMap keyed by sequence number, lookups via
    // `.get()`/`.remove()` — no indexing, no hash iteration
    let src = "use std::collections::BTreeMap;\n\
        pub fn pop(live: &mut BTreeMap<u64, u32>, seq: u64) -> Option<u32> {\n\
            live.remove(&seq)\n\
        }\n\
        pub fn next_live(live: &BTreeMap<u64, u32>) -> Option<u64> {\n\
            live.keys().next().copied()\n\
        }";
    assert!(codes(SIM, src).is_empty());
}

// -------------------------------------------- sheriff-transfer scope

const TRANSFER: &str = "crates/sheriff-transfer/src/fixture.rs";

#[test]
fn transfer_scheduler_is_det_scoped() {
    // the bandwidth-sharing scheduler schedules completion events on
    // the deterministic core: same-seed transfer schedules must be
    // byte-identical, so all three DET rules apply under
    // crates/sheriff-transfer/src/
    let clock = "pub fn sampled() -> u64 { let t = std::time::Instant::now(); drop(t); 0 }";
    assert_eq!(codes(TRANSFER, clock), vec!["DET01"]);
    let hash = "use std::collections::HashMap;\n\
                pub fn recompute(active: HashMap<u64, f64>) { for (id, rate) in &active { set(*id, *rate); } }";
    assert_eq!(codes(TRANSFER, hash), vec!["DET02"]);
    let rng = "pub fn tie_break() -> f64 { rand::random() }";
    assert_eq!(codes(TRANSFER, rng), vec!["DET03"]);
}

#[test]
fn transfer_route_table_idiom_lints_clean() {
    // the blessed scheduler idiom: active transfers in a BTreeMap keyed
    // by id, per-link shares recomputed by ordered iteration
    let src = "use std::collections::BTreeMap;\n\
        pub fn rates(active: &BTreeMap<u64, f64>) -> f64 {\n\
            let mut total = 0.0;\n\
            for (_, r) in active { total += r; }\n\
            total\n\
        }";
    assert!(codes(TRANSFER, src).is_empty());
}

// ------------------------------------------ transfer recovery scope

#[test]
fn recovery_backoff_must_not_use_ambient_randomness() {
    // retry backoff needs jitter so simultaneous stalls don't herd onto
    // the same restored link, but ambient randomness would make the
    // recovery schedule differ run-to-run: DET03 catches the shortcut
    let ambient = "pub fn retry_jitter() -> u64 { (rand::random::<f64>() * 8.0) as u64 }";
    assert_eq!(codes(TRANSFER, ambient), vec!["DET03"]);
    // the blessed idiom: SplitMix64 over (attempt, transfer id) — pure
    // arithmetic, same inputs, same jitter
    let seeded = "pub fn retry_jitter(attempt: u32, id: u64) -> u64 {\n\
        let mut z = id ^ (u64::from(attempt) << 32);\n\
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);\n\
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);\n\
        z ^ (z >> 31)\n\
    }";
    assert!(codes(TRANSFER, seeded).is_empty());
}

#[test]
fn recovery_failed_link_set_must_iterate_ordered() {
    // the failed-link set feeds route viability checks whose visit
    // order reaches the report; a HashSet sweep is flagged, the
    // BTreeSet the recovery machine actually uses is clean
    let hash = "use std::collections::HashSet;\n\
        pub fn reroute_all(failed: HashSet<usize>) {\n\
            for e in &failed { invalidate(*e); }\n\
        }";
    assert_eq!(codes(TRANSFER, hash), vec!["DET02"]);
    let btree = "use std::collections::BTreeSet;\n\
        pub fn reroute_all(failed: &BTreeSet<usize>) {\n\
            for e in failed { invalidate(*e); }\n\
        }";
    assert!(codes(TRANSFER, btree).is_empty());
}

#[test]
fn recovery_stall_deadline_must_not_read_wall_clock() {
    // stall budgets are virtual-time ticks; an Instant-based deadline
    // would tie retry exhaustion to host speed
    let wall = "pub fn expired() -> bool { let t = std::time::Instant::now(); drop(t); false }";
    assert_eq!(codes(TRANSFER, wall), vec!["DET01"]);
    let virt = "pub fn expired(now: u64, stalled_since: u64, budget: u64) -> bool {\n\
        now.saturating_sub(stalled_since) >= budget\n\
    }";
    assert!(codes(TRANSFER, virt).is_empty());
}

#[test]
fn transfer_crate_panic01_ratchet_holds_at_zero() {
    // the committed lint-baseline.json carries no PANIC01 grants for
    // crates/sheriff-transfer/src/ — the recovery machine must keep it
    // that way (the CLI's --deny-new also rejects stale entries, so
    // this can only ratchet down)
    let baseline = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../lint-baseline.json"
    ))
    .expect("committed lint baseline");
    assert!(
        !baseline.contains("sheriff-transfer"),
        "sheriff-transfer grew a lint-baseline grant; fix the finding instead"
    );
}

// ------------------------------------------------------ determinism

#[test]
fn diagnostics_are_position_sorted_and_stable() {
    let src = "pub fn f(v: &[u32], m: HashMap<u64, u32>) -> u32 {\n\
               for (i, x) in &m { report(*i, *x); }\n\
               v[0] + v.last().copied().unwrap()\n}";
    let ctx = LintContext::default();
    let a = lint_source(CORE, src, &ctx);
    let b = lint_source(CORE, src, &ctx);
    assert_eq!(a, b, "linting must be deterministic");
    let keys: Vec<_> = a.iter().map(|d| (d.line, d.col)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings must be position-sorted");
    assert_eq!(a.len(), 3, "DET02 + two PANIC01 findings: {a:?}");
}

// ------------------------------------------------------------- PROTO01

#[test]
fn proto01_flags_catchall_in_protocol_match() {
    let src = "pub fn handle(msg: ShimMsg) {\n\
                   match msg {\n\
                       ShimMsg::Prepare { .. } => prepare(),\n\
                       _ => {}\n\
                   }\n\
               }";
    assert_eq!(codes(CORE, src), vec!["PROTO01"]);
}

#[test]
fn proto01_clean_for_exhaustive_variant_patterns_and_other_modules() {
    // a variant pattern with inner wildcards is still a position taken
    let exhaustive = "pub fn handle(msg: ShimMsg) {\n\
                          match msg {\n\
                              ShimMsg::Prepare { .. } => prepare(),\n\
                              ShimMsg::Commit(_) => commit(),\n\
                          }\n\
                      }";
    assert!(codes(CORE, exhaustive).is_empty());
    // non-protocol matches may use `_` freely
    let plain = "pub fn classify(n: u32) -> u32 { match n { 0 => 1, _ => 2 } }";
    assert!(codes(CORE, plain).is_empty());
    // outside the deterministic modules the rule does not apply
    let bench =
        "pub fn handle(msg: ShimMsg) { match msg { ShimMsg::Prepare { .. } => p(), _ => {} } }";
    assert!(codes("crates/bench/src/fixture.rs", bench).is_empty());
}

#[test]
fn proto01_pragma_suppresses_with_reason() {
    let suppressed = "pub fn handle(msg: TwoPhaseReply) {\n\
                          match msg {\n\
                              TwoPhaseReply::Ack(_) => ack(),\n\
                              // sheriff-lint: allow(PROTO01, \"forward-compat shim for replayed journals\")\n\
                              _ => {}\n\
                          }\n\
                      }";
    assert!(codes(CORE, suppressed).is_empty());
}

// ------------------------------------------------------------- EVT01

#[test]
fn evt01_flags_dead_event_variant_across_the_workspace() {
    use sheriff_lint::rules::{context_from_files, lint_workspace};
    use sheriff_lint::symbols::SourceFile;

    let event_enum = "pub enum Event {\n    Alive { rack: u64 },\n    Dead { rack: u64 },\n}";
    let emitter = "pub fn fire() { emit(|| Event::Alive { rack: 0 }); }";
    let run = |files: &[(&str, &str)]| -> Vec<String> {
        let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let ctx = context_from_files(&parsed);
        let (diags, _) = lint_workspace(parsed, &ctx);
        diags.into_iter().map(|d| d.rule.to_string()).collect()
    };

    let dead = run(&[
        ("crates/sheriff-obs/src/event.rs", event_enum),
        ("crates/sheriff-core/src/fixture.rs", emitter),
    ]);
    assert_eq!(dead, vec!["EVT01"], "Dead has no emit site");

    // a consume site (matching on the variant) keeps it live too
    let consumer = "pub fn fold(e: Event) -> u64 {\n\
                        match e {\n\
                            Event::Alive { rack } => rack,\n\
                            Event::Dead { rack } => rack,\n\
                        }\n\
                    }";
    let live = run(&[
        ("crates/sheriff-obs/src/event.rs", event_enum),
        ("crates/sheriff-core/src/fixture.rs", emitter),
        ("crates/bench/src/fixture.rs", consumer),
    ]);
    assert!(live.is_empty(), "{live:?}");

    // test-gated uses do not count as live
    let test_only =
        "#[cfg(test)]\nmod tests {\n    fn t() { emit(|| Event::Dead { rack: 1 }); }\n}";
    let still_dead = run(&[
        ("crates/sheriff-obs/src/event.rs", event_enum),
        ("crates/sheriff-core/src/fixture.rs", emitter),
        ("crates/sheriff-core/src/tests_fixture.rs", test_only),
    ]);
    assert_eq!(still_dead, vec!["EVT01"], "test-gated emits stay dead");
}

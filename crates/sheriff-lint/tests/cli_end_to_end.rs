//! End-to-end CLI coverage: build a synthetic workspace on disk, run
//! the real binary against it, and assert the exit codes and the
//! baseline ratchet behave as documented.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sheriff-lint")
}

fn fixture_root(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("clean fixture dir");
    }
    std::fs::create_dir_all(root.join("src")).expect("mkdir src");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("write manifest");
    root
}

fn check(root: &Path, extra: &[&str]) -> Output {
    let mut cmd = Command::new(bin());
    cmd.arg("check").arg("--root").arg(root);
    cmd.args(extra);
    cmd.output().expect("spawn sheriff-lint")
}

fn write_lib(root: &Path, body: &str) {
    std::fs::write(root.join("src/lib.rs"), body).expect("write lib.rs");
}

const CLEAN_LIB: &str = "#![forbid(unsafe_code)]\n\
    pub fn safe(v: &[u32]) -> Option<u32> { v.first().copied() }\n";

const DIRTY_LIB: &str = "#![forbid(unsafe_code)]\n\
    pub fn risky(v: &[u32]) -> u32 { v.first().copied().unwrap() }\n";

#[test]
fn clean_tree_exits_zero() {
    let root = fixture_root("clean_tree");
    write_lib(&root, CLEAN_LIB);
    let out = check(&root, &["--deny-new"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn violation_fails_with_rustc_style_diagnostic() {
    let root = fixture_root("dirty_tree");
    write_lib(&root, DIRTY_LIB);
    let out = check(&root, &["--deny-new"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[PANIC01]:"), "stdout: {stdout}");
    assert!(stdout.contains("--> src/lib.rs:2:"), "stdout: {stdout}");
    assert!(stdout.contains("= help:"), "stdout: {stdout}");
}

#[test]
fn json_mode_emits_machine_readable_findings() {
    let root = fixture_root("json_tree");
    write_lib(&root, DIRTY_LIB);
    let out = check(&root, &["--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().next().unwrap_or_default();
    assert!(
        line.starts_with("{\"rule\":\"PANIC01\""),
        "stdout: {stdout}"
    );
    assert!(line.contains("\"file\":\"src/lib.rs\""), "stdout: {stdout}");
}

#[test]
fn baseline_ratchet_admits_old_debt_and_rejects_new() {
    let root = fixture_root("ratchet_tree");
    write_lib(&root, DIRTY_LIB);

    // ratchet the existing debt into the baseline → clean
    let out = check(&root, &["--update-baseline"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let baseline = std::fs::read_to_string(root.join("lint-baseline.json")).expect("baseline");
    assert!(baseline.contains("\"PANIC01\""), "baseline: {baseline}");
    assert_eq!(check(&root, &["--deny-new"]).status.code(), Some(0));

    // a second unwrap exceeds the ratchet
    write_lib(
        &root,
        "#![forbid(unsafe_code)]\n\
         pub fn risky(v: &[u32]) -> u32 { v.first().copied().unwrap() }\n\
         pub fn worse(v: &[u32]) -> u32 { v.last().copied().unwrap() }\n",
    );
    let out = check(&root, &["--deny-new"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("baseline allows 1"), "stdout: {stdout}");

    // fixing *both* makes the entry stale: plain check passes, CI mode
    // demands the ratchet move down
    write_lib(&root, CLEAN_LIB);
    assert_eq!(check(&root, &[]).status.code(), Some(0));
    let out = check(&root, &["--deny-new"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stale baseline"), "stdout: {stdout}");

    // re-ratcheting clears it
    assert_eq!(check(&root, &["--update-baseline"]).status.code(), Some(0));
    assert_eq!(check(&root, &["--deny-new"]).status.code(), Some(0));
}

#[test]
fn usage_errors_exit_two() {
    let out = Command::new(bin())
        .arg("frobnicate")
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(bin()).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

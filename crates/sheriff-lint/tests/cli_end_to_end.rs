//! End-to-end CLI coverage: build a synthetic workspace on disk, run
//! the real binary against it, and assert the exit codes and the
//! baseline ratchet behave as documented.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sheriff-lint")
}

fn fixture_root(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("clean fixture dir");
    }
    std::fs::create_dir_all(root.join("src")).expect("mkdir src");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("write manifest");
    root
}

fn check(root: &Path, extra: &[&str]) -> Output {
    let mut cmd = Command::new(bin());
    cmd.arg("check").arg("--root").arg(root);
    cmd.args(extra);
    cmd.output().expect("spawn sheriff-lint")
}

fn write_lib(root: &Path, body: &str) {
    std::fs::write(root.join("src/lib.rs"), body).expect("write lib.rs");
}

const CLEAN_LIB: &str = "#![forbid(unsafe_code)]\n\
    pub fn safe(v: &[u32]) -> Option<u32> { v.first().copied() }\n";

const DIRTY_LIB: &str = "#![forbid(unsafe_code)]\n\
    pub fn risky(v: &[u32]) -> u32 { v.first().copied().unwrap() }\n";

#[test]
fn clean_tree_exits_zero() {
    let root = fixture_root("clean_tree");
    write_lib(&root, CLEAN_LIB);
    let out = check(&root, &["--deny-new"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn violation_fails_with_rustc_style_diagnostic() {
    let root = fixture_root("dirty_tree");
    write_lib(&root, DIRTY_LIB);
    let out = check(&root, &["--deny-new"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[PANIC01]:"), "stdout: {stdout}");
    assert!(stdout.contains("--> src/lib.rs:2:"), "stdout: {stdout}");
    assert!(stdout.contains("= help:"), "stdout: {stdout}");
}

#[test]
fn json_mode_emits_machine_readable_findings() {
    let root = fixture_root("json_tree");
    write_lib(&root, DIRTY_LIB);
    let out = check(&root, &["--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().next().unwrap_or_default();
    assert!(
        line.starts_with("{\"rule\":\"PANIC01\""),
        "stdout: {stdout}"
    );
    assert!(line.contains("\"file\":\"src/lib.rs\""), "stdout: {stdout}");
}

#[test]
fn baseline_ratchet_admits_old_debt_and_rejects_new() {
    let root = fixture_root("ratchet_tree");
    write_lib(&root, DIRTY_LIB);

    // ratchet the existing debt into the baseline → clean
    let out = check(&root, &["--update-baseline"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let baseline = std::fs::read_to_string(root.join("lint-baseline.json")).expect("baseline");
    assert!(baseline.contains("\"PANIC01\""), "baseline: {baseline}");
    assert_eq!(check(&root, &["--deny-new"]).status.code(), Some(0));

    // a second unwrap exceeds the ratchet
    write_lib(
        &root,
        "#![forbid(unsafe_code)]\n\
         pub fn risky(v: &[u32]) -> u32 { v.first().copied().unwrap() }\n\
         pub fn worse(v: &[u32]) -> u32 { v.last().copied().unwrap() }\n",
    );
    let out = check(&root, &["--deny-new"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("baseline allows 1"), "stdout: {stdout}");

    // fixing *both* makes the entry stale: plain check passes, CI mode
    // demands the ratchet move down
    write_lib(&root, CLEAN_LIB);
    assert_eq!(check(&root, &[]).status.code(), Some(0));
    let out = check(&root, &["--deny-new"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stale baseline"), "stdout: {stdout}");

    // re-ratcheting clears it
    assert_eq!(check(&root, &["--update-baseline"]).status.code(), Some(0));
    assert_eq!(check(&root, &["--deny-new"]).status.code(), Some(0));
}

#[test]
fn usage_errors_exit_two() {
    let out = Command::new(bin())
        .arg("frobnicate")
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(bin()).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

/// Where a `sheriff-lint: allow` pragma sits in the taint fixture.
enum Pragma {
    None,
    /// At the deterministic module's boundary call site.
    Boundary,
    /// At the primitive source inside the helper crate.
    Source,
}

/// A two-crate workspace where a deterministic module reaches the wall
/// clock only through a helper crate — a chain only the interprocedural
/// taint pass can connect.
fn write_taint_fixture(root: &Path, pragma: Pragma) {
    std::fs::create_dir_all(root.join("crates/sheriff-core/src")).expect("mkdir core");
    std::fs::create_dir_all(root.join("crates/helper/src")).expect("mkdir helper");
    let call = if matches!(pragma, Pragma::Boundary) {
        "    // sheriff-lint: allow(DET01, \"round timing is report-only, never in the digest\")\n    \
         let _ = stamp();\n"
    } else {
        "    let _ = stamp();\n"
    };
    std::fs::write(
        root.join("crates/sheriff-core/src/lib.rs"),
        format!("#![forbid(unsafe_code)]\npub fn step() {{\n{call}}}\n"),
    )
    .expect("write core");
    let source = if matches!(pragma, Pragma::Source) {
        "pub fn middle() -> std::time::Instant {\n    \
         // sheriff-lint: allow(DET01, \"wall time never enters the digest\")\n    \
         std::time::Instant::now()\n}\n"
    } else {
        "pub fn middle() -> std::time::Instant { std::time::Instant::now() }\n"
    };
    std::fs::write(
        root.join("crates/helper/src/lib.rs"),
        format!(
            "#![forbid(unsafe_code)]\n\
             pub fn stamp() -> std::time::Instant {{ middle() }}\n{source}"
        ),
    )
    .expect("write helper");
}

#[test]
fn interprocedural_chain_is_reported_with_notes_and_pragma_clears_it() {
    let root = fixture_root("taint_tree");
    write_taint_fixture(&root, Pragma::None);

    let out = check(&root, &["--deny-new"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(
            "error[DET01]: deterministic fn `step` reaches an ambient wall-clock read via `stamp`"
        ),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("= note: `stamp` calls `middle` at crates/helper/src/lib.rs"),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("= note: `middle` reads the wall clock (`Instant::now()`)"),
        "stdout: {stdout}"
    );

    // the same chain in --json, notes included
    let out = check(&root, &["--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"notes\":[\"`stamp` calls `middle`"),
        "stdout: {stdout}"
    );

    // a pragma at the boundary call site suppresses the chain finding;
    // the helper's own source stays the per-file rule's business
    write_taint_fixture(&root, Pragma::Boundary);
    let out = check(&root, &["--deny-new"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("deterministic fn `step`"),
        "boundary pragma must clear the chain finding; stdout: {stdout}"
    );
    assert!(
        stdout.contains("ambient wall-clock read"),
        "the primitive source itself stays flagged; stdout: {stdout}"
    );

    // a pragma at the source sanctions the whole chain: nothing seeds,
    // nothing propagates, the tree is clean
    write_taint_fixture(&root, Pragma::Source);
    let out = check(&root, &["--deny-new"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn sarif_output_is_written_in_every_mode_with_identical_exit_codes() {
    let root = fixture_root("sarif_tree");
    write_lib(&root, DIRTY_LIB);
    let sarif = root.join("findings.sarif");
    let sarif_arg = sarif.to_str().expect("utf8 path");

    // text, json, and text+sarif must agree on the verdict
    let text = check(&root, &["--deny-new", "--sarif", sarif_arg]);
    assert_eq!(text.status.code(), Some(1));
    let doc = std::fs::read_to_string(&sarif).expect("sarif written");
    assert!(doc.contains("\"version\": \"2.1.0\""), "doc: {doc}");
    assert!(doc.contains("\"ruleId\": \"PANIC01\""), "doc: {doc}");
    assert!(doc.contains("\"uri\": \"src/lib.rs\""), "doc: {doc}");

    let json = check(&root, &["--deny-new", "--json", "--sarif", sarif_arg]);
    assert_eq!(json.status.code(), Some(1));

    // a clean tree writes an empty (but valid) run and exits 0 everywhere
    write_lib(&root, CLEAN_LIB);
    for extra in [
        &["--deny-new", "--sarif", sarif_arg][..],
        &["--deny-new", "--json", "--sarif", sarif_arg][..],
    ] {
        let out = check(&root, extra);
        assert_eq!(out.status.code(), Some(0));
    }
    let doc = std::fs::read_to_string(&sarif).expect("sarif rewritten");
    assert!(doc.contains("\"results\": ["), "doc: {doc}");
    assert!(!doc.contains("\"ruleId\": \"PANIC01\""), "doc: {doc}");
}

#[test]
fn whole_repo_check_stays_under_the_wall_time_budget() {
    // the engine must stay fast enough for a pre-push hook: lexing is
    // memoized (each file tokenized exactly once) and the fixed point is
    // a worklist, so the real workspace — the largest tree we have —
    // must lint well inside the 30s budget
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    // measuring the linter's own wall time is the point of this test
    #[allow(clippy::disallowed_methods)]
    let started = std::time::Instant::now();
    let out = check(&repo, &["--deny-new"]);
    let elapsed = started.elapsed();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "whole-repo lint took {elapsed:?}"
    );
}

//! A hand-rolled Rust lexer, in the spirit of the TOML reader in
//! `sheriff-scenario/src/value.rs`: enough tokenization to drive the rule
//! engine, nothing more. Comments and literals are recognised (so rules
//! never fire on text inside strings or docs), idents and punctuation
//! carry `line:col` positions, and line comments are returned separately
//! for pragma scanning.

/// One lexical token of a Rust source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// A string/char/byte/numeric literal or a lifetime; the raw text is
    /// kept so attribute scans can look for `"legacy"` and friends.
    Literal(String),
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(i) if i == s)
    }
}

/// A `//` line comment (doc comments included), captured for pragma
/// scanning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Text after the leading `//`, untrimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based byte column of the first `/`.
    pub col: u32,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, comments stripped.
    pub tokens: Vec<Token>,
    /// Line comments, for pragma scanning.
    pub comments: Vec<Comment>,
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Scanner<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    /// Raw text between two byte offsets, clamped (never panics).
    fn text(&self, start: usize, end: usize) -> String {
        let bytes = self.src.get(start..end.min(self.src.len())).unwrap_or(&[]);
        String::from_utf8_lossy(bytes).into_owned()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize one Rust source file. The lexer is total: any byte sequence
/// produces *some* token stream, so the linter never aborts on exotic
/// syntax — worst case a rule sees slightly garbled punctuation.
pub fn lex(src: &str) -> Lexed {
    let mut s = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = s.peek() {
        let (line, col, start) = (s.line, s.col, s.pos);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
            }
            b'/' if s.peek_at(1) == Some(b'/') => {
                s.bump();
                s.bump();
                let text_start = s.pos;
                while let Some(c) = s.peek() {
                    if c == b'\n' {
                        break;
                    }
                    s.bump();
                }
                out.comments.push(Comment {
                    text: s.text(text_start, s.pos),
                    line,
                    col,
                });
            }
            b'/' if s.peek_at(1) == Some(b'*') => {
                s.bump();
                s.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (s.peek(), s.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            s.bump();
                            s.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            s.bump();
                            s.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            s.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'"' => {
                lex_string(&mut s);
                out.tokens.push(Token {
                    kind: TokenKind::Literal(s.text(start, s.pos)),
                    line,
                    col,
                });
            }
            b'\'' => {
                lex_quote(&mut s);
                out.tokens.push(Token {
                    kind: TokenKind::Literal(s.text(start, s.pos)),
                    line,
                    col,
                });
            }
            b'0'..=b'9' => {
                lex_number(&mut s);
                out.tokens.push(Token {
                    kind: TokenKind::Literal(s.text(start, s.pos)),
                    line,
                    col,
                });
            }
            _ if is_ident_start(b) => {
                if let Some(kind) = lex_prefixed_literal(&mut s) {
                    out.tokens.push(Token { kind, line, col });
                } else {
                    while let Some(c) = s.peek() {
                        if is_ident_continue(c) {
                            s.bump();
                        } else {
                            break;
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Ident(s.text(start, s.pos)),
                        line,
                        col,
                    });
                }
            }
            _ => {
                s.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct(b as char),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// A string body starting at the opening `"`; handles `\"` escapes.
fn lex_string(s: &mut Scanner<'_>) {
    s.bump(); // opening quote
    while let Some(c) = s.bump() {
        match c {
            b'\\' => {
                s.bump();
            }
            b'"' => return,
            _ => {}
        }
    }
}

/// A raw string starting at `r` / the first `#`: `r"…"`, `r#"…"#`, …
fn lex_raw_string(s: &mut Scanner<'_>) {
    let mut hashes = 0usize;
    while s.peek() == Some(b'#') {
        s.bump();
        hashes += 1;
    }
    if s.peek() != Some(b'"') {
        return; // not actually a raw string; idents were consumed already
    }
    s.bump();
    loop {
        match s.bump() {
            None => return,
            Some(b'"') => {
                let mut seen = 0usize;
                while seen < hashes && s.peek() == Some(b'#') {
                    s.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
            }
            Some(_) => {}
        }
    }
}

/// After a `'`: either a lifetime (`'a`, `'static`) or a char literal
/// (`'x'`, `'\n'`, `'\''`). Both are emitted as [`TokenKind::Literal`].
fn lex_quote(s: &mut Scanner<'_>) {
    s.bump(); // the quote
    match (s.peek(), s.peek_at(1)) {
        // `'a` not followed by a closing quote is a lifetime
        (Some(c), next) if is_ident_start(c) && next != Some(b'\'') => {
            while let Some(c) = s.peek() {
                if is_ident_continue(c) {
                    s.bump();
                } else {
                    break;
                }
            }
        }
        _ => {
            // char literal: consume an optional escape, then to the quote
            if s.peek() == Some(b'\\') {
                s.bump();
                s.bump();
            } else {
                s.bump();
            }
            while let Some(c) = s.peek() {
                s.bump();
                if c == b'\'' {
                    break;
                }
            }
        }
    }
}

/// A numeric literal: integers, floats, hex/oct/bin, `_` separators,
/// exponents and type suffixes. Over-consumption is impossible for valid
/// Rust because `1.method()` keeps the dot (next byte is not a digit).
fn lex_number(s: &mut Scanner<'_>) {
    while let Some(c) = s.peek() {
        if c.is_ascii_alphanumeric() || c == b'_' {
            s.bump();
        } else {
            break;
        }
    }
    if s.peek() == Some(b'.') && s.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        s.bump();
        while let Some(c) = s.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                s.bump();
            } else {
                break;
            }
        }
    }
    // `1e-3` / `2.5E+7`: the exponent sign follows a trailing e/E
    if s.pos > 0
        && matches!(s.src.get(s.pos - 1), Some(b'e' | b'E'))
        && matches!(s.peek(), Some(b'+' | b'-'))
    {
        s.bump();
        while let Some(c) = s.peek() {
            if c.is_ascii_digit() || c == b'_' {
                s.bump();
            } else {
                break;
            }
        }
    }
}

/// `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#` and friends. Returns the
/// literal token if the upcoming bytes are a prefixed literal, otherwise
/// consumes nothing.
fn lex_prefixed_literal(s: &mut Scanner<'_>) -> Option<TokenKind> {
    let start = s.pos;
    let (line0, col0, pos0) = (s.line, s.col, s.pos);
    let mut prefix = String::new();
    while let Some(c) = s.peek() {
        if prefix.len() < 2 && c.is_ascii_alphabetic() {
            prefix.push(c as char);
            s.bump();
        } else {
            break;
        }
    }
    let is_raw = matches!(prefix.as_str(), "r" | "br" | "cr");
    let is_plain = matches!(prefix.as_str(), "b" | "c");
    let next = s.peek();
    if is_raw && (next == Some(b'"') || next == Some(b'#')) {
        lex_raw_string(s);
        return Some(TokenKind::Literal(s.text(start, s.pos)));
    }
    if is_plain && next == Some(b'"') {
        lex_string(s);
        return Some(TokenKind::Literal(s.text(start, s.pos)));
    }
    if prefix == "b" && next == Some(b'\'') {
        lex_quote(s);
        return Some(TokenKind::Literal(s.text(start, s.pos)));
    }
    // not a literal prefix: rewind and let the ident path take over
    s.pos = pos0;
    s.line = line0;
    s.col = col0;
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let lexed = lex("let x = \"SystemTime::now()\"; // Instant::now\n/* thread_rng */");
        assert!(lexed.tokens.iter().all(|t| !t.is_ident("SystemTime")));
        assert!(lexed.tokens.iter().all(|t| !t.is_ident("Instant")));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed
            .comments
            .first()
            .is_some_and(|c| c.text.contains("Instant::now")));
    }

    #[test]
    fn raw_strings_and_chars_are_opaque() {
        let src = "let s = r#\"unwrap() \"quoted\" \"#; let c = '\\''; let b = b'x';";
        assert_eq!(idents(src), vec!["let", "s", "let", "c", "let", "b"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let names = idents(src);
        assert!(names.contains(&"str".to_string()));
        // `'a` must not swallow `>(x: ...` as a char body
        assert!(names.contains(&"x".to_string()));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  bb");
        assert_eq!(lexed.tokens.first().map(|t| (t.line, t.col)), Some((1, 1)));
        assert_eq!(lexed.tokens.get(1).map(|t| (t.line, t.col)), Some((2, 3)));
    }

    #[test]
    fn numbers_including_exponents_lex_as_single_literals() {
        let lexed = lex("let x = 1.5e-3 + 0xff_u32 + 2;");
        let lits: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Literal(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lits, vec!["1.5e-3", "0xff_u32", "2"]);
    }

    #[test]
    fn range_dots_stay_punctuation() {
        let lexed = lex("for i in 0..10 {}");
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }
}

//! CLI driver: `sheriff-lint check [--json] [--sarif PATH] [--deny-new]
//! [--update-baseline] [--baseline PATH] [--root PATH]`.
//!
//! Exit codes: `0` clean, `1` violations or ratchet divergence, `2`
//! usage or I/O error — identical across the text, `--json`, and
//! `--sarif` output modes.

#![forbid(unsafe_code)]

use sheriff_lint::baseline::{Baseline, BaselineIssue};
use sheriff_lint::diagnostics::to_json;
use sheriff_lint::rules::{context_from_files, lint_workspace, EngineStats};
use sheriff_lint::symbols::SourceFile;
use sheriff_lint::workspace::{discover_root, walk_sources};
use std::path::PathBuf;

const USAGE: &str = "\
sheriff-lint: static analysis for Sheriff's determinism and panic-safety invariants

USAGE:
    sheriff-lint check [OPTIONS]

OPTIONS:
    --json               emit one JSON object per finding instead of rustc-style text
                         (plus a trailing stats object with the call graph's unresolved bucket)
    --sarif <PATH>       additionally write the outstanding findings as SARIF 2.1.0
    --deny-new           CI mode: also fail on stale baseline entries (forces ratcheting)
    --update-baseline    rewrite the baseline from the current tree and exit
    --baseline <PATH>    baseline file (default: <root>/lint-baseline.json)
    --root <PATH>        workspace root (default: discovered from the current directory)
";

struct Options {
    json: bool,
    sarif: Option<PathBuf>,
    deny_new: bool,
    update_baseline: bool,
    baseline_path: Option<PathBuf>,
    root: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut iter = args.iter();
    match iter.next().map(String::as_str) {
        Some("check") => {}
        Some(other) => return Err(format!("unknown command {other:?} (expected `check`)")),
        None => return Err("missing command (expected `check`)".into()),
    }
    let mut opts = Options {
        json: false,
        sarif: None,
        deny_new: false,
        update_baseline: false,
        baseline_path: None,
        root: None,
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--sarif" => match iter.next() {
                Some(p) => opts.sarif = Some(PathBuf::from(p)),
                None => return Err("--sarif needs a path".into()),
            },
            "--deny-new" => opts.deny_new = true,
            "--update-baseline" => opts.update_baseline = true,
            "--baseline" => match iter.next() {
                Some(p) => opts.baseline_path = Some(PathBuf::from(p)),
                None => return Err("--baseline needs a path".into()),
            },
            "--root" => match iter.next() {
                Some(p) => opts.root = Some(PathBuf::from(p)),
                None => return Err("--root needs a path".into()),
            },
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<i32, String> {
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            discover_root(&cwd).ok_or_else(|| {
                "no workspace root found above the current directory (pass --root)".to_string()
            })?
        }
    };
    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.json"));

    // every file is read and lexed exactly once: the parsed SourceFiles
    // feed the per-file rules, the legacy pre-pass, and the whole-program
    // symbol/call-graph/taint passes
    let sources = walk_sources(&root)?;
    let mut files = Vec::with_capacity(sources.len());
    for (rel, abs) in &sources {
        let src = std::fs::read_to_string(abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        files.push(SourceFile::parse(rel, &src));
    }
    let ctx = context_from_files(&files);
    let (diags, stats) = lint_workspace(files, &ctx);

    if opts.update_baseline {
        let fresh = Baseline::from_diagnostics(&diags);
        std::fs::write(&baseline_path, fresh.render())
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        let suppressed: usize = diags
            .iter()
            .filter(|d| sheriff_lint::baseline::BASELINABLE.contains(&d.rule))
            .count();
        eprintln!(
            "wrote {} ({} entr{} covering {suppressed} finding(s))",
            baseline_path.display(),
            fresh.entry_count(),
            if fresh.entry_count() == 1 { "y" } else { "ies" },
        );
        // non-baselinable findings still fail the run
        let mut diags = diags;
        diags.retain(|d| !sheriff_lint::baseline::BASELINABLE.contains(&d.rule));
        return report(&diags, &[], &stats, opts);
    }

    let committed = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => {
            Baseline::parse(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("cannot read {}: {e}", baseline_path.display())),
    };
    let (outstanding, issues) = committed.apply(&diags);
    report(&outstanding, &issues, &stats, opts)
}

/// Print findings (and write the SARIF file, when requested) and decide
/// the exit code.
fn report(
    diags: &[sheriff_lint::diagnostics::Diagnostic],
    issues: &[BaselineIssue],
    stats: &EngineStats,
    opts: &Options,
) -> Result<i32, String> {
    if let Some(path) = &opts.sarif {
        std::fs::write(path, sheriff_lint::sarif::render(diags))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    for d in diags {
        if opts.json {
            println!("{}", to_json(d));
        } else {
            println!("{d}\n");
        }
    }
    let stale: Vec<&BaselineIssue> = issues
        .iter()
        .filter(|i| matches!(i, BaselineIssue::Stale { .. }))
        .collect();
    let fresh: Vec<&BaselineIssue> = issues
        .iter()
        .filter(|i| matches!(i, BaselineIssue::New { .. }))
        .collect();
    if !opts.json {
        for i in &fresh {
            println!("{i}\n");
        }
        if opts.deny_new {
            for i in &stale {
                println!("{i}\n");
            }
        }
    }
    if opts.json {
        println!("{}", stats.to_json());
    }
    let failing = diags.len() + fresh.len() + if opts.deny_new { stale.len() } else { 0 };
    Ok(if failing == 0 {
        if !opts.json {
            eprintln!("sheriff-lint: clean");
        }
        0
    } else {
        if !opts.json {
            eprintln!("sheriff-lint: {failing} finding(s)");
        }
        1
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match parse_args(&args) {
        Ok(opts) => match run(&opts) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("sheriff-lint: error: {e}");
                2
            }
        },
        Err(e) => {
            eprintln!("sheriff-lint: error: {e}\n\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

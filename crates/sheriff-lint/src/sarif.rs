//! SARIF 2.1.0 rendering of lint findings — the interchange format
//! GitHub's code-scanning upload consumes, so CI findings surface as PR
//! annotations. Same zero-dependency stance as the rest of the crate:
//! the document shape is fixed, so it is assembled by hand with the
//! shared JSON escaper.

use crate::diagnostics::{json_escape, Diagnostic};
use crate::rules::RULES;

/// Render all outstanding findings as one SARIF 2.1.0 document.
///
/// Notes (the interprocedural call chains) are folded into the result
/// message text — GitHub renders the full message in the annotation.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::with_capacity(4096 + diags.len() * 256);
    out.push_str(
        "{\n  \"version\": \"2.1.0\",\n  \"$schema\": \
         \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [\n    {\n      \
         \"tool\": {\n        \"driver\": {\n          \"name\": \"sheriff-lint\",\n          \
         \"informationUri\": \"https://github.com/\",\n          \"rules\": [\n",
    );
    for (i, rule) in RULES.iter().enumerate() {
        let comma = if i + 1 == RULES.len() { "" } else { "," };
        out.push_str(&format!("            {{\"id\": \"{rule}\"}}{comma}\n"));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let comma = if i + 1 == diags.len() { "" } else { "," };
        let mut message = d.message.clone();
        for n in &d.notes {
            message.push_str("; note: ");
            message.push_str(n);
        }
        out.push_str(&format!(
            "        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \
             \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            \
             {{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}\n          ]\n        \
             }}{comma}\n",
            d.rule,
            json_escape(&message),
            json_escape(&d.file),
            d.line,
            d.col,
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_a_valid_looking_document() {
        let d = Diagnostic {
            rule: "DET01",
            file: "crates/x/src/a.rs".into(),
            line: 3,
            col: 9,
            message: "ambient wall-clock read".into(),
            help: "h",
            notes: vec!["`helper` reads the wall clock at crates/y/src/b.rs:1:1".into()],
        };
        let s = render(&[d]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"DET01\""));
        assert!(s.contains("\"startLine\": 3"));
        assert!(s.contains("; note: `helper` reads the wall clock"));
        assert!(s.contains("{\"id\": \"PROTO01\"}"));
        // crude balance check on the hand-assembled JSON
        assert_eq!(
            s.matches('{').count(),
            s.matches('}').count(),
            "braces balance"
        );
    }

    #[test]
    fn empty_run_still_renders() {
        let s = render(&[]);
        assert!(s.contains("\"results\": [\n      ]"));
    }
}

//! The workspace call graph: call sites linked to candidate function
//! definitions by name plus receiver-type heuristics.
//!
//! A hand-rolled lexer cannot do type inference, so resolution is
//! deliberately conservative in both directions:
//!
//! * a **method call** (`recv.name(…)`) links to every workspace method
//!   named `name` — narrowed to the caller's own `impl` type when the
//!   receiver is literally `self`;
//! * a **qualified call** (`Type::name(…)`) links only to methods whose
//!   `impl` type matches — an uppercase qualifier that matches nothing
//!   is treated as an external type, not linked by bare name;
//! * a **module-qualified call** (`module::name(…)`) prefers free
//!   functions defined in a file matching the module name;
//! * a **bare call** (`name(…)`) links to free functions only.
//!
//! Everything that matches no workspace definition lands in the
//! explicit `unresolved` bucket (std/vendored calls, tuple-struct
//! constructors) — the count is surfaced in `--json` output so the
//! soundness gap stays visible instead of silently shrinking the graph.

use crate::lexer::Token;
use crate::rules::KEYWORDS;
use crate::symbols::SymbolIndex;
use std::collections::BTreeSet;

/// One resolved call edge: `caller` invokes `callee` at `line:col` of
/// the caller's file. Parallel calls to the same callee are deduplicated
/// to the first site in token order.
#[derive(Debug, Clone)]
pub struct CallEdge {
    /// Calling function id (index into [`SymbolIndex::fns`]).
    pub caller: usize,
    /// Called function id.
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
    /// 1-based column of the call site.
    pub col: u32,
}

/// The resolved workspace call graph plus its soundness accounting.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All resolved edges.
    pub edges: Vec<CallEdge>,
    /// Outgoing edge indices per function id.
    pub callees_of: Vec<Vec<usize>>,
    /// Incoming edge indices per function id.
    pub callers_of: Vec<Vec<usize>>,
    /// Call-shaped sites inspected (`ident(` sequences, macros excluded).
    pub call_sites: usize,
    /// Sites that linked to at least one workspace definition.
    pub resolved: usize,
    /// Sites with no workspace candidate (std, vendored, constructors).
    pub unresolved: usize,
    /// The distinct unresolved callee names, for `--json` consumers.
    pub unresolved_names: BTreeSet<String>,
}

/// How a call site names its callee — drives candidate narrowing.
enum Shape<'a> {
    Bare,
    Method { self_recv: bool },
    Qualified(Option<&'a str>),
}

impl CallGraph {
    /// Build the graph over an existing symbol index (no re-lexing).
    pub fn build(index: &SymbolIndex) -> CallGraph {
        let mut g = CallGraph {
            callees_of: vec![Vec::new(); index.fns.len()],
            callers_of: vec![Vec::new(); index.fns.len()],
            ..CallGraph::default()
        };
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (fid, def) in index.fns.iter().enumerate() {
            let toks = &index.file_of(fid).tokens;
            let (b0, b1) = def.body;
            for i in b0..b1 {
                let Some(t) = toks.get(i) else { break };
                let Some((name, shape)) = call_at(toks, i) else {
                    continue;
                };
                g.call_sites += 1;
                let targets = resolve(index, def.self_ty.as_deref(), name, &shape);
                if targets.is_empty() {
                    g.unresolved += 1;
                    g.unresolved_names.insert(name.to_string());
                    continue;
                }
                g.resolved += 1;
                for callee in targets {
                    if !seen.insert((fid, callee)) {
                        continue;
                    }
                    let ei = g.edges.len();
                    g.edges.push(CallEdge {
                        caller: fid,
                        callee,
                        line: t.line,
                        col: t.col,
                    });
                    if let Some(v) = g.callees_of.get_mut(fid) {
                        v.push(ei);
                    }
                    if let Some(v) = g.callers_of.get_mut(callee) {
                        v.push(ei);
                    }
                }
            }
        }
        g
    }

    /// The edge with id `ei`. Edge ids are minted by
    /// [`CallGraph::build`] and are always in-bounds.
    pub fn edge(&self, ei: usize) -> &CallEdge {
        // sheriff-lint: allow(PANIC01, "edge ids are minted by build() and bounded by edges.len()")
        &self.edges[ei]
    }
}

/// If tokens\[i\] starts a call-shaped site, its callee name and shape.
fn call_at(toks: &[Token], i: usize) -> Option<(&str, Shape<'_>)> {
    let name = toks.get(i)?.ident()?;
    if KEYWORDS.contains(&name) {
        return None;
    }
    if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return None; // also excludes macros: `name!(…)` has `!` here
    }
    let prev = toks.get(i.wrapping_sub(1));
    if prev.is_some_and(|p| p.is_ident("fn")) {
        return None; // a definition, not a call
    }
    if prev.is_some_and(|p| p.is_punct('.')) {
        let self_recv = toks
            .get(i.wrapping_sub(2))
            .is_some_and(|t| t.is_ident("self"))
            && !toks.get(i.wrapping_sub(3)).is_some_and(|t| t.is_punct('.'));
        return Some((name, Shape::Method { self_recv }));
    }
    if prev.is_some_and(|p| p.is_punct(':'))
        && toks.get(i.wrapping_sub(2)).is_some_and(|p| p.is_punct(':'))
    {
        let qualifier = toks.get(i.wrapping_sub(3)).and_then(Token::ident);
        return Some((name, Shape::Qualified(qualifier)));
    }
    Some((name, Shape::Bare))
}

/// Candidate function ids for a call site.
fn resolve(
    index: &SymbolIndex,
    caller_self_ty: Option<&str>,
    name: &str,
    shape: &Shape<'_>,
) -> Vec<usize> {
    let cands = index.candidates(name);
    match shape {
        Shape::Bare => cands
            .iter()
            .copied()
            .filter(|&id| index.def(id).self_ty.is_none())
            .collect(),
        Shape::Method { self_recv } => {
            let methods: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| index.def(id).self_ty.is_some())
                .collect();
            if *self_recv {
                if let Some(ty) = caller_self_ty {
                    let own: Vec<usize> = methods
                        .iter()
                        .copied()
                        .filter(|&id| index.def(id).self_ty.as_deref() == Some(ty))
                        .collect();
                    if !own.is_empty() {
                        return own;
                    }
                }
            }
            methods
        }
        Shape::Qualified(Some(q)) if q.starts_with(char::is_uppercase) => {
            let ty = if *q == "Self" {
                match caller_self_ty {
                    Some(t) => t,
                    None => return Vec::new(),
                }
            } else {
                q
            };
            // an uppercase qualifier matching no workspace impl is an
            // external type (`Instant::now`): deliberately unresolved
            cands
                .iter()
                .copied()
                .filter(|&id| index.def(id).self_ty.as_deref() == Some(ty))
                .collect()
        }
        Shape::Qualified(q) => {
            let free: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| index.def(id).self_ty.is_none())
                .collect();
            if let Some(module) = q {
                let narrowed: Vec<usize> = free
                    .iter()
                    .copied()
                    .filter(|&id| file_matches_module(&index.file_of(id).path, module))
                    .collect();
                if !narrowed.is_empty() {
                    return narrowed;
                }
            }
            free
        }
    }
}

/// Whether a repo-relative path plausibly defines module `m`: the file
/// stem matches, or the crate directory matches (`_` ↔ `-` folded).
fn file_matches_module(path: &str, m: &str) -> bool {
    let dashed = m.replace('_', "-");
    path.ends_with(&format!("/{m}.rs"))
        || path.ends_with(&format!("/{m}/mod.rs"))
        || path.starts_with(&format!("crates/{dashed}/"))
        || path.starts_with(&format!("crates/{m}/"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SourceFile;

    fn graph_of(files: &[(&str, &str)]) -> (SymbolIndex, CallGraph) {
        let parsed = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let index = SymbolIndex::build(parsed);
        let graph = CallGraph::build(&index);
        (index, graph)
    }

    fn edge_names(index: &SymbolIndex, g: &CallGraph) -> Vec<(String, String)> {
        g.edges
            .iter()
            .map(|e| {
                (
                    index.fns[e.caller].name.clone(),
                    index.fns[e.callee].name.clone(),
                )
            })
            .collect()
    }

    #[test]
    fn resolves_cross_crate_free_fn_calls() {
        let (index, g) = graph_of(&[
            ("crates/a/src/lib.rs", "pub fn root() { helper(); }"),
            ("crates/b/src/lib.rs", "pub fn helper() { }"),
        ]);
        assert_eq!(
            edge_names(&index, &g),
            vec![("root".to_string(), "helper".to_string())]
        );
    }

    #[test]
    fn method_calls_do_not_link_to_free_fns_and_vice_versa() {
        let (index, g) = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn tick() { }\n\
             struct W;\n\
             impl W { fn tick(&self) { } fn go(&self) { self.tick(); } }\n\
             pub fn run(w: &W) { tick(); }\n",
        )]);
        let names = edge_names(&index, &g);
        assert!(names.contains(&("go".to_string(), "tick".to_string())));
        assert!(names.contains(&("run".to_string(), "tick".to_string())));
        // `self.tick()` resolved to the method, `tick()` to the free fn
        let go_edge = g
            .edges
            .iter()
            .find(|e| index.fns[e.caller].name == "go")
            .unwrap();
        assert_eq!(index.fns[go_edge.callee].self_ty.as_deref(), Some("W"));
        let run_edge = g
            .edges
            .iter()
            .find(|e| index.fns[e.caller].name == "run")
            .unwrap();
        assert_eq!(index.fns[run_edge.callee].self_ty, None);
    }

    #[test]
    fn external_types_land_in_the_unresolved_bucket() {
        let (_, g) = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn f() -> u64 { std::time::Instant::now(); Vec::new().len() as u64 }",
        )]);
        assert_eq!(g.edges.len(), 0);
        assert!(g.unresolved >= 2, "now/new/len are not workspace fns");
        assert!(g.unresolved_names.contains("now"));
    }

    #[test]
    fn qualified_calls_narrow_to_the_impl_type() {
        let (index, g) = graph_of(&[(
            "crates/a/src/lib.rs",
            "struct A; struct B;\n\
             impl A { fn make() -> A { A } }\n\
             impl B { fn make() -> B { B } }\n\
             pub fn f() { A::make(); }\n",
        )]);
        let f_edges: Vec<&CallEdge> = g
            .edges
            .iter()
            .filter(|e| index.fns[e.caller].name == "f")
            .collect();
        assert_eq!(f_edges.len(), 1, "only A::make links");
        assert_eq!(index.fns[f_edges[0].callee].self_ty.as_deref(), Some("A"));
    }
}

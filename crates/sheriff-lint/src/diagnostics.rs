//! Typed, rustc-style diagnostics with a `--json` machine rendering.

use std::fmt;

/// Severity of a finding. Everything the rule engine emits today is an
/// error (warnings would rot); the distinction exists for the renderer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the check.
    Error,
    /// Informational (baseline summaries).
    Note,
}

/// One finding: a rule violated at a position, with a suggestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule code, e.g. `DET01`.
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What happened, specific to the site.
    pub message: String,
    /// How to fix or suppress it.
    pub help: &'static str,
    /// Rustc-style `= note:` lines — the interprocedural rules use these
    /// to spell out the call chain from the deterministic root to the
    /// primitive source.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Ordering key: file, then position, then rule — the render order.
    pub fn sort_key(&self) -> (String, u32, u32, &'static str) {
        (self.file.clone(), self.line, self.col, self.rule)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        writeln!(f, "  --> {}:{}:{}", self.file, self.line, self.col)?;
        for n in &self.notes {
            writeln!(f, "   = note: {n}")?;
        }
        write!(f, "   = help: {}", self.help)
    }
}

/// Minimal JSON string escaping (the subset `Diagnostic` fields need).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render one diagnostic as a JSON object (one line, no trailing newline).
pub fn to_json(d: &Diagnostic) -> String {
    let notes: Vec<String> = d
        .notes
        .iter()
        .map(|n| format!("\"{}\"", json_escape(n)))
        .collect();
    format!(
        "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"help\":\"{}\",\"notes\":[{}]}}",
        d.rule,
        json_escape(&d.file),
        d.line,
        d.col,
        json_escape(&d.message),
        json_escape(d.help),
        notes.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "DET01",
            file: "crates/x/src/a.rs".into(),
            line: 3,
            col: 9,
            message: "ambient wall-clock read: `Instant::now`".into(),
            help: "route timing through sheriff_obs::Timer",
            notes: Vec::new(),
        }
    }

    #[test]
    fn renders_notes_between_location_and_help() {
        let mut d = diag();
        d.notes = vec![
            "`helper` calls `inner`".into(),
            "`inner` reads the clock".into(),
        ];
        let text = d.to_string();
        let note_pos = text.find("= note: `helper`").expect("first note");
        let help_pos = text.find("= help:").expect("help");
        assert!(note_pos < help_pos);
        assert!(text.contains("= note: `inner` reads the clock"));
        let j = to_json(&d);
        assert!(j.contains("\"notes\":[\"`helper` calls `inner`\","));
    }

    #[test]
    fn renders_rustc_style() {
        let text = diag().to_string();
        assert!(text.starts_with("error[DET01]: "));
        assert!(text.contains("--> crates/x/src/a.rs:3:9"));
        assert!(text.contains("= help: "));
    }

    #[test]
    fn json_is_escaped() {
        let mut d = diag();
        d.message = "say \"hi\"\n".into();
        let j = to_json(&d);
        assert!(j.contains("\\\"hi\\\"\\n"));
        assert!(j.contains("\"line\":3"));
    }
}

//! The workspace symbol index: every `fn` and `impl`-method definition,
//! with its module path, `#[cfg(test)]`/feature-gate region flags, and
//! body token range.
//!
//! This is the memoization layer the whole-program passes share: each
//! source file is read and lexed exactly once into a [`SourceFile`]
//! (tokens, attribute-derived flags, pragma suppressions), and the
//! [`SymbolIndex`] built over those files feeds the per-file rules, the
//! call graph, the taint fixed-point, and the EVT01/PROTO01 coverage
//! rules without ever re-tokenizing. That single-pass shape is what
//! keeps `check --deny-new` over the ~130-file workspace inside its CI
//! wall-time budget.

use crate::diagnostics::Diagnostic;
use crate::lexer::{lex, Comment, Token, TokenKind};
use crate::pragma::{self, Pragma, Suppressions};
use crate::rules::{compute_flags, Flags, HELP_LINT00, KEYWORDS};
use std::collections::BTreeMap;

/// One source file, read and lexed exactly once.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Code tokens (comments stripped).
    pub tokens: Vec<Token>,
    /// Line comments, for pragma scanning.
    pub comments: Vec<Comment>,
    /// Per-token region flags (`#[cfg(test)]`, legacy feature gate).
    pub(crate) flags: Vec<Flags>,
    /// Whether the file carries `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
    /// Parsed suppression pragmas.
    pub suppressions: Suppressions,
    /// LINT00 findings for malformed pragmas (never suppressible).
    pub lint00: Vec<Diagnostic>,
}

impl SourceFile {
    /// Lex `src` once and derive everything the passes need.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let (flags, has_forbid_unsafe) = compute_flags(&lexed.tokens);
        let mut pragmas: Vec<Pragma> = Vec::new();
        let mut lint00 = Vec::new();
        for c in &lexed.comments {
            match pragma::parse(c) {
                None => {}
                Some(Ok(p)) => pragmas.push(p),
                Some(Err(e)) => lint00.push(Diagnostic {
                    rule: "LINT00",
                    file: path.to_string(),
                    line: c.line,
                    col: c.col,
                    message: e.to_string(),
                    help: HELP_LINT00,
                    notes: Vec::new(),
                }),
            }
        }
        SourceFile {
            path: path.to_string(),
            tokens: lexed.tokens,
            comments: lexed.comments,
            flags,
            has_forbid_unsafe,
            suppressions: Suppressions::from_pragmas(&pragmas),
            lint00,
        }
    }

    /// The region flags for token `i` (default: not test, not legacy).
    pub(crate) fn flag(&self, i: usize) -> Flags {
        self.flags.get(i).copied().unwrap_or_default()
    }
}

/// One function definition found in the workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function name (last path segment only).
    pub name: String,
    /// Index of the defining file in [`SymbolIndex::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// For `impl` methods (and trait-body fns): the self type name.
    pub self_ty: Option<String>,
    /// Defined inside a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
    /// Defined inside a `#[cfg(feature = "legacy")]` region.
    pub is_legacy: bool,
    /// Body token range `[start, end)` into the file's token stream —
    /// empty for bodyless trait declarations.
    pub body: (usize, usize),
}

/// The workspace-wide function index.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    /// All parsed files, in walk (sorted-path) order.
    pub files: Vec<SourceFile>,
    /// All function definitions, in (file, position) order.
    pub fns: Vec<FnDef>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolIndex {
    /// Build the index over already-parsed files (no re-lexing).
    pub fn build(files: Vec<SourceFile>) -> SymbolIndex {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for d in scan_fns(file, fi) {
                by_name.entry(d.name.clone()).or_default().push(fns.len());
                fns.push(d);
            }
        }
        SymbolIndex {
            files,
            fns,
            by_name,
        }
    }

    /// Function ids sharing `name` (free fns and methods alike).
    pub fn candidates(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// The definition of function `id`. Ids are minted by
    /// [`SymbolIndex::build`] and are always in-bounds.
    pub fn def(&self, id: usize) -> &FnDef {
        // sheriff-lint: allow(PANIC01, "fn ids are minted by build() and bounded by fns.len()")
        &self.fns[id]
    }

    /// The file defining function `id`.
    pub fn file_of(&self, id: usize) -> &SourceFile {
        // sheriff-lint: allow(PANIC01, "file ids are minted by build() and bounded by files.len()")
        &self.files[self.def(id).file]
    }
}

/// `impl` regions currently open at a token index.
struct ImplRegion {
    self_ty: String,
    end: usize,
}

/// `impl Trait` in type position (`x: impl Fn()`, `-> impl Iterator`)
/// rather than an `impl` item: recognised by the preceding punctuation.
fn impl_in_type_position(tokens: &[Token], i: usize) -> bool {
    match tokens.get(i.wrapping_sub(1)).map(|t| &t.kind) {
        Some(TokenKind::Punct(c)) => matches!(c, ':' | '(' | ',' | '=' | '&' | '<' | '>' | '|'),
        _ => false,
    }
}

/// Extract every `fn` definition in one file.
fn scan_fns(file: &SourceFile, fi: usize) -> Vec<FnDef> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    let mut impls: Vec<ImplRegion> = Vec::new();
    let mut i = 0usize;
    while let Some(t) = tokens.get(i) {
        impls.retain(|r| r.end > i);
        if t.is_ident("impl") && !impl_in_type_position(tokens, i) {
            if let Some((self_ty, body_start, body_end)) = scan_impl_header(tokens, i) {
                impls.push(ImplRegion {
                    self_ty,
                    end: body_end,
                });
                i = body_start; // descend into the impl body
                continue;
            }
        }
        if t.is_ident("trait") {
            // `trait Name … { … }`: body fns are methods of the trait
            if let Some((name, body_start, body_end)) = scan_trait_header(tokens, i) {
                impls.push(ImplRegion {
                    self_ty: name,
                    end: body_end,
                });
                i = body_start;
                continue;
            }
        }
        if t.is_ident("fn") {
            // `fn` in a function-pointer type has no name ident after it
            if let Some(name) = tokens.get(i + 1).and_then(Token::ident) {
                let flags = file.flag(i);
                let body = fn_body_range(tokens, i + 2);
                out.push(FnDef {
                    name: name.to_string(),
                    file: fi,
                    line: t.line,
                    col: t.col,
                    self_ty: impls.last().map(|r| r.self_ty.clone()),
                    is_test: flags.test,
                    is_legacy: flags.legacy,
                    body,
                });
                // continue scanning *inside* the body: nested fns and the
                // call sites the graph pass reads both live there
            }
        }
        i += 1;
    }
    out
}

/// Parse an `impl` header starting at tokens\[i\] == `impl`: returns the
/// self-type name (the segment after `for`, or the last path segment of
/// the implemented type), the body-start index (one past `{`), and the
/// body-end index (one past the matching `}`).
fn scan_impl_header(tokens: &[Token], i: usize) -> Option<(String, usize, usize)> {
    let mut j = i + 1;
    // skip generic parameters: `impl<...>`
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while let Some(t) = tokens.get(j) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    let mut self_ty: Option<String> = None;
    let mut in_where = false;
    let mut angle = 0i32;
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            TokenKind::Punct('{') if angle <= 0 => {
                let body_start = j + 1;
                let mut depth = 1i32;
                let mut k = body_start;
                while let Some(t2) = tokens.get(k) {
                    if t2.is_punct('{') {
                        depth += 1;
                    } else if t2.is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            return self_ty.map(|ty| (ty, body_start, k + 1));
                        }
                    }
                    k += 1;
                }
                return self_ty.map(|ty| (ty, body_start, tokens.len()));
            }
            TokenKind::Punct(';') if angle <= 0 => return None,
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Ident(s) if s == "for" && angle <= 0 => {
                self_ty = None; // the real self type follows
            }
            TokenKind::Ident(s) if s == "where" && angle <= 0 => {
                in_where = true; // type name is settled; scan on to the `{`
            }
            TokenKind::Ident(s) if angle <= 0 && !in_where && !KEYWORDS.contains(&s.as_str()) => {
                // keep the last path segment seen (skips module qualifiers)
                self_ty = Some(s.clone());
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parse a `trait` header starting at tokens\[i\] == `trait`: the trait
/// name plus the body-start/body-end token indices.
fn scan_trait_header(tokens: &[Token], i: usize) -> Option<(String, usize, usize)> {
    let name = tokens.get(i + 1)?.ident()?.to_string();
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut j = i + 2;
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren -= 1,
            TokenKind::Punct(';') if angle <= 0 && paren <= 0 => return None, // alias
            TokenKind::Punct('{') if angle <= 0 && paren <= 0 => {
                let body_start = j + 1;
                let mut depth = 1i32;
                let mut k = body_start;
                while let Some(t2) = tokens.get(k) {
                    if t2.is_punct('{') {
                        depth += 1;
                    } else if t2.is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            return Some((name, body_start, k + 1));
                        }
                    }
                    k += 1;
                }
                return Some((name, body_start, tokens.len()));
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// From just past the fn name, find the body `{ … }` token range.
/// Returns an empty range for bodyless trait declarations (`;`).
fn fn_body_range(tokens: &[Token], mut j: usize) -> (usize, usize) {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut angle = 0i32;
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren -= 1,
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket -= 1,
            TokenKind::Punct('<') if paren <= 0 => angle += 1,
            TokenKind::Punct('>') if paren <= 0 => angle = (angle - 1).max(0),
            TokenKind::Punct(';') if paren <= 0 && bracket <= 0 => return (j, j),
            TokenKind::Punct('{') if paren <= 0 && bracket <= 0 && angle <= 0 => {
                let start = j + 1;
                let mut depth = 1i32;
                let mut k = start;
                while let Some(t2) = tokens.get(k) {
                    if t2.is_punct('{') {
                        depth += 1;
                    } else if t2.is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            return (start, k);
                        }
                    }
                    k += 1;
                }
                return (start, tokens.len());
            }
            _ => {}
        }
        j += 1;
    }
    (tokens.len(), tokens.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(src: &str) -> SymbolIndex {
        SymbolIndex::build(vec![SourceFile::parse("crates/x/src/lib.rs", src)])
    }

    #[test]
    fn finds_free_fns_methods_and_trait_impls() {
        let idx = index_of(
            "fn free() { helper(); }\n\
             struct W;\n\
             impl W { fn method(&self) -> u32 { 7 } }\n\
             impl std::fmt::Display for W {\n\
                 fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n\
             }\n",
        );
        let names: Vec<(&str, Option<&str>)> = idx
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_ty.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![("free", None), ("method", Some("W")), ("fmt", Some("W"))]
        );
    }

    #[test]
    fn test_region_flags_carry_to_defs() {
        let idx = index_of(
            "fn live() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn gated() { live(); }\n\
             }\n",
        );
        assert!(!idx.fns[0].is_test);
        assert!(
            idx.fns[1].is_test,
            "fn inside #[cfg(test)] mod is test-gated"
        );
    }

    #[test]
    fn body_ranges_cover_the_braces_only() {
        let idx = index_of("fn f(x: u32) -> u32 { x + 1 }\ntrait T { fn decl(&self); }\n");
        let f = &idx.fns[0];
        let (s, e) = f.body;
        assert!(s < e, "fn with a body has a non-empty range");
        let decl = &idx.fns[1];
        assert_eq!(decl.body.0, decl.body.1, "trait declaration has no body");
        assert_eq!(decl.self_ty.as_deref(), Some("T"));
    }

    #[test]
    fn generic_impl_headers_resolve_the_self_type() {
        let idx = index_of(
            "struct Ring<T> { items: Vec<T> }\n\
             impl<T: Clone> Ring<T> where T: Send { fn push(&mut self, t: T) {} }\n",
        );
        assert_eq!(idx.fns[0].self_ty.as_deref(), Some("Ring"));
    }
}

//! The rule engine: the per-file rules over the token stream, plus the
//! whole-program passes that run over the workspace symbol index.
//!
//! | Code     | Invariant guarded                                            |
//! |----------|--------------------------------------------------------------|
//! | DET01    | no ambient wall clock outside `sheriff-obs`, and no call     |
//! |          | chain from a deterministic root that reaches one             |
//! | DET02    | no order-sensitive `HashMap`/`HashSet` iteration in          |
//! |          | deterministic modules, nor reachable from them               |
//! | DET03    | no ambient randomness (`thread_rng`, `rand::random`),        |
//! |          | intraprocedural or reachable                                 |
//! | PANIC01  | no `unwrap`/`expect`/indexing in non-test library code       |
//! | UNSAFE01 | every crate root carries `#![forbid(unsafe_code)]`           |
//! | API01    | no `legacy`-gated free functions outside the feature gate    |
//! | EVT01    | every `sheriff-obs::Event` variant has a non-test emit site  |
//! | PROTO01  | protocol `match`es in deterministic modules take a position  |
//! |          | on every variant — no `_` catch-all                          |
//! | LINT00   | (meta) malformed `sheriff-lint:` pragmas never silently      |
//! |          | suppress nothing                                             |
//!
//! The engine is heuristic by design — a hand-rolled lexer cannot do
//! type inference — but every heuristic errs so that real regressions in
//! *this* workspace are caught, and false positives have a typed escape
//! hatch: `// sheriff-lint: allow(RULE, "reason")`.

use crate::callgraph::CallGraph;
use crate::diagnostics::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};
use crate::symbols::{SourceFile, SymbolIndex};
use crate::taint;
use std::collections::BTreeSet;

/// Rule codes, in report order.
pub const RULES: &[&str] = &[
    "DET01", "DET02", "DET03", "PANIC01", "UNSAFE01", "API01", "EVT01", "PROTO01", "LINT00",
];

const HELP_DET01: &str = "route timing through sheriff_obs::Timer (wall clock is excluded from \
     canonical output there), or add `// sheriff-lint: allow(DET01, \"why\")`";
const HELP_DET02: &str = "iterate a BTreeMap/BTreeSet, sort the items in this statement, or add \
     `// sheriff-lint: allow(DET02, \"why the order cannot leak\")`";
const HELP_DET03: &str = "construct a seeded RNG (e.g. `StdRng::seed_from_u64`) and thread it \
     through, or add `// sheriff-lint: allow(DET03, \"why\")`";
const HELP_PANIC01: &str = "return the module's typed error instead (SheriffError / FitError / \
     TraceIoError patterns), use `.get(..)`, or add `// sheriff-lint: allow(PANIC01, \"why this \
     cannot panic\")`";
const HELP_UNSAFE01: &str = "add `#![forbid(unsafe_code)]` next to the crate's other inner \
     attributes";
const HELP_API01: &str = "migrate to the `Runtime` trait (`FabricRuntime` & friends) or the \
     `_obs` variants; the free functions only exist behind `--features legacy`";
pub(crate) const HELP_LINT00: &str = "write `// sheriff-lint: allow(RULE, \"reason\")` — a \
     typo'd pragma must not silently suppress nothing";
const HELP_EVT01: &str = "emit the variant from the runtime path it documents (see DESIGN.md \
     §7's event-to-paper map), or delete it — dead telemetry rots the map";
const HELP_PROTO01: &str = "name every variant (or-patterns are fine) so the next protocol \
     extension forces this handler to take a position, or add \
     `// sheriff-lint: allow(PROTO01, \"why\")` on the match";

/// Keywords that can directly precede `[` without forming an index
/// expression (plus everything that is never an expression tail).
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// Identifiers that make a hash-iteration statement order-insensitive:
/// explicit sorts, BTree rebuilds, and commutative terminal consumers.
pub(crate) const NEUTRALIZERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "sum",
    "count",
    "len",
    "is_empty",
    "all",
    "any",
    "min",
    "max",
];

/// Methods whose receiver order becomes observable.
pub(crate) const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Workspace knowledge shared across files (built by a pre-pass).
#[derive(Debug, Default)]
pub struct LintContext {
    /// Free functions defined under `#[cfg(feature = "legacy")]`.
    pub legacy_fns: BTreeSet<String>,
}

/// Paths (repo-relative, `/`-separated) whose iteration order is part of
/// the reproducibility contract: the management loops, the simulator,
/// the transfer scheduler, and the scenario runner's pure `run_job`
/// path. These are also the taint pass's reachability roots.
pub(crate) fn is_deterministic_module(path: &str) -> bool {
    path.starts_with("crates/sheriff-core/src/")
        || path.starts_with("crates/sheriff-sim/src/")
        || path.starts_with("crates/dcn-sim/src/")
        || path.starts_with("crates/sheriff-transfer/src/")
        || path == "crates/sheriff-scenario/src/runner.rs"
}

/// The one crate allowed to read the wall clock: its `Timer` keeps wall
/// durations out of the deterministic event stream by contract.
pub(crate) fn is_wall_clock_allowlisted(path: &str) -> bool {
    path.starts_with("crates/sheriff-obs/")
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`.
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

// ------------------------------------------------------------- regions

/// Per-token flags derived from attributes: inside a `#[cfg(test)]` /
/// `#[test]` item, or inside a `#[cfg(feature = "legacy")]` item.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Flags {
    pub(crate) test: bool,
    pub(crate) legacy: bool,
}

#[derive(Debug)]
struct Attr {
    /// Index of the `#` token.
    hash: usize,
    /// Index one past the closing `]`.
    end: usize,
    inner: bool,
    idents: Vec<String>,
    literals: Vec<String>,
}

/// Scan one attribute starting at tokens\[i\] == `#`.
fn scan_attr(tokens: &[Token], i: usize) -> Option<Attr> {
    let mut j = i + 1;
    let inner = tokens.get(j).is_some_and(|t| t.is_punct('!'));
    if inner {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return None;
    }
    j += 1;
    let mut depth = 1u32;
    let mut idents = Vec::new();
    let mut literals = Vec::new();
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(Attr {
                        hash: i,
                        end: j + 1,
                        inner,
                        idents,
                        literals,
                    });
                }
            }
            TokenKind::Ident(s) => idents.push(s.clone()),
            TokenKind::Literal(s) => literals.push(s.clone()),
            _ => {}
        }
        j += 1;
    }
    None
}

/// Index one past the end of the item starting at `start`: the matching
/// `}` of its first top-level brace block, or its terminating `;`.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut j = start;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren -= 1,
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket -= 1,
            TokenKind::Punct(';') if paren <= 0 && bracket <= 0 => return j + 1,
            TokenKind::Punct('{') if paren <= 0 && bracket <= 0 => {
                let mut depth = 1i32;
                let mut k = j + 1;
                while let Some(t2) = tokens.get(k) {
                    match &t2.kind {
                        TokenKind::Punct('{') => depth += 1,
                        TokenKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return k + 1;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                return tokens.len();
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// Compute per-token flags plus file-level facts from the attributes.
pub(crate) fn compute_flags(tokens: &[Token]) -> (Vec<Flags>, bool) {
    let mut flags = vec![Flags::default(); tokens.len()];
    let mut has_forbid_unsafe = false;
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens.get(i).is_some_and(|t| t.is_punct('#')) {
            i += 1;
            continue;
        }
        let Some(attr) = scan_attr(tokens, i) else {
            i += 1;
            continue;
        };
        let is_test_attr = attr.idents.iter().any(|s| s == "test");
        let is_legacy_attr = attr.idents.iter().any(|s| s == "cfg")
            && attr.idents.iter().any(|s| s == "feature")
            && attr.literals.iter().any(|s| s.contains("legacy"));
        if attr.inner {
            if is_test_attr {
                // `#![cfg(test)]`: the whole file is test code
                for f in &mut flags {
                    f.test = true;
                }
            }
            if attr.idents.iter().any(|s| s == "forbid")
                && attr.idents.iter().any(|s| s == "unsafe_code")
            {
                has_forbid_unsafe = true;
            }
            i = attr.end;
            continue;
        }
        if !(is_test_attr || is_legacy_attr) {
            i = attr.end;
            continue;
        }
        // skip any further attributes between this one and the item
        let mut item_start = attr.end;
        while tokens.get(item_start).is_some_and(|t| t.is_punct('#')) {
            match scan_attr(tokens, item_start) {
                Some(a) => item_start = a.end,
                None => break,
            }
        }
        let end = item_end(tokens, item_start);
        for f in flags.iter_mut().take(end.min(tokens.len())).skip(attr.hash) {
            if is_test_attr {
                f.test = true;
            }
            if is_legacy_attr {
                f.legacy = true;
            }
        }
        i = attr.end;
    }
    (flags, has_forbid_unsafe)
}

// ------------------------------------------------------- legacy pre-pass

/// Collect the names of free functions defined under
/// `#[cfg(feature = "legacy")]` — the API01 deny-list. Run over every
/// `sheriff-core` source file before linting the workspace.
pub fn collect_legacy_fns(src: &str) -> Vec<String> {
    let tokens = lex(src).tokens;
    let (flags, _) = compute_flags(&tokens);
    let mut out = Vec::new();
    let mut iter = tokens.iter().enumerate().peekable();
    while let Some((i, t)) = iter.next() {
        if !t.is_ident("fn") {
            continue;
        }
        if !flags.get(i).copied().unwrap_or_default().legacy {
            continue;
        }
        if let Some((_, name_tok)) = iter.peek() {
            if let Some(name) = name_tok.ident() {
                out.push(name.to_string());
            }
        }
    }
    out
}

// ------------------------------------------------------------ the rules

fn diag(
    rule: &'static str,
    path: &str,
    tok: &Token,
    message: String,
    help: &'static str,
) -> Diagnostic {
    Diagnostic {
        rule,
        file: path.to_string(),
        line: tok.line,
        col: tok.col,
        message,
        help,
        notes: Vec::new(),
    }
}

/// The help string for a DET rule code — used by the taint pass so the
/// interprocedural findings carry the same remediation text.
pub(crate) fn det_help(rule: &str) -> &'static str {
    match rule {
        "DET01" => HELP_DET01,
        "DET02" => HELP_DET02,
        _ => HELP_DET03,
    }
}

/// `A :: B` at index `i`: the path-segment pair (A, B) if present.
pub(crate) fn path_pair(tokens: &[Token], i: usize) -> Option<(&str, &str)> {
    let a = tokens.get(i)?.ident()?;
    if !(tokens.get(i + 1)?.is_punct(':') && tokens.get(i + 2)?.is_punct(':')) {
        return None;
    }
    let b = tokens.get(i + 3)?.ident()?;
    Some((a, b))
}

fn det01(tokens: &[Token], flags: &[Flags], path: &str, out: &mut Vec<Diagnostic>) {
    if is_wall_clock_allowlisted(path) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if flags.get(i).copied().unwrap_or_default().test {
            continue;
        }
        if let Some((a, b)) = path_pair(tokens, i) {
            if (a == "SystemTime" || a == "Instant") && b == "now" {
                out.push(diag(
                    "DET01",
                    path,
                    t,
                    format!(
                        "ambient wall-clock read: `{a}::now()` breaks same-seed reproducibility"
                    ),
                    HELP_DET01,
                ));
            }
        }
    }
}

fn det03(tokens: &[Token], flags: &[Flags], path: &str, out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if flags.get(i).copied().unwrap_or_default().test {
            continue;
        }
        if t.is_ident("thread_rng") {
            out.push(diag(
                "DET03",
                path,
                t,
                "ambient randomness: `thread_rng` is seeded from the OS".to_string(),
                HELP_DET03,
            ));
        } else if let Some(("rand", "random")) = path_pair(tokens, i) {
            out.push(diag(
                "DET03",
                path,
                t,
                "ambient randomness: `rand::random` is seeded from the OS".to_string(),
                HELP_DET03,
            ));
        }
    }
}

/// Names in this file declared (or initialised) as `HashMap`/`HashSet`.
pub(crate) fn hash_typed_names(tokens: &[Token]) -> BTreeSet<String> {
    const WINDOW: usize = 9;
    let mut names = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if KEYWORDS.contains(&name) {
            continue;
        }
        // `name : … HashMap …` (type ascription / struct field), where the
        // `:` is not a path separator
        let ascription = tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && !tokens
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.is_punct(':'));
        // `let [mut] name = … HashMap …`
        let let_binding = tokens.get(i + 1).is_some_and(|n| n.is_punct('='))
            && !tokens.get(i + 2).is_some_and(|n| n.is_punct('='))
            && {
                let prev = tokens.get(i.wrapping_sub(1));
                prev.is_some_and(|p| p.is_ident("let"))
                    || (prev.is_some_and(|p| p.is_ident("mut"))
                        && tokens
                            .get(i.wrapping_sub(2))
                            .is_some_and(|p| p.is_ident("let")))
            };
        if !(ascription || let_binding) {
            continue;
        }
        let hashy = tokens
            .iter()
            .skip(i + 2)
            .take(WINDOW)
            .take_while(|n| !n.is_punct(';'))
            .any(|n| n.is_ident("HashMap") || n.is_ident("HashSet"));
        if hashy {
            names.insert(name.to_string());
        }
    }
    names
}

/// Idents of the statement containing index `i` plus the following
/// statement — the window in which a sort/BTree rebuild neutralises an
/// order-sensitive iteration.
pub(crate) fn statement_window_has_neutralizer(tokens: &[Token], i: usize) -> bool {
    // backward to the start of the statement
    let before = tokens
        .iter()
        .take(i)
        .rev()
        .take_while(|t| !(t.is_punct(';') || t.is_punct('{') || t.is_punct('}')));
    // forward through the end of the *next* statement
    let mut semis = 0u32;
    let after = tokens.iter().skip(i).take_while(move |t| {
        if t.is_punct(';') {
            semis += 1;
        }
        semis < 2
    });
    before
        .chain(after)
        .filter_map(|t| t.ident())
        .any(|s| NEUTRALIZERS.contains(&s))
}

/// Whether tokens\[i\] is an order-sensitive iteration over one of
/// `names` (the file's hash-typed bindings) that no sort/BTree rebuild
/// neutralises within its statement window. Returns the binding name.
/// Shared between the intraprocedural DET02 rule and the taint seeder.
pub(crate) fn hash_iter_site<'a>(
    tokens: &'a [Token],
    i: usize,
    names: &BTreeSet<String>,
) -> Option<&'a str> {
    let name = tokens.get(i)?.ident()?;
    if !names.contains(name) {
        return None;
    }
    // `name.iter()` and friends
    let method_iter = tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
        && tokens
            .get(i + 2)
            .and_then(|n| n.ident())
            .is_some_and(|m| ITER_METHODS.contains(&m))
        && tokens.get(i + 3).is_some_and(|n| n.is_punct('('));
    // `for … in [&|&mut|(] name {`
    let for_iter = {
        let mut j = i;
        let mut saw_in = false;
        while j > 0 {
            j -= 1;
            match tokens.get(j).map(|p| &p.kind) {
                Some(TokenKind::Punct('&' | '(')) => continue,
                Some(TokenKind::Ident(s)) if s == "mut" => continue,
                Some(TokenKind::Ident(s)) if s == "in" => {
                    saw_in = true;
                    break;
                }
                _ => break,
            }
        }
        saw_in && tokens.get(i + 1).is_some_and(|n| n.is_punct('{'))
    };
    if !(method_iter || for_iter) {
        return None;
    }
    if statement_window_has_neutralizer(tokens, i) {
        return None;
    }
    Some(name)
}

fn det02(tokens: &[Token], flags: &[Flags], path: &str, out: &mut Vec<Diagnostic>) {
    if !is_deterministic_module(path) {
        return;
    }
    let names = hash_typed_names(tokens);
    if names.is_empty() {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if flags.get(i).copied().unwrap_or_default().test {
            continue;
        }
        let Some(name) = hash_iter_site(tokens, i, &names) else {
            continue;
        };
        out.push(diag(
            "DET02",
            path,
            t,
            format!(
                "iteration over hash-ordered `{name}` in a deterministic module: the visit \
                 order can differ across processes"
            ),
            HELP_DET02,
        ));
    }
}

fn panic01(tokens: &[Token], flags: &[Flags], path: &str, out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if flags.get(i).copied().unwrap_or_default().test {
            continue;
        }
        match &t.kind {
            TokenKind::Ident(m) if (m == "unwrap" || m == "expect") => {
                let is_call = tokens
                    .get(i.wrapping_sub(1))
                    .is_some_and(|p| p.is_punct('.'))
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
                if is_call {
                    out.push(diag(
                        "PANIC01",
                        path,
                        t,
                        format!("`.{m}()` can panic on the library hot path"),
                        HELP_PANIC01,
                    ));
                }
            }
            TokenKind::Punct('[') => {
                let indexes = match tokens.get(i.wrapping_sub(1)).map(|p| &p.kind) {
                    Some(TokenKind::Ident(s)) => !KEYWORDS.contains(&s.as_str()),
                    Some(TokenKind::Punct(')' | ']')) => true,
                    _ => false,
                };
                if indexes {
                    out.push(diag(
                        "PANIC01",
                        path,
                        t,
                        "direct indexing can panic on out-of-bounds access".to_string(),
                        HELP_PANIC01,
                    ));
                }
            }
            _ => {}
        }
    }
}

fn unsafe01(tokens: &[Token], has_forbid: bool, path: &str, out: &mut Vec<Diagnostic>) {
    if !is_crate_root(path) || has_forbid {
        return;
    }
    let anchor = tokens.first().cloned().unwrap_or(Token {
        kind: TokenKind::Punct('?'),
        line: 1,
        col: 1,
    });
    out.push(Diagnostic {
        rule: "UNSAFE01",
        file: path.to_string(),
        line: anchor.line,
        col: anchor.col,
        message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        help: HELP_UNSAFE01,
        notes: Vec::new(),
    });
}

fn api01(
    tokens: &[Token],
    flags: &[Flags],
    path: &str,
    ctx: &LintContext,
    out: &mut Vec<Diagnostic>,
) {
    if ctx.legacy_fns.is_empty() {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        let f = flags.get(i).copied().unwrap_or_default();
        if f.test || f.legacy {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        if !ctx.legacy_fns.contains(name) {
            continue;
        }
        // the definition token itself (`fn name`) is exempt — the gate on
        // the item already covers it, this guards against lexer drift
        if tokens
            .get(i.wrapping_sub(1))
            .is_some_and(|p| p.is_ident("fn"))
        {
            continue;
        }
        out.push(diag(
            "API01",
            path,
            t,
            format!("`{name}` is a deprecated legacy-gated free function"),
            HELP_API01,
        ));
    }
}

// ------------------------------------------------- PROTO01 (match arms)

/// Enum names whose `match`es must take a position on every variant:
/// the shim wire protocol, the 2PC reply lattice, and the fabric's own
/// event agenda.
const PROTO_ENUMS: &[&str] = &["ShimMsg", "TwoPhaseReply", "FabricEvent"];

/// PROTO01: a `match` in a deterministic module whose arm *patterns*
/// name a protocol enum must not carry a bare `_` catch-all arm — when
/// the next PR adds a variant, every handler has to take a position.
/// Only patterns are inspected (tokens between the arm start and its
/// `=>`), so constructing a protocol message inside an arm body never
/// qualifies the surrounding match.
fn proto01(tokens: &[Token], flags: &[Flags], path: &str, out: &mut Vec<Diagnostic>) {
    if !is_deterministic_module(path) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("match") || flags.get(i).copied().unwrap_or_default().test {
            continue;
        }
        let Some(open) = match_block_open(tokens, i) else {
            continue;
        };
        let close = block_close(tokens, open);
        let mut protocol = false;
        let mut catchalls: Vec<&Token> = Vec::new();
        let mut k = open + 1;
        while k < close {
            let Some((pattern, arrow)) = arm_pattern(tokens, k, close) else {
                break;
            };
            // the pattern proper stops at a `if` guard
            let guard = pattern
                .iter()
                .position(|p| p.is_ident("if"))
                .unwrap_or(pattern.len());
            if pattern
                .iter()
                .take(guard)
                .any(|p| p.ident().is_some_and(|s| PROTO_ENUMS.contains(&s)))
            {
                protocol = true;
            }
            if guard == 1 {
                if let Some(u) = pattern.first().filter(|p| p.is_ident("_")) {
                    catchalls.push(u);
                }
            }
            k = arm_body_end(tokens, arrow + 2, close);
        }
        if !protocol {
            continue;
        }
        for c in catchalls {
            out.push(diag(
                "PROTO01",
                path,
                c,
                "`_` catch-all in a protocol match: new `ShimMsg`/`TwoPhaseReply`/fabric \
                 event variants would be silently swallowed here"
                    .to_string(),
                HELP_PROTO01,
            ));
        }
    }
}

/// From a `match` keyword, the index of the `{` opening its arm block.
fn match_block_open(tokens: &[Token], i: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut j = i + 1;
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren -= 1,
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket -= 1,
            TokenKind::Punct('{') if paren <= 0 && bracket <= 0 => return Some(j),
            TokenKind::Punct(';') if paren <= 0 && bracket <= 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn block_close(tokens: &[Token], open: usize) -> usize {
    let mut depth = 1i32;
    let mut k = open + 1;
    while let Some(t) = tokens.get(k) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    tokens.len()
}

/// Parse one arm's pattern starting at `k`: the tokens before its `=>`,
/// and the index of the arrow's `=`.
fn arm_pattern(tokens: &[Token], k: usize, close: usize) -> Option<(Vec<&Token>, usize)> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut pattern = Vec::new();
    let mut m = k;
    while m < close {
        let Some(t) = tokens.get(m) else { break };
        if paren <= 0
            && bracket <= 0
            && brace <= 0
            && t.is_punct('=')
            && tokens.get(m + 1).is_some_and(|n| n.is_punct('>'))
        {
            return Some((pattern, m));
        }
        match &t.kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren -= 1,
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket -= 1,
            TokenKind::Punct('{') => brace += 1,
            TokenKind::Punct('}') => brace -= 1,
            _ => {}
        }
        pattern.push(t);
        m += 1;
    }
    None
}

/// Skip one arm body starting just past `=>`: returns the index of the
/// next arm's first token.
fn arm_body_end(tokens: &[Token], start: usize, close: usize) -> usize {
    let mut m = start;
    if tokens.get(m).is_some_and(|t| t.is_punct('{')) {
        m = block_close(tokens, m) + 1;
        if tokens.get(m).is_some_and(|t| t.is_punct(',')) {
            m += 1;
        }
        return m.min(close);
    }
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    while m < close {
        let Some(t) = tokens.get(m) else { break };
        match &t.kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren -= 1,
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket -= 1,
            TokenKind::Punct('{') => brace += 1,
            TokenKind::Punct('}') => brace -= 1,
            TokenKind::Punct(',') if paren <= 0 && bracket <= 0 && brace <= 0 => {
                return m + 1;
            }
            _ => {}
        }
        m += 1;
    }
    close
}

// ------------------------------------------------ EVT01 (event coverage)

/// The file defining the observability event vocabulary.
const EVENT_ENUM_FILE: &str = "crates/sheriff-obs/src/event.rs";

/// EVT01: every `sheriff-obs::Event` variant needs at least one non-test
/// `Event::Variant` use outside `sheriff-obs` itself — dead telemetry is
/// how DESIGN.md §7's event-to-paper map rots. (Pattern uses count as
/// live sites too: a consumed variant is wired, not dead.)
fn evt01(index: &SymbolIndex, out: &mut Vec<Diagnostic>) {
    let Some(efile) = index.files.iter().find(|f| f.path == EVENT_ENUM_FILE) else {
        return;
    };
    let variants = enum_variants(&efile.tokens, "Event");
    if variants.is_empty() {
        return;
    }
    let mut live: BTreeSet<&str> = BTreeSet::new();
    for file in &index.files {
        if file.path.starts_with("crates/sheriff-obs/") {
            continue;
        }
        for i in 0..file.tokens.len() {
            if file.flag(i).test {
                continue;
            }
            if let Some(("Event", v)) = path_pair(&file.tokens, i) {
                live.insert(v);
            }
        }
    }
    for (name, tok) in &variants {
        if !live.contains(name.as_str()) {
            out.push(diag(
                "EVT01",
                EVENT_ENUM_FILE,
                tok,
                format!(
                    "`Event::{name}` has no non-test emit or consume site outside \
                     `sheriff-obs`: dead telemetry"
                ),
                HELP_EVT01,
            ));
        }
    }
}

/// The variants of `enum <name>` in a token stream, with their tokens.
fn enum_variants<'a>(tokens: &'a [Token], name: &str) -> Vec<(String, &'a Token)> {
    let mut out = Vec::new();
    let Some(pos) = tokens
        .windows(2)
        .position(|w| matches!(w, [a, b] if a.is_ident("enum") && b.is_ident(name)))
    else {
        return out;
    };
    let Some(open) = tokens
        .iter()
        .enumerate()
        .skip(pos + 2)
        .find(|(_, t)| t.is_punct('{'))
        .map(|(i, _)| i)
    else {
        return out;
    };
    let close = block_close(tokens, open);
    let mut expect_variant = true;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut k = open + 1;
    while k < close {
        let Some(t) = tokens.get(k) else { break };
        match &t.kind {
            TokenKind::Punct('#') if expect_variant => {
                // skip the variant's attributes
                if let Some(a) = scan_attr(tokens, k) {
                    k = a.end;
                    continue;
                }
            }
            TokenKind::Ident(s)
                if expect_variant
                    && paren <= 0
                    && bracket <= 0
                    && brace <= 0
                    && !KEYWORDS.contains(&s.as_str()) =>
            {
                out.push((s.clone(), t));
                expect_variant = false;
            }
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren -= 1,
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket -= 1,
            TokenKind::Punct('{') => brace += 1,
            TokenKind::Punct('}') => brace -= 1,
            TokenKind::Punct(',') if paren <= 0 && bracket <= 0 && brace <= 0 => {
                expect_variant = true;
            }
            _ => {}
        }
        k += 1;
    }
    out
}

// ---------------------------------------------------------- entry points

/// Run the per-file rules over one already-parsed file. Suppressions are
/// applied; the result is unsorted.
fn lint_file(file: &SourceFile, ctx: &LintContext) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = file.lint00.clone();
    let tokens = &file.tokens;
    let flags = &file.flags;
    let path = &file.path;
    det01(tokens, flags, path, &mut out);
    det02(tokens, flags, path, &mut out);
    det03(tokens, flags, path, &mut out);
    panic01(tokens, flags, path, &mut out);
    unsafe01(tokens, file.has_forbid_unsafe, path, &mut out);
    api01(tokens, flags, path, ctx, &mut out);
    proto01(tokens, flags, path, &mut out);
    out.retain(|d| d.rule == "LINT00" || !file.suppressions.covers(d.rule, d.line));
    out
}

/// Lint one source file. `path` must be repo-relative with `/`
/// separators — it selects which rules apply. (The whole-program rules
/// need the full workspace: see [`lint_workspace`].)
pub fn lint_source(path: &str, src: &str, ctx: &LintContext) -> Vec<Diagnostic> {
    let file = SourceFile::parse(path, src);
    let mut out = lint_file(&file, ctx);
    out.sort_by_key(Diagnostic::sort_key);
    out
}

/// Whole-workspace accounting surfaced in `--json` output, including the
/// call graph's explicit unresolved bucket.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Source files linted.
    pub files: usize,
    /// Function definitions indexed.
    pub functions: usize,
    /// Call-shaped sites inspected.
    pub call_sites: usize,
    /// Sites linked to at least one workspace definition.
    pub resolved_calls: usize,
    /// Sites with no workspace candidate (std, vendored, constructors) —
    /// the graph's visible soundness gap.
    pub unresolved_calls: usize,
    /// Functions tainted by at least one determinism taint kind.
    pub tainted_functions: usize,
}

impl EngineStats {
    /// One-line JSON rendering, emitted after the findings in `--json`
    /// mode.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"stats\":{{\"files\":{},\"functions\":{},\"call_sites\":{},\
             \"resolved_calls\":{},\"unresolved_calls\":{},\"tainted_functions\":{}}}}}",
            self.files,
            self.functions,
            self.call_sites,
            self.resolved_calls,
            self.unresolved_calls,
            self.tainted_functions
        )
    }
}

/// Build the [`LintContext`] from already-parsed files: the API01
/// deny-list of `legacy`-gated free functions in `sheriff-core`.
pub fn context_from_files(files: &[SourceFile]) -> LintContext {
    let mut ctx = LintContext::default();
    for f in files {
        if !f.path.starts_with("crates/sheriff-core/src/") {
            continue;
        }
        for (i, t) in f.tokens.iter().enumerate() {
            if !t.is_ident("fn") || !f.flag(i).legacy {
                continue;
            }
            if let Some(name) = f.tokens.get(i + 1).and_then(Token::ident) {
                ctx.legacy_fns.insert(name.to_string());
            }
        }
    }
    ctx
}

/// Lint the whole workspace: the per-file rules plus the symbol-index,
/// call-graph, taint, EVT01, and PROTO01 passes — all off the memoized
/// per-file token streams (each file is lexed exactly once).
pub fn lint_workspace(files: Vec<SourceFile>, ctx: &LintContext) -> (Vec<Diagnostic>, EngineStats) {
    let mut out = Vec::new();
    for f in &files {
        out.extend(lint_file(f, ctx));
    }

    let index = SymbolIndex::build(files);
    let graph = CallGraph::build(&index);
    let taint_map = taint::analyze(&index, &graph);

    let mut global = taint::interprocedural_diagnostics(&index, &graph, &taint_map);
    evt01(&index, &mut global);
    global.retain(|d| {
        let suppressed = index
            .files
            .iter()
            .find(|f| f.path == d.file)
            .is_some_and(|f| f.suppressions.covers(d.rule, d.line));
        !suppressed
    });
    out.extend(global);
    out.sort_by_key(Diagnostic::sort_key);

    let stats = EngineStats {
        files: index.files.len(),
        functions: index.fns.len(),
        call_sites: graph.call_sites,
        resolved_calls: graph.resolved,
        unresolved_calls: graph.unresolved,
        tainted_functions: taint_map.tainted_count(),
    };
    (out, stats)
}

//! The rule engine: six repo-specific rules over the token stream.
//!
//! | Code     | Invariant guarded                                            |
//! |----------|--------------------------------------------------------------|
//! | DET01    | no ambient wall clock outside `sheriff-obs`                  |
//! | DET02    | no order-sensitive `HashMap`/`HashSet` iteration in          |
//! |          | deterministic modules                                        |
//! | DET03    | no ambient randomness (`thread_rng`, `rand::random`)         |
//! | PANIC01  | no `unwrap`/`expect`/indexing in non-test library code       |
//! | UNSAFE01 | every crate root carries `#![forbid(unsafe_code)]`           |
//! | API01    | no `legacy`-gated free functions outside the feature gate    |
//! | LINT00   | (meta) malformed `sheriff-lint:` pragmas never silently      |
//! |          | suppress nothing                                             |
//!
//! The engine is heuristic by design — a hand-rolled lexer cannot do
//! type inference — but every heuristic errs so that real regressions in
//! *this* workspace are caught, and false positives have a typed escape
//! hatch: `// sheriff-lint: allow(RULE, "reason")`.

use crate::diagnostics::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};
use crate::pragma::{self, Pragma, Suppressions};
use std::collections::BTreeSet;

/// Rule codes, in report order.
pub const RULES: &[&str] = &[
    "DET01", "DET02", "DET03", "PANIC01", "UNSAFE01", "API01", "LINT00",
];

const HELP_DET01: &str = "route timing through sheriff_obs::Timer (wall clock is excluded from \
     canonical output there), or add `// sheriff-lint: allow(DET01, \"why\")`";
const HELP_DET02: &str = "iterate a BTreeMap/BTreeSet, sort the items in this statement, or add \
     `// sheriff-lint: allow(DET02, \"why the order cannot leak\")`";
const HELP_DET03: &str = "construct a seeded RNG (e.g. `StdRng::seed_from_u64`) and thread it \
     through, or add `// sheriff-lint: allow(DET03, \"why\")`";
const HELP_PANIC01: &str = "return the module's typed error instead (SheriffError / FitError / \
     TraceIoError patterns), use `.get(..)`, or add `// sheriff-lint: allow(PANIC01, \"why this \
     cannot panic\")`";
const HELP_UNSAFE01: &str = "add `#![forbid(unsafe_code)]` next to the crate's other inner \
     attributes";
const HELP_API01: &str = "migrate to the `Runtime` trait (`FabricRuntime` & friends) or the \
     `_obs` variants; the free functions only exist behind `--features legacy`";
const HELP_LINT00: &str = "write `// sheriff-lint: allow(RULE, \"reason\")` — a typo'd pragma \
     must not silently suppress nothing";

/// Keywords that can directly precede `[` without forming an index
/// expression (plus everything that is never an expression tail).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// Identifiers that make a hash-iteration statement order-insensitive:
/// explicit sorts, BTree rebuilds, and commutative terminal consumers.
const NEUTRALIZERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "sum",
    "count",
    "len",
    "is_empty",
    "all",
    "any",
    "min",
    "max",
];

/// Methods whose receiver order becomes observable.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Workspace knowledge shared across files (built by a pre-pass).
#[derive(Debug, Default)]
pub struct LintContext {
    /// Free functions defined under `#[cfg(feature = "legacy")]`.
    pub legacy_fns: BTreeSet<String>,
}

/// Paths (repo-relative, `/`-separated) whose iteration order is part of
/// the reproducibility contract: the management loops, the simulator,
/// the transfer scheduler, and the scenario runner's pure `run_job`
/// path.
fn is_deterministic_module(path: &str) -> bool {
    path.starts_with("crates/sheriff-core/src/")
        || path.starts_with("crates/sheriff-sim/src/")
        || path.starts_with("crates/dcn-sim/src/")
        || path.starts_with("crates/sheriff-transfer/src/")
        || path == "crates/sheriff-scenario/src/runner.rs"
}

/// The one crate allowed to read the wall clock: its `Timer` keeps wall
/// durations out of the deterministic event stream by contract.
fn is_wall_clock_allowlisted(path: &str) -> bool {
    path.starts_with("crates/sheriff-obs/")
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`.
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

// ------------------------------------------------------------- regions

/// Per-token flags derived from attributes: inside a `#[cfg(test)]` /
/// `#[test]` item, or inside a `#[cfg(feature = "legacy")]` item.
#[derive(Debug, Clone, Copy, Default)]
struct Flags {
    test: bool,
    legacy: bool,
}

#[derive(Debug)]
struct Attr {
    /// Index of the `#` token.
    hash: usize,
    /// Index one past the closing `]`.
    end: usize,
    inner: bool,
    idents: Vec<String>,
    literals: Vec<String>,
}

/// Scan one attribute starting at tokens\[i\] == `#`.
fn scan_attr(tokens: &[Token], i: usize) -> Option<Attr> {
    let mut j = i + 1;
    let inner = tokens.get(j).is_some_and(|t| t.is_punct('!'));
    if inner {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return None;
    }
    j += 1;
    let mut depth = 1u32;
    let mut idents = Vec::new();
    let mut literals = Vec::new();
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(Attr {
                        hash: i,
                        end: j + 1,
                        inner,
                        idents,
                        literals,
                    });
                }
            }
            TokenKind::Ident(s) => idents.push(s.clone()),
            TokenKind::Literal(s) => literals.push(s.clone()),
            _ => {}
        }
        j += 1;
    }
    None
}

/// Index one past the end of the item starting at `start`: the matching
/// `}` of its first top-level brace block, or its terminating `;`.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut j = start;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren -= 1,
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket -= 1,
            TokenKind::Punct(';') if paren <= 0 && bracket <= 0 => return j + 1,
            TokenKind::Punct('{') if paren <= 0 && bracket <= 0 => {
                let mut depth = 1i32;
                let mut k = j + 1;
                while let Some(t2) = tokens.get(k) {
                    match &t2.kind {
                        TokenKind::Punct('{') => depth += 1,
                        TokenKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return k + 1;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                return tokens.len();
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// Compute per-token flags plus file-level facts from the attributes.
fn compute_flags(tokens: &[Token]) -> (Vec<Flags>, bool) {
    let mut flags = vec![Flags::default(); tokens.len()];
    let mut has_forbid_unsafe = false;
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens.get(i).is_some_and(|t| t.is_punct('#')) {
            i += 1;
            continue;
        }
        let Some(attr) = scan_attr(tokens, i) else {
            i += 1;
            continue;
        };
        let is_test_attr = attr.idents.iter().any(|s| s == "test");
        let is_legacy_attr = attr.idents.iter().any(|s| s == "cfg")
            && attr.idents.iter().any(|s| s == "feature")
            && attr.literals.iter().any(|s| s.contains("legacy"));
        if attr.inner {
            if is_test_attr {
                // `#![cfg(test)]`: the whole file is test code
                for f in &mut flags {
                    f.test = true;
                }
            }
            if attr.idents.iter().any(|s| s == "forbid")
                && attr.idents.iter().any(|s| s == "unsafe_code")
            {
                has_forbid_unsafe = true;
            }
            i = attr.end;
            continue;
        }
        if !(is_test_attr || is_legacy_attr) {
            i = attr.end;
            continue;
        }
        // skip any further attributes between this one and the item
        let mut item_start = attr.end;
        while tokens.get(item_start).is_some_and(|t| t.is_punct('#')) {
            match scan_attr(tokens, item_start) {
                Some(a) => item_start = a.end,
                None => break,
            }
        }
        let end = item_end(tokens, item_start);
        for f in flags.iter_mut().take(end.min(tokens.len())).skip(attr.hash) {
            if is_test_attr {
                f.test = true;
            }
            if is_legacy_attr {
                f.legacy = true;
            }
        }
        i = attr.end;
    }
    (flags, has_forbid_unsafe)
}

// ------------------------------------------------------- legacy pre-pass

/// Collect the names of free functions defined under
/// `#[cfg(feature = "legacy")]` — the API01 deny-list. Run over every
/// `sheriff-core` source file before linting the workspace.
pub fn collect_legacy_fns(src: &str) -> Vec<String> {
    let tokens = lex(src).tokens;
    let (flags, _) = compute_flags(&tokens);
    let mut out = Vec::new();
    let mut iter = tokens.iter().enumerate().peekable();
    while let Some((i, t)) = iter.next() {
        if !t.is_ident("fn") {
            continue;
        }
        if !flags.get(i).copied().unwrap_or_default().legacy {
            continue;
        }
        if let Some((_, name_tok)) = iter.peek() {
            if let Some(name) = name_tok.ident() {
                out.push(name.to_string());
            }
        }
    }
    out
}

// ------------------------------------------------------------ the rules

fn diag(
    rule: &'static str,
    path: &str,
    tok: &Token,
    message: String,
    help: &'static str,
) -> Diagnostic {
    Diagnostic {
        rule,
        file: path.to_string(),
        line: tok.line,
        col: tok.col,
        message,
        help,
    }
}

/// `A :: B` at index `i`: the path-segment pair (A, B) if present.
fn path_pair(tokens: &[Token], i: usize) -> Option<(&str, &str)> {
    let a = tokens.get(i)?.ident()?;
    if !(tokens.get(i + 1)?.is_punct(':') && tokens.get(i + 2)?.is_punct(':')) {
        return None;
    }
    let b = tokens.get(i + 3)?.ident()?;
    Some((a, b))
}

fn det01(tokens: &[Token], flags: &[Flags], path: &str, out: &mut Vec<Diagnostic>) {
    if is_wall_clock_allowlisted(path) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if flags.get(i).copied().unwrap_or_default().test {
            continue;
        }
        if let Some((a, b)) = path_pair(tokens, i) {
            if (a == "SystemTime" || a == "Instant") && b == "now" {
                out.push(diag(
                    "DET01",
                    path,
                    t,
                    format!(
                        "ambient wall-clock read: `{a}::now()` breaks same-seed reproducibility"
                    ),
                    HELP_DET01,
                ));
            }
        }
    }
}

fn det03(tokens: &[Token], flags: &[Flags], path: &str, out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if flags.get(i).copied().unwrap_or_default().test {
            continue;
        }
        if t.is_ident("thread_rng") {
            out.push(diag(
                "DET03",
                path,
                t,
                "ambient randomness: `thread_rng` is seeded from the OS".to_string(),
                HELP_DET03,
            ));
        } else if let Some(("rand", "random")) = path_pair(tokens, i) {
            out.push(diag(
                "DET03",
                path,
                t,
                "ambient randomness: `rand::random` is seeded from the OS".to_string(),
                HELP_DET03,
            ));
        }
    }
}

/// Names in this file declared (or initialised) as `HashMap`/`HashSet`.
fn hash_typed_names(tokens: &[Token]) -> BTreeSet<String> {
    const WINDOW: usize = 9;
    let mut names = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if KEYWORDS.contains(&name) {
            continue;
        }
        // `name : … HashMap …` (type ascription / struct field), where the
        // `:` is not a path separator
        let ascription = tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && !tokens
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.is_punct(':'));
        // `let [mut] name = … HashMap …`
        let let_binding = tokens.get(i + 1).is_some_and(|n| n.is_punct('='))
            && !tokens.get(i + 2).is_some_and(|n| n.is_punct('='))
            && {
                let prev = tokens.get(i.wrapping_sub(1));
                prev.is_some_and(|p| p.is_ident("let"))
                    || (prev.is_some_and(|p| p.is_ident("mut"))
                        && tokens
                            .get(i.wrapping_sub(2))
                            .is_some_and(|p| p.is_ident("let")))
            };
        if !(ascription || let_binding) {
            continue;
        }
        let hashy = tokens
            .iter()
            .skip(i + 2)
            .take(WINDOW)
            .take_while(|n| !n.is_punct(';'))
            .any(|n| n.is_ident("HashMap") || n.is_ident("HashSet"));
        if hashy {
            names.insert(name.to_string());
        }
    }
    names
}

/// Idents of the statement containing index `i` plus the following
/// statement — the window in which a sort/BTree rebuild neutralises an
/// order-sensitive iteration.
fn statement_window_has_neutralizer(tokens: &[Token], i: usize) -> bool {
    // backward to the start of the statement
    let before = tokens
        .iter()
        .take(i)
        .rev()
        .take_while(|t| !(t.is_punct(';') || t.is_punct('{') || t.is_punct('}')));
    // forward through the end of the *next* statement
    let mut semis = 0u32;
    let after = tokens.iter().skip(i).take_while(move |t| {
        if t.is_punct(';') {
            semis += 1;
        }
        semis < 2
    });
    before
        .chain(after)
        .filter_map(|t| t.ident())
        .any(|s| NEUTRALIZERS.contains(&s))
}

fn det02(tokens: &[Token], flags: &[Flags], path: &str, out: &mut Vec<Diagnostic>) {
    if !is_deterministic_module(path) {
        return;
    }
    let names = hash_typed_names(tokens);
    if names.is_empty() {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if flags.get(i).copied().unwrap_or_default().test {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        if !names.contains(name) {
            continue;
        }
        // `name.iter()` and friends
        let method_iter = tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && tokens
                .get(i + 2)
                .and_then(|n| n.ident())
                .is_some_and(|m| ITER_METHODS.contains(&m))
            && tokens.get(i + 3).is_some_and(|n| n.is_punct('('));
        // `for … in [&|&mut|(] name {`
        let for_iter = {
            let mut j = i;
            let mut saw_in = false;
            while j > 0 {
                j -= 1;
                match tokens.get(j).map(|p| &p.kind) {
                    Some(TokenKind::Punct('&' | '(')) => continue,
                    Some(TokenKind::Ident(s)) if s == "mut" => continue,
                    Some(TokenKind::Ident(s)) if s == "in" => {
                        saw_in = true;
                        break;
                    }
                    _ => break,
                }
            }
            saw_in && tokens.get(i + 1).is_some_and(|n| n.is_punct('{'))
        };
        if !(method_iter || for_iter) {
            continue;
        }
        if statement_window_has_neutralizer(tokens, i) {
            continue;
        }
        out.push(diag(
            "DET02",
            path,
            t,
            format!(
                "iteration over hash-ordered `{name}` in a deterministic module: the visit \
                 order can differ across processes"
            ),
            HELP_DET02,
        ));
    }
}

fn panic01(tokens: &[Token], flags: &[Flags], path: &str, out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if flags.get(i).copied().unwrap_or_default().test {
            continue;
        }
        match &t.kind {
            TokenKind::Ident(m) if (m == "unwrap" || m == "expect") => {
                let is_call = tokens
                    .get(i.wrapping_sub(1))
                    .is_some_and(|p| p.is_punct('.'))
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
                if is_call {
                    out.push(diag(
                        "PANIC01",
                        path,
                        t,
                        format!("`.{m}()` can panic on the library hot path"),
                        HELP_PANIC01,
                    ));
                }
            }
            TokenKind::Punct('[') => {
                let indexes = match tokens.get(i.wrapping_sub(1)).map(|p| &p.kind) {
                    Some(TokenKind::Ident(s)) => !KEYWORDS.contains(&s.as_str()),
                    Some(TokenKind::Punct(')' | ']')) => true,
                    _ => false,
                };
                if indexes {
                    out.push(diag(
                        "PANIC01",
                        path,
                        t,
                        "direct indexing can panic on out-of-bounds access".to_string(),
                        HELP_PANIC01,
                    ));
                }
            }
            _ => {}
        }
    }
}

fn unsafe01(tokens: &[Token], has_forbid: bool, path: &str, out: &mut Vec<Diagnostic>) {
    if !is_crate_root(path) || has_forbid {
        return;
    }
    let anchor = tokens.first().cloned().unwrap_or(Token {
        kind: TokenKind::Punct('?'),
        line: 1,
        col: 1,
    });
    out.push(Diagnostic {
        rule: "UNSAFE01",
        file: path.to_string(),
        line: anchor.line,
        col: anchor.col,
        message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        help: HELP_UNSAFE01,
    });
}

fn api01(
    tokens: &[Token],
    flags: &[Flags],
    path: &str,
    ctx: &LintContext,
    out: &mut Vec<Diagnostic>,
) {
    if ctx.legacy_fns.is_empty() {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        let f = flags.get(i).copied().unwrap_or_default();
        if f.test || f.legacy {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        if !ctx.legacy_fns.contains(name) {
            continue;
        }
        // the definition token itself (`fn name`) is exempt — the gate on
        // the item already covers it, this guards against lexer drift
        if tokens
            .get(i.wrapping_sub(1))
            .is_some_and(|p| p.is_ident("fn"))
        {
            continue;
        }
        out.push(diag(
            "API01",
            path,
            t,
            format!("`{name}` is a deprecated legacy-gated free function"),
            HELP_API01,
        ));
    }
}

// ---------------------------------------------------------- entry point

/// Lint one source file. `path` must be repo-relative with `/`
/// separators — it selects which rules apply.
pub fn lint_source(path: &str, src: &str, ctx: &LintContext) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let (flags, has_forbid) = compute_flags(&lexed.tokens);

    let mut pragmas: Vec<Pragma> = Vec::new();
    let mut out: Vec<Diagnostic> = Vec::new();
    for c in &lexed.comments {
        match pragma::parse(c) {
            None => {}
            Some(Ok(p)) => pragmas.push(p),
            Some(Err(e)) => out.push(Diagnostic {
                rule: "LINT00",
                file: path.to_string(),
                line: c.line,
                col: c.col,
                message: e.to_string(),
                help: HELP_LINT00,
            }),
        }
    }
    let suppressions = Suppressions::from_pragmas(&pragmas);

    det01(&lexed.tokens, &flags, path, &mut out);
    det02(&lexed.tokens, &flags, path, &mut out);
    det03(&lexed.tokens, &flags, path, &mut out);
    panic01(&lexed.tokens, &flags, path, &mut out);
    unsafe01(&lexed.tokens, has_forbid, path, &mut out);
    api01(&lexed.tokens, &flags, path, ctx, &mut out);

    out.retain(|d| d.rule == "LINT00" || !suppressions.covers(d.rule, d.line));
    out.sort_by_key(Diagnostic::sort_key);
    out
}

//! `sheriff-lint`: a workspace static-analysis pass that proves the
//! repo's determinism and panic-safety invariants at build time.
//!
//! Sheriff's headline claims — same-seed reproducibility of the
//! regional pre-alert sweeps, graceful degradation instead of panics —
//! are runtime properties enforced by *conventions*: no ambient wall
//! clock, no hash-order iteration in the management loops, typed errors
//! instead of `unwrap`. Conventions rot. This crate turns them into
//! machine-checked rules over a hand-rolled token stream (same zero-dep
//! stance as the TOML reader in `sheriff-scenario`), with rustc-style
//! diagnostics, a mandatory-reason suppression pragma, and a ratcheting
//! per-rule baseline for pre-existing debt.
//!
//! Since PR 10 the engine is whole-program: a workspace symbol index
//! ([`symbols`]) feeds a call graph ([`callgraph`]) and a determinism
//! taint fixed point ([`taint`]) that make DET01–DET03 interprocedural,
//! plus the EVT01/PROTO01 coverage rules and a `--sarif` output mode
//! ([`sarif`]) for CI annotations.
//!
//! Run it with:
//!
//! ```text
//! cargo run -p sheriff-lint -- check            # report everything
//! cargo run -p sheriff-lint -- check --deny-new # CI mode: also fail on stale baseline
//! cargo run -p sheriff-lint -- check --update-baseline
//! ```
//!
//! See `DESIGN.md` §9 for the rule-by-rule mapping to the invariants
//! each one guards.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod diagnostics;
pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod sarif;
pub mod symbols;
pub mod taint;
pub mod workspace;

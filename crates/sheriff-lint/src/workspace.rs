//! Workspace discovery and the file walk: every `src/**/*.rs` under the
//! root package and under `crates/*`, visited in sorted order so runs
//! are byte-for-byte reproducible.

use crate::rules::{collect_legacy_fns, LintContext};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` contains a `[workspace]` table.
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// All lintable sources, as (repo-relative `/`-separated path, absolute
/// path), sorted by relative path.
pub fn walk_sources(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut src_dirs: Vec<PathBuf> = vec![root.join("src")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let entries = std::fs::read_dir(&crates)
            .map_err(|e| format!("cannot read {}: {e}", crates.display()))?;
        for entry in entries.flatten() {
            let sub = entry.path().join("src");
            if sub.is_dir() {
                src_dirs.push(sub);
            }
        }
    }

    let mut files: BTreeSet<(String, PathBuf)> = BTreeSet::new();
    for dir in src_dirs {
        if dir.is_dir() {
            collect_rs(root, &dir, &mut files)?;
        }
    }
    Ok(files.into_iter().collect())
}

fn collect_rs(
    root: &Path,
    dir: &Path,
    out: &mut BTreeSet<(String, PathBuf)>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("path {} escapes root: {e}", path.display()))?;
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.insert((rel, path));
        }
    }
    Ok(())
}

/// Build the [`LintContext`] by pre-scanning `sheriff-core` for
/// `legacy`-gated free functions — the API01 deny-list.
pub fn build_context(sources: &[(String, PathBuf)]) -> LintContext {
    let mut ctx = LintContext::default();
    for (rel, abs) in sources {
        if !rel.starts_with("crates/sheriff-core/src/") {
            continue;
        }
        if let Ok(src) = std::fs::read_to_string(abs) {
            ctx.legacy_fns.extend(collect_legacy_fns(&src));
        }
    }
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_this_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = discover_root(here).expect("workspace root above the crate");
        assert!(root.join("Cargo.toml").is_file());
        let sources = walk_sources(&root).expect("walk");
        assert!(
            sources
                .iter()
                .any(|(rel, _)| rel == "crates/sheriff-lint/src/lexer.rs"),
            "walk must see this crate's own sources"
        );
        // sorted by relative path
        let rels: Vec<_> = sources.iter().map(|(r, _)| r.clone()).collect();
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted);
    }

    #[test]
    fn context_learns_the_legacy_functions() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = discover_root(here).expect("workspace root");
        let sources = walk_sources(&root).expect("walk");
        let ctx = build_context(&sources);
        assert!(
            ctx.legacy_fns.contains("centralized_migration"),
            "legacy pre-pass should find the gated free functions, got {:?}",
            ctx.legacy_fns
        );
    }
}

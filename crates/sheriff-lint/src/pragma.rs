//! The suppression pragma: `// sheriff-lint: allow(RULE, "reason")`.
//!
//! A pragma on line *N* suppresses diagnostics of that rule on line *N*
//! (trailing-comment style) and on line *N + 1* (preceding-comment
//! style). The reason is mandatory and non-empty: every suppression in
//! the tree documents *why* the invariant may be waived at that site.

use crate::lexer::Comment;

/// One parsed suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// The rule code being allowed, e.g. `DET02`.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// 1-based line the pragma comment starts on.
    pub line: u32,
}

/// Why a `sheriff-lint:` comment failed to parse as a pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PragmaError {
    /// The directive after `sheriff-lint:` is not `allow`.
    UnknownDirective(String),
    /// Structural problem: missing parens, comma, or quotes.
    Malformed(String),
    /// The reason string is empty (or whitespace).
    EmptyReason,
}

impl std::fmt::Display for PragmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PragmaError::UnknownDirective(d) => {
                write!(f, "unknown sheriff-lint directive {d:?} (expected `allow`)")
            }
            PragmaError::Malformed(what) => write!(f, "malformed sheriff-lint pragma: {what}"),
            PragmaError::EmptyReason => {
                f.write_str("sheriff-lint pragma needs a non-empty reason string")
            }
        }
    }
}

/// Render a pragma as the comment body that [`parse`] accepts — the
/// round-trip partner used by the property tests and by `--fix`-style
/// tooling. The result excludes the leading `//`.
pub fn format(rule: &str, reason: &str) -> String {
    let mut escaped = String::with_capacity(reason.len());
    for c in reason.chars() {
        match c {
            '\\' => escaped.push_str("\\\\"),
            '"' => escaped.push_str("\\\""),
            _ => escaped.push(c),
        }
    }
    format!(" sheriff-lint: allow({rule}, \"{escaped}\")")
}

/// Try to parse one line comment as a pragma.
///
/// Returns `None` when the comment is not a `sheriff-lint:` comment at
/// all; `Some(Err(…))` when it *is* one but is malformed (the rule
/// engine reports those — a typo'd pragma must not silently suppress
/// nothing).
pub fn parse(comment: &Comment) -> Option<Result<Pragma, PragmaError>> {
    let text = comment.text.trim_start();
    let rest = text.strip_prefix("sheriff-lint:")?;
    Some(parse_directive(rest, comment.line))
}

fn parse_directive(rest: &str, line: u32) -> Result<Pragma, PragmaError> {
    let rest = rest.trim_start();
    let Some(args) = rest.strip_prefix("allow") else {
        let directive: String = rest.chars().take_while(|c| !c.is_whitespace()).collect();
        return Err(PragmaError::UnknownDirective(directive));
    };
    let args = args.trim_start();
    let Some(args) = args.strip_prefix('(') else {
        return Err(PragmaError::Malformed("expected `(` after `allow`".into()));
    };
    // rule code: up to the comma
    let Some(comma) = args.find(',') else {
        return Err(PragmaError::Malformed(
            "expected `,` between rule and reason".into(),
        ));
    };
    let (rule_part, after_comma) = args.split_at(comma);
    let rule = rule_part.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(PragmaError::Malformed(format!(
            "invalid rule code {rule:?}"
        )));
    }
    let after_comma = after_comma.get(1..).unwrap_or("").trim_start();
    let Some(body) = after_comma.strip_prefix('"') else {
        return Err(PragmaError::Malformed(
            "reason must be a quoted string".into(),
        ));
    };
    // unescape up to the closing quote
    let mut reason = String::new();
    let mut chars = body.chars();
    let mut closed = false;
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                closed = true;
                break;
            }
            '\\' => match chars.next() {
                Some('"') => reason.push('"'),
                Some('\\') => reason.push('\\'),
                Some(other) => {
                    reason.push('\\');
                    reason.push(other);
                }
                None => return Err(PragmaError::Malformed("dangling escape in reason".into())),
            },
            _ => reason.push(c),
        }
    }
    if !closed {
        return Err(PragmaError::Malformed("unterminated reason string".into()));
    }
    if !chars.as_str().trim_start().starts_with(')') {
        return Err(PragmaError::Malformed("expected `)` after reason".into()));
    }
    if reason.trim().is_empty() {
        return Err(PragmaError::EmptyReason);
    }
    Ok(Pragma {
        rule: rule.to_string(),
        reason,
        line,
    })
}

/// The suppression set of one file: which (rule, line) pairs are waived.
#[derive(Debug, Default)]
pub struct Suppressions {
    allowed: Vec<(String, u32)>,
}

impl Suppressions {
    /// Build from parsed pragmas.
    pub fn from_pragmas(pragmas: &[Pragma]) -> Self {
        Suppressions {
            allowed: pragmas.iter().map(|p| (p.rule.clone(), p.line)).collect(),
        }
    }

    /// Whether a diagnostic of `rule` on `line` is suppressed: a pragma
    /// covers its own line and the one after it.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.allowed
            .iter()
            .any(|(r, l)| r == rule && (*l == line || l + 1 == line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str) -> Comment {
        Comment {
            text: text.to_string(),
            line: 7,
            col: 1,
        }
    }

    #[test]
    fn plain_comments_are_not_pragmas() {
        assert!(parse(&comment(" just words")).is_none());
        assert!(parse(&comment("! module docs")).is_none());
    }

    #[test]
    fn well_formed_pragma_parses() {
        let p = parse(&comment(" sheriff-lint: allow(DET02, \"sorted below\")"));
        let p = p.and_then(Result::ok);
        assert_eq!(
            p,
            Some(Pragma {
                rule: "DET02".into(),
                reason: "sorted below".into(),
                line: 7,
            })
        );
    }

    #[test]
    fn malformed_pragmas_are_errors_not_silence() {
        for bad in [
            " sheriff-lint: allow(DET02)",
            " sheriff-lint: allow(DET02, unquoted)",
            " sheriff-lint: allow(DET02, \"\")",
            " sheriff-lint: allow(DET02, \"  \")",
            " sheriff-lint: deny(DET02, \"x\")",
            " sheriff-lint: allow(DET02, \"unterminated)",
        ] {
            let parsed = parse(&comment(bad));
            assert!(matches!(parsed, Some(Err(_))), "{bad:?} should be an error");
        }
    }

    #[test]
    fn format_then_parse_round_trips_escapes() {
        let reason = "he said \"x\\y\" loudly";
        let text = format("PANIC01", reason);
        let parsed = parse(&comment(&text)).and_then(Result::ok);
        assert_eq!(parsed.map(|p| p.reason), Some(reason.to_string()));
    }

    #[test]
    fn coverage_spans_own_and_next_line() {
        let s = Suppressions::from_pragmas(&[Pragma {
            rule: "DET01".into(),
            reason: "r".into(),
            line: 10,
        }]);
        assert!(s.covers("DET01", 10));
        assert!(s.covers("DET01", 11));
        assert!(!s.covers("DET01", 12));
        assert!(!s.covers("DET02", 10));
    }
}

//! The determinism taint pass: a fixed point over the call graph that
//! propagates three taint kinds — wall-clock, ambient-RNG, and
//! unordered-iteration — *backwards* from primitive sources to every
//! function that can reach one.
//!
//! Seeding reuses the same token heuristics as the intraprocedural
//! DET01–DET03 rules (including their allowlists, neutralizer windows,
//! and pragma suppressions: a source that is pragma'd with a reason does
//! not seed, so the whole chain is sanctioned at one documented point).
//! Propagation is a breadth-first worklist over reverse call edges, so
//! the recorded origin of each tainted function is a *shortest* chain —
//! that chain is replayed into rustc-style `= note:` lines on the
//! diagnostic.
//!
//! Findings are reported at the **boundary call site**: a non-test
//! function in a deterministic module (the reachability roots —
//! `sheriff-core`, `sheriff-sim`, `sheriff-transfer`, `dcn-sim`, the
//! scenario runner) calling a tainted function *outside* the
//! deterministic modules. Sources inside deterministic modules stay the
//! intraprocedural rules' business, so no site is reported twice; and a
//! pragma on the boundary line suppresses the interprocedural finding
//! exactly like any other.

use crate::callgraph::CallGraph;
use crate::diagnostics::Diagnostic;
use crate::rules;
use crate::symbols::SymbolIndex;
use std::collections::{BTreeSet, VecDeque};

/// The three determinism taint kinds, each mapped onto its rule code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintKind {
    /// Reaches `Instant::now` / `SystemTime::now` (DET01).
    WallClock,
    /// Reaches order-sensitive `HashMap`/`HashSet` iteration (DET02).
    UnorderedIter,
    /// Reaches `thread_rng` / `rand::random` (DET03).
    AmbientRng,
}

/// All kinds, in rule-code order.
pub const KINDS: [TaintKind; 3] = [
    TaintKind::WallClock,
    TaintKind::UnorderedIter,
    TaintKind::AmbientRng,
];

impl TaintKind {
    /// The rule code this kind reports under.
    pub fn rule(self) -> &'static str {
        match self {
            TaintKind::WallClock => "DET01",
            TaintKind::UnorderedIter => "DET02",
            TaintKind::AmbientRng => "DET03",
        }
    }

    fn slot(self) -> usize {
        match self {
            TaintKind::WallClock => 0,
            TaintKind::UnorderedIter => 1,
            TaintKind::AmbientRng => 2,
        }
    }

    fn reaches(self) -> &'static str {
        match self {
            TaintKind::WallClock => "an ambient wall-clock read",
            TaintKind::UnorderedIter => "iteration over a hash-ordered collection",
            TaintKind::AmbientRng => "ambient OS-seeded randomness",
        }
    }
}

/// How a function became tainted: directly, or through a call.
#[derive(Debug, Clone)]
enum Origin {
    /// The function's own body contains the primitive source.
    Source {
        line: u32,
        col: u32,
        /// Verb phrase, e.g. "reads the wall clock (`Instant::now()`)".
        what: String,
    },
    /// Tainted through edge `edge` (whose callee carries the taint on).
    Call { edge: usize },
}

/// Per-function taint state after the fixed point.
#[derive(Debug, Default)]
pub struct TaintMap {
    origin: Vec<[Option<Origin>; 3]>,
}

impl TaintMap {
    /// Whether function `id` can reach a source of `kind`.
    pub fn is_tainted(&self, id: usize, kind: TaintKind) -> bool {
        self.get(id, kind).is_some()
    }

    fn get(&self, id: usize, kind: TaintKind) -> Option<&Origin> {
        self.origin
            .get(id)
            .and_then(|o| o.get(kind.slot()))
            .and_then(Option::as_ref)
    }

    /// Record an origin if the slot is still empty; true when newly set.
    fn set(&mut self, id: usize, kind: TaintKind, origin: Origin) -> bool {
        match self.origin.get_mut(id).and_then(|o| o.get_mut(kind.slot())) {
            Some(slot @ None) => {
                *slot = Some(origin);
                true
            }
            _ => false,
        }
    }

    /// Total functions tainted by at least one kind.
    pub fn tainted_count(&self) -> usize {
        self.origin
            .iter()
            .filter(|o| o.iter().any(Option::is_some))
            .count()
    }
}

/// Run the fixed point: seed primitive sources, then propagate backwards
/// over reverse call edges (breadth-first, so origins form shortest
/// chains).
pub fn analyze(index: &SymbolIndex, graph: &CallGraph) -> TaintMap {
    let mut map = TaintMap {
        origin: vec![[None, None, None]; index.fns.len()],
    };
    let mut queue: VecDeque<(usize, TaintKind)> = VecDeque::new();

    for (fid, def) in index.fns.iter().enumerate() {
        if def.is_test {
            continue;
        }
        for (kind, line, col, what) in seed_sources(index.file_of(fid), def.body) {
            if map.set(fid, kind, Origin::Source { line, col, what }) {
                queue.push_back((fid, kind));
            }
        }
    }

    while let Some((g, kind)) = queue.pop_front() {
        for &ei in graph.callers_of.get(g).into_iter().flatten() {
            let f = graph.edge(ei).caller;
            if map.set(f, kind, Origin::Call { edge: ei }) {
                queue.push_back((f, kind));
            }
        }
    }
    map
}

/// Primitive sources inside one function body, pragma-suppressed sites
/// excluded (a documented allow sanctions the whole chain at one point).
fn seed_sources(
    file: &crate::symbols::SourceFile,
    body: (usize, usize),
) -> Vec<(TaintKind, u32, u32, String)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let names = rules::hash_typed_names(toks);
    for i in body.0..body.1 {
        let Some(t) = toks.get(i) else { break };
        if !rules::is_wall_clock_allowlisted(&file.path) {
            if let Some((a, b)) = rules::path_pair(toks, i) {
                if (a == "SystemTime" || a == "Instant")
                    && b == "now"
                    && !file.suppressions.covers("DET01", t.line)
                {
                    out.push((
                        TaintKind::WallClock,
                        t.line,
                        t.col,
                        format!("reads the wall clock (`{a}::now()`)"),
                    ));
                }
            }
        }
        if (t.is_ident("thread_rng") || rules::path_pair(toks, i) == Some(("rand", "random")))
            && !file.suppressions.covers("DET03", t.line)
        {
            out.push((
                TaintKind::AmbientRng,
                t.line,
                t.col,
                "draws from the OS-seeded RNG".to_string(),
            ));
        }
        if let Some(name) = rules::hash_iter_site(toks, i, &names) {
            if !file.suppressions.covers("DET02", t.line) {
                out.push((
                    TaintKind::UnorderedIter,
                    t.line,
                    t.col,
                    format!("iterates hash-ordered `{name}`"),
                ));
            }
        }
    }
    out
}

/// Emit the interprocedural DET01–DET03 findings: boundary call sites
/// from deterministic-module roots into tainted functions outside the
/// deterministic modules, with the full call chain as notes.
pub fn interprocedural_diagnostics(
    index: &SymbolIndex,
    graph: &CallGraph,
    taint: &TaintMap,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut reported: BTreeSet<(usize, &'static str)> = BTreeSet::new();
    for (fid, def) in index.fns.iter().enumerate() {
        if def.is_test {
            continue;
        }
        let fpath = &index.file_of(fid).path;
        if !rules::is_deterministic_module(fpath) {
            continue;
        }
        for &ei in graph.callees_of.get(fid).into_iter().flatten() {
            let edge = graph.edge(ei);
            let callee = edge.callee;
            let gpath = &index.file_of(callee).path;
            if rules::is_deterministic_module(gpath) {
                continue; // sources there are the intraprocedural rules' job
            }
            for kind in KINDS {
                if !taint.is_tainted(callee, kind) {
                    continue;
                }
                if !reported.insert((ei, kind.rule())) {
                    continue;
                }
                out.push(Diagnostic {
                    rule: kind.rule(),
                    file: fpath.clone(),
                    line: edge.line,
                    col: edge.col,
                    message: format!(
                        "deterministic fn `{}` reaches {} via `{}`",
                        def.name,
                        kind.reaches(),
                        index.def(callee).name
                    ),
                    help: rules::det_help(kind.rule()),
                    notes: chain_notes(index, graph, taint, callee, kind),
                });
            }
        }
    }
    out
}

/// Replay the shortest chain from `start` to the primitive source as
/// human-readable note lines.
fn chain_notes(
    index: &SymbolIndex,
    graph: &CallGraph,
    taint: &TaintMap,
    start: usize,
    kind: TaintKind,
) -> Vec<String> {
    let mut notes = Vec::new();
    let mut cur = start;
    for _ in 0..32 {
        match taint.get(cur, kind) {
            Some(Origin::Call { edge }) => {
                let e = graph.edge(*edge);
                notes.push(format!(
                    "`{}` calls `{}` at {}:{}:{}",
                    index.def(cur).name,
                    index.def(e.callee).name,
                    index.file_of(cur).path,
                    e.line,
                    e.col
                ));
                cur = e.callee;
            }
            Some(Origin::Source { line, col, what }) => {
                notes.push(format!(
                    "`{}` {} at {}:{}:{}",
                    index.def(cur).name,
                    what,
                    index.file_of(cur).path,
                    line,
                    col
                ));
                return notes;
            }
            None => return notes,
        }
    }
    notes.push("… (chain truncated)".to_string());
    notes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SourceFile;

    fn run(files: &[(&str, &str)]) -> (SymbolIndex, CallGraph, TaintMap) {
        let parsed = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let index = SymbolIndex::build(parsed);
        let graph = CallGraph::build(&index);
        let taint = analyze(&index, &graph);
        (index, graph, taint)
    }

    #[test]
    fn taint_propagates_across_two_hops_and_crates() {
        let (index, graph, taint) = run(&[
            (
                "crates/sheriff-core/src/lib.rs",
                "pub fn step() { middle(); }",
            ),
            (
                "crates/helper/src/lib.rs",
                "pub fn middle() { leaf(); }\n\
                 pub fn leaf() -> std::time::Instant { std::time::Instant::now() }\n",
            ),
        ]);
        let diags = interprocedural_diagnostics(&index, &graph, &taint);
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.rule, "DET01");
        assert_eq!(d.file, "crates/sheriff-core/src/lib.rs");
        assert_eq!(d.notes.len(), 2, "middle → leaf, then the source");
        assert!(d.notes[0].contains("`middle` calls `leaf`"));
        assert!(d.notes[1].contains("reads the wall clock"));
    }

    #[test]
    fn pragma_at_the_source_sanctions_the_whole_chain() {
        let (index, graph, taint) = run(&[
            (
                "crates/sheriff-core/src/lib.rs",
                "pub fn step() { helper(); }",
            ),
            (
                "crates/helper/src/lib.rs",
                "pub fn helper() -> std::time::Instant {\n\
                     // sheriff-lint: allow(DET01, \"wall time never enters the digest\")\n\
                     std::time::Instant::now()\n\
                 }\n",
            ),
        ]);
        assert!(interprocedural_diagnostics(&index, &graph, &taint).is_empty());
    }

    #[test]
    fn test_gated_callers_never_report() {
        let (index, graph, taint) = run(&[
            (
                "crates/sheriff-core/src/lib.rs",
                "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { helper(); }\n}\n",
            ),
            (
                "crates/helper/src/lib.rs",
                "pub fn helper() { let _ = std::time::Instant::now(); }",
            ),
        ]);
        assert!(interprocedural_diagnostics(&index, &graph, &taint).is_empty());
    }

    #[test]
    fn unordered_iteration_taints_with_neutralizer_respected() {
        let (index, graph, taint) = run(&[
            (
                "crates/dcn-sim/src/flows.rs",
                "pub fn route() { tally(); ranked(); }",
            ),
            (
                "crates/util/src/lib.rs",
                "use std::collections::HashMap;\n\
                 pub fn tally() { let m: HashMap<u32, u32> = HashMap::new();\n\
                     for (k, v) in m.iter() { let _ = (k, v); } }\n\
                 pub fn ranked() -> Vec<(u32, u32)> {\n\
                     let m: HashMap<u32, u32> = HashMap::new();\n\
                     let mut v: Vec<_> = m.iter().map(|(a, b)| (*a, *b)).collect();\n\
                     v.sort_by_key(|p| p.0);\n\
                     v\n\
                 }\n",
            ),
        ]);
        let diags = interprocedural_diagnostics(&index, &graph, &taint);
        assert_eq!(diags.len(), 1, "only the unsorted helper taints: {diags:?}");
        assert_eq!(diags[0].rule, "DET02");
        assert!(diags[0].message.contains("via `tally`"));
    }
}

//! The ratchet: known pre-existing debt, committed as
//! `lint-baseline.json` at the workspace root.
//!
//! The baseline is a per-rule ratchet: PANIC01 panic debt, PROTO01
//! catch-all debt, and — since the DET rules went interprocedural —
//! DET01–DET03 findings flushed out of legacy `bench`/`dcn-sim` call
//! paths may be carried as tracked debt. Unsafety (UNSAFE01), dead
//! telemetry (EVT01), legacy-API leaks (API01), and malformed pragmas
//! (LINT00) must be zero. The baseline stores a *count per file*, not
//! positions, so it is robust to unrelated line shifts:
//!
//! * count > baseline → new violations, the check fails;
//! * count < baseline → the entry is stale, the check also fails until
//!   `--update-baseline` re-ratchets it down (debt may only shrink).
//!
//! The file format is a two-level JSON object,
//! `{"PANIC01": {"crates/x/src/y.rs": 3}}`, parsed by the minimal
//! reader below (same zero-dep stance as the rest of the crate).

use crate::diagnostics::{json_escape, Diagnostic};
use std::collections::BTreeMap;

/// Rules whose pre-existing violations may be carried as debt.
pub const BASELINABLE: &[&str] = &["DET01", "DET02", "DET03", "PANIC01", "PROTO01"];

/// rule → file → allowed count.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<String, BTreeMap<String, u32>>,
}

/// One divergence between the committed baseline and the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineIssue {
    /// More violations than the ratchet allows.
    New {
        /// Rule code.
        rule: String,
        /// Repo-relative file.
        file: String,
        /// Violations found in the tree.
        actual: u32,
        /// Violations the baseline allows.
        allowed: u32,
    },
    /// Fewer violations than recorded — the entry must be re-ratcheted.
    Stale {
        /// Rule code.
        rule: String,
        /// Repo-relative file.
        file: String,
        /// Violations found in the tree.
        actual: u32,
        /// Violations the baseline allows.
        allowed: u32,
    },
}

impl std::fmt::Display for BaselineIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineIssue::New {
                rule,
                file,
                actual,
                allowed,
            } => write!(
                f,
                "error[{rule}]: {file} has {actual} violation(s) but the baseline allows \
                 {allowed} — fix the new site(s) instead of re-baselining"
            ),
            BaselineIssue::Stale {
                rule,
                file,
                actual,
                allowed,
            } => write!(
                f,
                "error[{rule}]: stale baseline for {file}: allows {allowed} but only {actual} \
                 remain — run `cargo run -p sheriff-lint -- check --update-baseline` to ratchet \
                 the debt down"
            ),
        }
    }
}

impl Baseline {
    /// Build the would-be baseline from a lint run: counts of the
    /// baselinable rules only.
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Self {
        let mut counts: BTreeMap<String, BTreeMap<String, u32>> = BTreeMap::new();
        for d in diags {
            if !BASELINABLE.contains(&d.rule) {
                continue;
            }
            *counts
                .entry(d.rule.to_string())
                .or_default()
                .entry(d.file.clone())
                .or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Split diagnostics into (suppressed-by-baseline, outstanding) and
    /// report ratchet divergences. Within a file the *first* `allowed`
    /// findings (in position order) are attributed to the baseline.
    pub fn apply(&self, diags: &[Diagnostic]) -> (Vec<Diagnostic>, Vec<BaselineIssue>) {
        let actual = Baseline::from_diagnostics(diags);
        let mut issues = Vec::new();

        for (rule, files) in &actual.counts {
            for (file, &n) in files {
                let allowed = self.allowed(rule, file);
                if n > allowed {
                    issues.push(BaselineIssue::New {
                        rule: rule.clone(),
                        file: file.clone(),
                        actual: n,
                        allowed,
                    });
                } else if n < allowed {
                    issues.push(BaselineIssue::Stale {
                        rule: rule.clone(),
                        file: file.clone(),
                        actual: n,
                        allowed,
                    });
                }
            }
        }
        // entries for files that no longer violate at all (or vanished)
        for (rule, files) in &self.counts {
            for (file, &allowed) in files {
                if actual.allowed(rule, file) == 0 && allowed > 0 {
                    issues.push(BaselineIssue::Stale {
                        rule: rule.clone(),
                        file: file.clone(),
                        actual: 0,
                        allowed,
                    });
                }
            }
        }

        let mut seen: BTreeMap<(String, String), u32> = BTreeMap::new();
        let mut outstanding = Vec::new();
        for d in diags {
            if !BASELINABLE.contains(&d.rule) {
                outstanding.push(d.clone());
                continue;
            }
            let key = (d.rule.to_string(), d.file.clone());
            let used = seen.entry(key).or_insert(0);
            if *used < self.allowed(d.rule, &d.file) {
                *used += 1;
            } else {
                outstanding.push(d.clone());
            }
        }
        (outstanding, issues)
    }

    fn allowed(&self, rule: &str, file: &str) -> u32 {
        self.counts
            .get(rule)
            .and_then(|m| m.get(file))
            .copied()
            .unwrap_or(0)
    }

    /// Total entries (file, rule) pairs carried as debt.
    pub fn entry_count(&self) -> usize {
        self.counts.values().map(BTreeMap::len).sum()
    }

    /// Render as pretty, sorted JSON with a trailing newline — the
    /// committed `lint-baseline.json` representation.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        let rules: Vec<_> = self.counts.iter().filter(|(_, m)| !m.is_empty()).collect();
        for (ri, (rule, files)) in rules.iter().enumerate() {
            out.push_str(&format!("  \"{}\": {{\n", json_escape(rule)));
            for (fi, (file, n)) in files.iter().enumerate() {
                let comma = if fi + 1 == files.len() { "" } else { "," };
                out.push_str(&format!("    \"{}\": {n}{comma}\n", json_escape(file)));
            }
            let comma = if ri + 1 == rules.len() { "" } else { "," };
            out.push_str(&format!("  }}{comma}\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Parse the committed representation. Strict two-level
    /// `{"rule": {"file": count}}` shape; anything else is an error.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let mut p = Json {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.ws();
        p.expect_byte(b'{')?;
        let mut counts: BTreeMap<String, BTreeMap<String, u32>> = BTreeMap::new();
        p.ws();
        if !p.eat(b'}') {
            loop {
                p.ws();
                let rule = p.string()?;
                if !BASELINABLE.contains(&rule.as_str()) {
                    return Err(format!(
                        "rule {rule:?} is not baselinable (only {BASELINABLE:?} may carry debt)"
                    ));
                }
                p.ws();
                p.expect_byte(b':')?;
                p.ws();
                p.expect_byte(b'{')?;
                let mut files = BTreeMap::new();
                p.ws();
                if !p.eat(b'}') {
                    loop {
                        p.ws();
                        let file = p.string()?;
                        p.ws();
                        p.expect_byte(b':')?;
                        p.ws();
                        let n = p.number()?;
                        if files.insert(file.clone(), n).is_some() {
                            return Err(format!("duplicate baseline entry for {file:?}"));
                        }
                        p.ws();
                        if p.eat(b',') {
                            continue;
                        }
                        p.expect_byte(b'}')?;
                        break;
                    }
                }
                if counts.insert(rule.clone(), files).is_some() {
                    return Err(format!("duplicate baseline section for {rule:?}"));
                }
                p.ws();
                if p.eat(b',') {
                    continue;
                }
                p.expect_byte(b'}')?;
                break;
            }
        }
        p.ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(Baseline { counts })
    }
}

/// Minimal JSON cursor for the baseline's fixed shape.
struct Json<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Json<'_> {
    fn ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} of baseline file",
                b as char, self.pos
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string in baseline file".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        other => {
                            return Err(format!(
                                "unsupported escape {:?} in baseline file",
                                other.map(|b| b as char)
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // baseline strings are paths/rule codes: copy bytes,
                    // validating UTF-8 at the end is unnecessary since the
                    // input is a &str already
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&c| c != b'"' && c != b'\\')
                    {
                        self.pos += 1;
                    }
                    let chunk = self.bytes.get(start..self.pos).unwrap_or(&[]);
                    out.push_str(&String::from_utf8_lossy(chunk));
                    let _ = b;
                }
            }
        }
    }

    fn number(&mut self) -> Result<u32, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        let digits = self.bytes.get(start..self.pos).unwrap_or(&[]);
        if digits.is_empty() {
            return Err(format!("expected a count at byte {start} of baseline file"));
        }
        String::from_utf8_lossy(digits)
            .parse::<u32>()
            .map_err(|e| format!("bad count in baseline file: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rule: &'static str, file: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            col: 1,
            message: "m".into(),
            help: "h",
            notes: Vec::new(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let diags = vec![
            d("PANIC01", "crates/a/src/x.rs", 1),
            d("PANIC01", "crates/a/src/x.rs", 9),
            d("PANIC01", "crates/b/src/y.rs", 4),
        ];
        let b = Baseline::from_diagnostics(&diags);
        let parsed = Baseline::parse(&b.render());
        assert_eq!(parsed, Ok(b));
    }

    #[test]
    fn non_baselinable_rules_never_enter_the_baseline() {
        let b = Baseline::from_diagnostics(&[
            d("UNSAFE01", "src/lib.rs", 1),
            d("EVT01", "crates/sheriff-obs/src/event.rs", 3),
            d("LINT00", "src/lib.rs", 9),
        ]);
        assert_eq!(b.entry_count(), 0);
        assert!(Baseline::parse("{\"UNSAFE01\": {\"src/lib.rs\": 1}}").is_err());
        assert!(Baseline::parse("{\"EVT01\": {\"crates/sheriff-obs/src/event.rs\": 1}}").is_err());
    }

    #[test]
    fn det_rules_ratchet_per_rule() {
        let diags = vec![
            d("DET02", "crates/dcn-sim/src/flows.rs", 5),
            d("PANIC01", "crates/dcn-sim/src/flows.rs", 5),
        ];
        let b = Baseline::from_diagnostics(&diags);
        assert_eq!(b.entry_count(), 2, "one entry per (rule, file) pair");
        let parsed = Baseline::parse(&b.render()).expect("round-trip");
        let (outstanding, issues) = parsed.apply(&diags);
        assert!(outstanding.is_empty());
        assert!(issues.is_empty());
    }

    #[test]
    fn ratchet_flags_new_and_stale() {
        let committed = Baseline::from_diagnostics(&[
            d("PANIC01", "a.rs", 1),
            d("PANIC01", "a.rs", 2),
            d("PANIC01", "gone.rs", 3),
        ]);
        // a.rs grew to 3 violations, gone.rs is clean now
        let now = vec![
            d("PANIC01", "a.rs", 1),
            d("PANIC01", "a.rs", 2),
            d("PANIC01", "a.rs", 8),
        ];
        let (outstanding, issues) = committed.apply(&now);
        assert_eq!(outstanding.len(), 1, "one new violation past the ratchet");
        assert!(issues
            .iter()
            .any(|i| matches!(i, BaselineIssue::New { file, actual: 3, allowed: 2, .. } if file == "a.rs")));
        assert!(issues
            .iter()
            .any(|i| matches!(i, BaselineIssue::Stale { file, actual: 0, allowed: 1, .. } if file == "gone.rs")));
    }

    #[test]
    fn matching_tree_is_clean() {
        let diags = vec![d("PANIC01", "a.rs", 1)];
        let committed = Baseline::from_diagnostics(&diags);
        let (outstanding, issues) = committed.apply(&diags);
        assert!(outstanding.is_empty());
        assert!(issues.is_empty());
    }
}

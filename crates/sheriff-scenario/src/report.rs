//! Folding per-seed runs into one [`ScenarioReport`].
//!
//! The report's core is the same `{id, title, columns, rows, notes}`
//! shape as the `results/fig*.json` tables the bench binaries emit, so
//! scenario output drops into the existing tooling; on top of that it
//! carries the sweep's aggregate metrics (mean/p50/p95 across seeds)
//! and the merged observability counters.
//!
//! Two serializations exist: [`ScenarioReport::to_json_pretty`] (the
//! full report, wall-clock timings included) and
//! [`ScenarioReport::canonical_json`] (the deterministic subset — what
//! the parallel ≡ serial and re-run reproducibility proofs compare).

use crate::runner::SeedRun;
use crate::spec::ScenarioSpec;
use sheriff_obs::Counters;

/// Mean / median / 95th percentile of one metric across seed runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stat {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank on the sorted values).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
}

impl Stat {
    /// Compute the statistic over `values` (empty → all zeros).
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let q = |frac: f64| {
            let idx = ((sorted.len() - 1) as f64 * frac).round() as usize;
            sorted[idx]
        };
        Self {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: q(0.50),
            p95: q(0.95),
        }
    }
}

/// The aggregated result of one scenario sweep.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Report id (the spec's `name`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Runtime that ran the rounds.
    pub runtime: String,
    /// Rounds per seed.
    pub rounds: usize,
    /// The seed sweep.
    pub seeds: Vec<u64>,
    /// Table header: `round` plus one std-dev column per topology
    /// (`stddev_pct` when the scenario has a single topology).
    pub columns: Vec<String>,
    /// `rounds + 1` rows: round index, then the across-seed mean
    /// std-dev per topology (row 0 is the pre-management state).
    pub rows: Vec<Vec<f64>>,
    /// Human-readable summary lines.
    pub notes: Vec<String>,
    /// Named aggregate metrics in deterministic order.
    pub metrics: Vec<(String, Stat)>,
    /// Observability counters merged across every run.
    pub counters: Counters,
    /// Wall-clock statistics (nanoseconds). NOT deterministic; excluded
    /// from [`ScenarioReport::canonical_json`].
    pub timings_ns: Vec<(String, Stat)>,
}

/// Fold the sweep's runs (job order: topology-major, then seed) into a
/// report. `runs` must be exactly the runner's output for `spec`.
pub fn aggregate(spec: &ScenarioSpec, runs: &[SeedRun]) -> ScenarioReport {
    let labels: Vec<String> = spec.topologies.iter().map(|t| t.label()).collect();
    let per_topo = spec.seeds.len();

    let mut columns = vec!["round".to_string()];
    if labels.len() == 1 {
        columns.push("stddev_pct".to_string());
    } else {
        columns.extend(labels.iter().map(|l| format!("stddev_{l}")));
    }

    // rows: mean std-dev across seeds, one column per topology
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(spec.rounds + 1);
    for r in 0..=spec.rounds {
        let mut row = vec![r as f64];
        for ti in 0..labels.len() {
            let group = &runs[ti * per_topo..(ti + 1) * per_topo];
            let vals: Vec<f64> = group
                .iter()
                .map(|run| {
                    if r == 0 {
                        run.initial_stddev_pct
                    } else {
                        run.rounds[r - 1].stddev_pct
                    }
                })
                .collect();
            row.push(Stat::of(&vals).mean);
        }
        rows.push(row);
    }

    // aggregate metrics across every run (seeds × topologies)
    let stat = |f: &dyn Fn(&SeedRun) -> f64| {
        let vals: Vec<f64> = runs.iter().map(f).collect();
        Stat::of(&vals)
    };
    let sum_rounds = |f: &dyn Fn(&crate::runner::RoundStat) -> f64| {
        stat(&|run: &SeedRun| run.rounds.iter().map(f).sum())
    };
    let metrics: Vec<(String, Stat)> = vec![
        ("initial_stddev_pct".into(), stat(&|r| r.initial_stddev_pct)),
        (
            "final_stddev_pct".into(),
            stat(&|r| {
                r.rounds
                    .last()
                    .map_or(r.initial_stddev_pct, |s| s.stddev_pct)
            }),
        ),
        ("alerts_total".into(), sum_rounds(&|s| s.alerts as f64)),
        (
            "alert_precision".into(),
            stat(&|r| {
                let alerts: usize = r.rounds.iter().map(|s| s.alerts).sum();
                let hits: usize = r.rounds.iter().map(|s| s.true_alerts).sum();
                if alerts == 0 {
                    1.0
                } else {
                    hits as f64 / alerts as f64
                }
            }),
        ),
        ("migrations_total".into(), sum_rounds(&|s| s.moves as f64)),
        ("migration_cost_total".into(), sum_rounds(&|s| s.cost)),
        ("unplaced_total".into(), sum_rounds(&|s| s.unplaced as f64)),
        (
            "evacuated_total".into(),
            sum_rounds(&|s| s.evacuated as f64),
        ),
        ("retries_total".into(), sum_rounds(&|s| s.retries as f64)),
        ("drops_total".into(), sum_rounds(&|s| s.drops as f64)),
        ("timeouts_total".into(), sum_rounds(&|s| s.timeouts as f64)),
        ("resends_total".into(), sum_rounds(&|s| s.resends as f64)),
        (
            "dedup_hits_total".into(),
            sum_rounds(&|s| s.dedup_hits as f64),
        ),
        (
            "degraded_shim_rounds".into(),
            sum_rounds(&|s| s.degraded_shims as f64),
        ),
        (
            "crashed_shim_rounds".into(),
            sum_rounds(&|s| s.crashed_shims as f64),
        ),
        ("ticks_total".into(), sum_rounds(&|s| s.ticks as f64)),
        (
            "overload_rounds".into(),
            stat(&|r| r.rounds.iter().filter(|s| s.overloaded_hosts > 0).count() as f64),
        ),
        (
            "audit_violations_total".into(),
            sum_rounds(&|s| s.audit_violations as f64),
        ),
        (
            "txn_committed_total".into(),
            sum_rounds(&|s| s.txn_committed as f64),
        ),
        (
            "txn_aborted_total".into(),
            sum_rounds(&|s| s.txn_aborted as f64),
        ),
        (
            "shim_recoveries_total".into(),
            sum_rounds(&|s| s.recoveries as f64),
        ),
        (
            "takeovers_total".into(),
            sum_rounds(&|s| s.takeovers as f64),
        ),
        (
            "fenced_messages_total".into(),
            sum_rounds(&|s| s.fenced as f64),
        ),
        (
            "partition_degraded_rounds".into(),
            stat(&|r| r.rounds.iter().filter(|s| s.partition_degraded > 0).count() as f64),
        ),
        (
            "reconciliation_conflicts_total".into(),
            sum_rounds(&|s| s.reconciliations as f64),
        ),
        (
            "transfers_started_total".into(),
            sum_rounds(&|s| s.transfers_started as f64),
        ),
        (
            "transfers_completed_total".into(),
            sum_rounds(&|s| s.transfers_completed as f64),
        ),
        (
            "transfer_reroutes_total".into(),
            sum_rounds(&|s| s.transfer_reroutes as f64),
        ),
        (
            // worst per-round p95 across the run: the round where
            // bottleneck sharing hurt transfer latency the most
            "transfer_p95_completion".into(),
            stat(&|r| {
                r.rounds
                    .iter()
                    .map(|s| s.transfer_p95_completion)
                    .fold(0.0, f64::max)
            }),
        ),
        (
            "bottleneck_serialization_rounds".into(),
            stat(&|r| r.rounds.iter().filter(|s| s.bottleneck_serialized).count() as f64),
        ),
        (
            "transfer_stalls_total".into(),
            sum_rounds(&|s| s.transfer_stalls as f64),
        ),
        (
            "transfer_retries_total".into(),
            sum_rounds(&|s| s.transfer_retries as f64),
        ),
        (
            "transfer_failures_total".into(),
            sum_rounds(&|s| s.transfer_failures as f64),
        ),
        (
            "resumed_bytes_saved_total".into(),
            sum_rounds(&|s| s.resumed_bytes_saved),
        ),
    ];

    let mut counters = Counters::new();
    for run in runs {
        counters.merge(&run.counters);
    }

    let timings_ns = vec![("seed_run".to_string(), stat(&|r| r.wall_nanos as f64))];

    let initial = metrics[0].1.mean;
    let final_sd = metrics[1].1.mean;
    let moves = metrics
        .iter()
        .find(|(k, _)| k == "migrations_total")
        .map_or(0.0, |(_, s)| s.mean);
    let cost = metrics
        .iter()
        .find(|(k, _)| k == "migration_cost_total")
        .map_or(0.0, |(_, s)| s.mean);
    let drop_pct = if initial > 0.0 {
        (1.0 - final_sd / initial) * 100.0
    } else {
        0.0
    };
    let mut notes = vec![format!(
        "std-dev {initial:.1}% -> {final_sd:.1}% over {} rounds ({drop_pct:.0}% drop); \
         {moves:.0} migrations/seed, mean total cost {cost:.0}",
        spec.rounds
    )];
    notes.push(format!(
        "runtime {}, {} seed(s) x {} topology variant(s), {} mode",
        spec.runtime.name(),
        spec.seeds.len(),
        spec.topologies.len(),
        if spec.trace_mode() {
            "trace (predicted alerts)"
        } else {
            "fraction-alert"
        }
    ));
    if !spec.faults.is_empty() {
        notes.push(format!("{} scheduled fault action(s)", spec.faults.len()));
    }
    if !spec.channel_phases.is_empty() {
        notes.push(format!(
            "{} channel phase(s) on the fabric control plane",
            spec.channel_phases.len()
        ));
    }

    ScenarioReport {
        id: spec.name.clone(),
        title: spec.title.clone(),
        runtime: spec.runtime.name().to_string(),
        rounds: spec.rounds,
        seeds: spec.seeds.clone(),
        columns,
        rows,
        notes,
        metrics,
        counters,
        timings_ns,
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn num(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // bare integers stay valid JSON numbers, but keep the float
        // form stable across formatting paths
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn stat_json(s: &Stat) -> String {
    format!(
        "{{\"mean\": {}, \"p50\": {}, \"p95\": {}}}",
        num(s.mean),
        num(s.p50),
        num(s.p95)
    )
}

impl ScenarioReport {
    /// The deterministic serialization: everything except wall-clock
    /// timings. Two runs of the same spec — serial or parallel, today
    /// or tomorrow — produce byte-identical canonical JSON.
    pub fn canonical_json(&self) -> String {
        self.render(false)
    }

    /// The full report, wall-clock timing statistics included.
    pub fn to_json_pretty(&self) -> String {
        self.render(true)
    }

    fn render(&self, with_timings: bool) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"id\": {},\n", esc(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", esc(&self.title)));
        out.push_str(&format!("  \"runtime\": {},\n", esc(&self.runtime)));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        let seeds: Vec<String> = self.seeds.iter().map(|s| s.to_string()).collect();
        out.push_str(&format!("  \"seeds\": [{}],\n", seeds.join(", ")));
        let columns: Vec<String> = self.columns.iter().map(|c| esc(c)).collect();
        out.push_str(&format!("  \"columns\": [{}],\n", columns.join(", ")));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let cells: Vec<String> = row.iter().map(|&v| num(v)).collect();
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            out.push_str(&format!("    [{}]{}\n", cells.join(", "), comma));
        }
        out.push_str("  ],\n");
        out.push_str("  \"metrics\": {\n");
        for (i, (k, s)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            out.push_str(&format!("    {}: {}{}\n", esc(k), stat_json(s), comma));
        }
        out.push_str("  },\n");
        out.push_str("  \"counters\": {\n");
        let n = self.counters.len();
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            out.push_str(&format!("    {}: {}{}\n", esc(k), v, comma));
        }
        out.push_str("  },\n");
        if with_timings {
            out.push_str("  \"timings_ns\": {\n");
            for (i, (k, s)) in self.timings_ns.iter().enumerate() {
                let comma = if i + 1 < self.timings_ns.len() {
                    ","
                } else {
                    ""
                };
                out.push_str(&format!("    {}: {}{}\n", esc(k), stat_json(s), comma));
            }
            out.push_str("  },\n");
        }
        let notes: Vec<String> = self.notes.iter().map(|s| esc(s)).collect();
        out.push_str(&format!(
            "  \"notes\": [\n    {}\n  ]\n",
            notes.join(",\n    ")
        ));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ScenarioRunner;
    use crate::spec::ScenarioSpec;

    fn run_spec(src: &str) -> (ScenarioSpec, ScenarioReport) {
        let spec = ScenarioSpec::parse_str(src).expect("spec parses");
        let runs = ScenarioRunner::new(spec.clone()).run().expect("runs");
        let report = aggregate(&spec, &runs);
        (spec, report)
    }

    const SMALL: &str = r#"
name = "agg-test"
title = "aggregation test"
rounds = 3
seeds = [5, 6]

[topology]
kind = "fat_tree"
pods = 4

[cluster]
vms_per_host = 2.0
skew = 3.0
"#;

    #[test]
    fn stat_quantiles_are_nearest_rank() {
        let s = Stat::of(&[4.0, 1.0, 3.0, 2.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.p50, 3.0); // index round(3 * 0.5) = 2 on [1,2,3,4]
        assert_eq!(s.p95, 4.0);
        let empty = Stat::of(&[]);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn report_has_fig9_shape_and_round_rows() {
        let (spec, report) = run_spec(SMALL);
        assert_eq!(report.id, "agg-test");
        assert_eq!(report.columns, vec!["round", "stddev_pct"]);
        assert_eq!(report.rows.len(), spec.rounds + 1);
        assert_eq!(report.rows[0][0], 0.0);
        assert!(report.rows[0][1] > report.rows[spec.rounds][1]);
        let json = report.to_json_pretty();
        for key in [
            "\"id\"",
            "\"title\"",
            "\"columns\"",
            "\"rows\"",
            "\"notes\"",
            "\"metrics\"",
            "\"counters\"",
            "\"timings_ns\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn canonical_json_excludes_timings_and_is_reproducible() {
        let (spec, report) = run_spec(SMALL);
        assert!(!report.canonical_json().contains("timings_ns"));
        // a fresh run of the same spec reproduces the canonical bytes
        let runs = ScenarioRunner::new(spec.clone()).run().unwrap();
        let again = aggregate(&spec, &runs);
        assert_eq!(report.canonical_json(), again.canonical_json());
    }

    #[test]
    fn multi_topology_report_gets_labelled_columns() {
        let (_, report) = run_spec(
            r#"
name = "multi"
rounds = 2
seeds = [3]

[[topology]]
kind = "fat_tree"
pods = 4

[[topology]]
kind = "bcube"
n = 4

[cluster]
vms_per_host = 2.0
"#,
        );
        assert_eq!(
            report.columns,
            vec!["round", "stddev_fat_tree_4", "stddev_bcube_4"]
        );
        assert_eq!(report.rows[0].len(), 3);
    }
}

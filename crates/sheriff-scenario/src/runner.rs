//! Deterministic scenario execution: one system per (topology, seed)
//! job, run serially or fanned out over scoped threads.
//!
//! A job is a pure function of the spec, the topology variant and the
//! sweep seed — it builds its own [`Cluster`], its own [`FaultInjector`]
//! and its own event sink, and never shares mutable state with sibling
//! jobs. The parallel path therefore produces byte-identical results to
//! the serial path: jobs are distributed over threads in contiguous
//! chunks and re-assembled in job order, and nothing inside a job can
//! observe scheduling (wall-clock durations travel outside the
//! deterministic state, see [`SeedRun::wall_nanos`]).

use crate::spec::{FaultAction, PredictorKind, RuntimeSpec, ScenarioSpec, SurgeSpec, TopologySpec};
use dcn_sim::engine::Cluster;
use dcn_sim::{
    alert::alert_value, Alert, AlertSource, FaultInjector, HoltPredictor, LastValue,
    ProfilePredictor, RackMetric, SheriffError,
};
use dcn_topology::{HostId, RackId, VmId};
use sheriff_core::{
    try_drain_rack, try_evacuate_host, CentralizedRuntime, CrashWindow, DistributedRuntime,
    FabricConfig, FabricRuntime, LinkFaultWindow, MigrationContext, MigrationPlan, PartitionWindow,
    RoundOutcome, RunCtx, Runtime, ShardedRuntime,
};
use sheriff_obs::{Counters, Event, EventSink};

/// Event sink used by every job: folds the event stream into a counter
/// per [`Event::kind`] and keeps the runtimes' own named counters.
/// Wall-clock timings are deliberately dropped — they are the one
/// non-deterministic signal, and they must not reach the report's
/// canonical form.
#[derive(Debug, Default, Clone)]
pub struct TallySink {
    /// Event-kind and named-counter tallies for one seed run.
    pub counters: Counters,
}

impl EventSink for TallySink {
    fn record(&mut self, event: Event) {
        self.counters.add(event.kind(), 1);
    }

    fn counter(&mut self, name: &'static str, delta: u64) {
        self.counters.add(name, delta);
    }
}

/// Everything measured in one management round of one seed run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundStat {
    /// Round index (0-based).
    pub round: usize,
    /// Utilisation std-dev (percent) *after* the round.
    pub stddev_pct: f64,
    /// Alerts served this round.
    pub alerts: usize,
    /// Alerts whose host really exceeds the threshold at the predicted
    /// step (trace mode; equals `alerts` in fraction mode, where alerts
    /// are by construction the hottest hosts).
    pub true_alerts: usize,
    /// Migrations committed.
    pub moves: usize,
    /// Eqn. 1 cost of the committed migrations.
    pub cost: f64,
    /// Victims the matching could not place.
    pub unplaced: usize,
    /// Commit attempts rejected and replanned.
    pub retries: usize,
    /// Messages lost by the channel (fabric).
    pub drops: usize,
    /// Requests whose deadline expired at least once (fabric).
    pub timeouts: usize,
    /// Retransmissions (fabric).
    pub resends: usize,
    /// Duplicate deliveries absorbed by dedup (fabric).
    pub dedup_hits: usize,
    /// Shims that ran degraded (part of their region presumed dead).
    pub degraded_shims: usize,
    /// Alerted shims that were crashed and could not participate.
    pub crashed_shims: usize,
    /// Virtual ticks of the round (fabric).
    pub ticks: u64,
    /// Hosts above the alert threshold after the round.
    pub overloaded_hosts: usize,
    /// VMs evacuated by the backup system this round (host/rack faults).
    pub evacuated: usize,
    /// Invariant breaches the post-round auditor found (should be 0).
    pub audit_violations: usize,
    /// Migration transactions committed via 2PC (fabric).
    pub txn_committed: usize,
    /// Migration transactions aborted or lease-expired (fabric).
    pub txn_aborted: usize,
    /// Shims that crashed mid-round and replayed their journal (fabric).
    pub recoveries: usize,
    /// Regions whose management moved to a successor shim (fabric).
    pub takeovers: usize,
    /// Protocol messages rejected for carrying a stale epoch (fabric).
    pub fenced: usize,
    /// Shims that planned against a partition-reduced region (fabric).
    pub partition_degraded: usize,
    /// Pending alerts dropped at heal because another shim now manages
    /// the VM's rack (fabric).
    pub reconciliations: usize,
    /// Migration pre-copies admitted by the transfer scheduler (fabric
    /// with the transfer model on).
    pub transfers_started: usize,
    /// Pre-copies that streamed to completion (fabric).
    pub transfers_completed: usize,
    /// Transfers steered off their shortest path by QCN congestion
    /// (fabric).
    pub transfer_reroutes: usize,
    /// Nearest-rank p95 transfer completion time in virtual ticks
    /// (fabric; 0.0 when nothing completed).
    pub transfer_p95_completion: f64,
    /// Whether some link carried ≥ 2 concurrent pre-copies this round
    /// (fabric).
    pub bottleneck_serialized: bool,
    /// Pre-copy streams stalled by a link failure (fabric).
    pub transfer_stalls: usize,
    /// Backoff retries attempted by stalled streams (fabric).
    pub transfer_retries: usize,
    /// Streams that exhausted their retries and aborted their 2PC
    /// transaction (fabric).
    pub transfer_failures: usize,
    /// Bytes that checkpointed resumes avoided re-copying versus a
    /// restart from zero (fabric).
    pub resumed_bytes_saved: f64,
}

/// The full deterministic record of one (topology, seed) job.
#[derive(Debug, Clone)]
pub struct SeedRun {
    /// Sweep seed that drove this run.
    pub seed: u64,
    /// Topology label ([`TopologySpec::label`]).
    pub topology: String,
    /// Utilisation std-dev (percent) before round 0.
    pub initial_stddev_pct: f64,
    /// Per-round measurements, `rounds` entries.
    pub rounds: Vec<RoundStat>,
    /// Merged event-kind / named-counter tallies.
    pub counters: Counters,
    /// Wall-clock duration of the job. NOT part of the deterministic
    /// state — excluded from the report's canonical JSON.
    pub wall_nanos: u64,
}

/// Executes a [`ScenarioSpec`]'s sweep, serially or in parallel.
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    /// The validated scenario.
    pub spec: ScenarioSpec,
    /// Fan jobs out over scoped threads (default) or run them in order
    /// on the calling thread.
    pub parallel: bool,
    /// Worker threads for the parallel path (0 = one per available CPU,
    /// capped at the job count).
    pub threads: usize,
}

impl ScenarioRunner {
    /// Runner with the default execution policy (parallel, auto threads).
    pub fn new(spec: ScenarioSpec) -> Self {
        Self {
            spec,
            parallel: true,
            threads: 0,
        }
    }

    /// Run every (topology, seed) job and return the runs in job order
    /// (topology-major, then seed) — identical regardless of `parallel`.
    pub fn run(&self) -> Result<Vec<SeedRun>, SheriffError> {
        let jobs: Vec<(usize, usize)> = (0..self.spec.topologies.len())
            .flat_map(|ti| (0..self.spec.seeds.len()).map(move |si| (ti, si)))
            .collect();
        if !self.parallel || jobs.len() <= 1 {
            return jobs
                .iter()
                .map(|&(ti, si)| run_job(&self.spec, ti, si))
                .collect();
        }
        let workers = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
        .clamp(1, jobs.len());
        // contiguous chunks keep the re-assembly a plain concatenation
        let chunk = jobs.len().div_ceil(workers);
        let spec = &self.spec;
        let outcome: Result<Vec<Vec<Result<SeedRun, SheriffError>>>, _> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move |_| {
                            part.iter()
                                .map(|&(ti, si)| run_job(spec, ti, si))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            })
            .map_err(|_| SheriffError::Invalid {
                reason: "scenario worker panicked".to_string(),
            })?;
        let mut runs = Vec::with_capacity(jobs.len());
        for part in outcome.map_err(|_| SheriffError::Invalid {
            reason: "scenario worker panicked".to_string(),
        })? {
            for run in part {
                runs.push(run?);
            }
        }
        Ok(runs)
    }
}

/// The four management loops behind one dispatch point. A plain enum
/// (not `Box<dyn Runtime>`) so the fabric arm's [`FabricConfig`] stays
/// reachable for per-round channel-phase and crash-list updates.
#[allow(clippy::large_enum_variant)] // one Loop per job; the fabric arm carries its failover state
enum Loop {
    Centralized(CentralizedRuntime),
    Distributed(DistributedRuntime),
    Sharded(ShardedRuntime),
    Fabric(FabricRuntime),
}

impl Loop {
    fn build(spec: &RuntimeSpec, sim: &dcn_sim::SimConfig, seed: u64) -> Self {
        match *spec {
            RuntimeSpec::Centralized { max_rounds } => {
                Loop::Centralized(CentralizedRuntime { max_rounds })
            }
            RuntimeSpec::Distributed { max_retry } => {
                Loop::Distributed(DistributedRuntime { max_retry })
            }
            RuntimeSpec::Sharded => Loop::Sharded(ShardedRuntime),
            RuntimeSpec::Fabric {
                max_retry,
                transfer,
            } => {
                let mut cfg = FabricConfig::for_channel(sim.channel.clone(), seed);
                cfg.max_retry = max_retry;
                if let Some(ts) = transfer {
                    cfg = cfg.with_transfer(ts.to_config());
                }
                Loop::Fabric(FabricRuntime::with_config(cfg))
            }
        }
    }

    fn step(&mut self, ctx: &mut RunCtx<'_>) -> RoundOutcome {
        match self {
            Loop::Centralized(rt) => rt.step(ctx),
            Loop::Distributed(rt) => rt.step(ctx),
            Loop::Sharded(rt) => rt.step(ctx),
            Loop::Fabric(rt) => rt.step(ctx),
        }
    }
}

/// splitmix64 — the deterministic per-VM coin for surge membership.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether `vm` is in the surge's deterministic `fraction`-sized subset.
fn surge_hits(seed: u64, surge_index: usize, vm: usize, fraction: f64) -> bool {
    let h = splitmix64(seed ^ (surge_index as u64).rotate_left(32) ^ (vm as u64));
    // top 53 bits → uniform in [0, 1)
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    u < fraction
}

/// Overlay the spec's surges onto the cluster's synthetic traces.
fn apply_surges(cluster: &mut Cluster, surges: &[SurgeSpec], seed: u64) {
    for (i, s) in surges.iter().enumerate() {
        for vm in 0..cluster.workloads.len() {
            if surge_hits(seed, i, vm, s.fraction) {
                cluster.workloads[vm].apply_surge(s.start, s.duration, s.factor);
            }
        }
    }
}

/// A predictor chosen by the spec, behind one dispatch point.
enum Predictor {
    Holt(HoltPredictor),
    Last(LastValue),
}

impl Predictor {
    fn build(kind: &PredictorKind) -> Self {
        match *kind {
            PredictorKind::Holt { alpha, beta } => Predictor::Holt(HoltPredictor { alpha, beta }),
            PredictorKind::LastValue => Predictor::Last(LastValue),
        }
    }
}

impl ProfilePredictor for Predictor {
    fn predict(&self, workload: &dcn_sim::VmWorkload, t: usize) -> dcn_sim::Profile {
        match self {
            Predictor::Holt(p) => p.predict(workload, t),
            Predictor::Last(p) => p.predict(workload, t),
        }
    }
}

/// Apply the fault schedule entries of round `t`. Returns the VMs
/// stranded by host/rack failures (the backup system's work-list) and
/// whether any link changed state (the metric must be rebuilt).
#[allow(clippy::type_complexity)]
fn apply_faults(
    spec: &ScenarioSpec,
    cluster: &mut Cluster,
    injector: &mut FaultInjector,
    sink: &mut TallySink,
    t: usize,
) -> (Vec<(HostId, Vec<VmId>)>, Vec<RackId>, bool) {
    let mut stranded: Vec<(HostId, Vec<VmId>)> = Vec::new();
    let mut drained: Vec<RackId> = Vec::new();
    let mut links_changed = false;
    for ev in spec.faults.iter().filter(|e| e.round == t) {
        let mut obs = injector.observed(sink);
        match &ev.action {
            FaultAction::FailLink {
                link,
                fail_at,
                restore_at,
            } => {
                if fail_at.is_none() && restore_at.is_none() {
                    obs.fail_link(&mut cluster.dcn, *link);
                } else {
                    obs.fail_link_at(*link, fail_at.unwrap_or(0), *restore_at);
                }
                links_changed = true;
            }
            FaultAction::RestoreLink { link } => {
                obs.restore_link(&mut cluster.dcn, *link);
                links_changed = true;
            }
            FaultAction::FailHost { host } => {
                let host = HostId::from_index(*host);
                let vms = obs.fail_host(&mut cluster.placement, host);
                if !vms.is_empty() {
                    stranded.push((host, vms));
                }
            }
            FaultAction::RestoreHost { host } => {
                obs.restore_host(&mut cluster.placement, HostId::from_index(*host));
            }
            FaultAction::FailRack { rack } => {
                let rack = RackId::from_index(*rack);
                let hosts: Vec<HostId> = cluster.dcn.inventory.hosts_in(rack).to_vec();
                let mut any = false;
                for h in hosts {
                    any |= !obs.fail_host(&mut cluster.placement, h).is_empty();
                }
                obs.crash_shim(rack);
                if any {
                    drained.push(rack);
                }
            }
            FaultAction::RestoreRack { rack } => {
                let rack = RackId::from_index(*rack);
                let hosts: Vec<HostId> = cluster.dcn.inventory.hosts_in(rack).to_vec();
                for h in hosts {
                    obs.restore_host(&mut cluster.placement, h);
                }
                obs.recover_shim(rack);
            }
            FaultAction::CrashShim {
                rack,
                crash_at,
                recover_at,
            } => {
                let rack = RackId::from_index(*rack);
                if crash_at.is_none() && recover_at.is_none() {
                    obs.crash_shim(rack);
                } else {
                    obs.crash_shim_at(rack, crash_at.unwrap_or(0), *recover_at);
                }
            }
            FaultAction::RecoverShim { rack } => obs.recover_shim(RackId::from_index(*rack)),
            FaultAction::Partition {
                name,
                racks,
                start_at,
                heal_at,
            } => {
                let members: Vec<RackId> = racks.iter().map(|&r| RackId::from_index(r)).collect();
                obs.partition_at(name, members, *start_at, *heal_at);
            }
            FaultAction::HealPartition { name, heal_at } => {
                obs.heal_partition_at(name, *heal_at);
            }
        }
    }
    (stranded, drained, links_changed)
}

/// The backup system of Sec. III-A: place every VM stranded by a host
/// or rack failure somewhere live, via the same matching machinery as
/// VMMIGRATION. Returns the merged evacuation plan.
fn evacuate(
    cluster: &mut Cluster,
    metric: &RackMetric,
    stranded: &[(HostId, Vec<VmId>)],
    drained: &[RackId],
) -> Result<MigrationPlan, SheriffError> {
    let mut plan = MigrationPlan::default();
    for rack in drained.iter().copied() {
        let region = cluster.region_of(rack);
        let mut ctx = MigrationContext {
            placement: &mut cluster.placement,
            inventory: &cluster.dcn.inventory,
            deps: &cluster.deps,
            metric,
            sim: &cluster.sim,
        };
        plan.absorb(try_drain_rack(&mut ctx, rack, &region, 3)?);
    }
    for (host, _) in stranded {
        let rack = cluster.placement.rack_of_host(*host);
        // hosts inside a drained rack were already handled above
        if drained.contains(&rack) {
            continue;
        }
        let region = cluster.region_of(rack);
        let mut ctx = MigrationContext {
            placement: &mut cluster.placement,
            inventory: &cluster.dcn.inventory,
            deps: &cluster.deps,
            metric,
            sim: &cluster.sim,
        };
        plan.absorb(try_evacuate_host(&mut ctx, *host, &region, 3)?);
    }
    Ok(plan)
}

/// Run one (topology, seed) job to completion.
pub(crate) fn run_job(
    spec: &ScenarioSpec,
    topology_index: usize,
    seed_index: usize,
) -> Result<SeedRun, SheriffError> {
    #[allow(clippy::disallowed_methods)]
    // sheriff-lint: allow(DET01, "wall clock feeds only wall_time_ms, which canonical_json excludes from the deterministic report")
    let start = std::time::Instant::now();
    let topo: &TopologySpec = &spec.topologies[topology_index];
    let seed = spec.seeds[seed_index];
    let trace = spec.trace_mode();

    let dcn = topo.build();
    let mut ccfg = spec.cluster.clone();
    ccfg.seed = seed;
    let mut cluster = Cluster::try_build(dcn, &ccfg, spec.sim.clone())?;
    if trace {
        apply_surges(&mut cluster, &spec.workload.surges, seed);
    }
    let predictor = Predictor::build(&spec.workload.predictor);
    let threshold = cluster.sim.alert_threshold;

    let mut injector = FaultInjector::new();
    let mut metric = RackMetric::build(&cluster.dcn, &cluster.sim);
    let mut runtime = Loop::build(&spec.runtime, &cluster.sim, seed);
    let mut sink = TallySink::default();
    let mut phase_cursor = 0usize;

    let initial_stddev_pct = cluster.utilization_stddev();
    let mut rounds = Vec::with_capacity(spec.rounds);

    for t in 0..spec.rounds {
        // 1. scheduled faults fire at the start of the round
        let (stranded, drained, links_changed) =
            apply_faults(spec, &mut cluster, &mut injector, &mut sink, t);
        if links_changed {
            metric = RackMetric::build(&cluster.dcn, &cluster.sim);
        }
        // 2. the backup system resolves crash errors before management
        let evac = evacuate(&mut cluster, &metric, &stranded, &drained)?;

        // 3. channel phases re-shape the fabric's control channel; the
        // injector's crash schedule (whole-round downs plus any timed
        // mid-round windows) is drained every round — this also settles
        // the injector's end-of-round shim_down state for step 4
        let crash_schedule = injector.drain_crash_schedule();
        // the link schedule (standing whole-round downs plus any timed
        // mid-round windows) likewise drains every round; draining also
        // applies each timed window's end-state to the topology graph,
        // so the metric must be rebuilt when a mid-round fault leaves a
        // link down (or brings one back) past the round boundary
        let link_schedule = injector.drain_link_schedule(&mut cluster.dcn);
        if link_schedule.iter().any(|&(_, f, r)| f > 0 || r.is_some()) {
            metric = RackMetric::build(&cluster.dcn, &cluster.sim);
        }
        if let Loop::Fabric(rt) = &mut runtime {
            while phase_cursor < spec.channel_phases.len()
                && spec.channel_phases[phase_cursor].round <= t
            {
                let phase = &spec.channel_phases[phase_cursor];
                rt.cfg.faults = phase.faults.clone();
                rt.cfg = std::mem::take(&mut rt.cfg)
                    .with_hello_window(2u64.max(phase.faults.delay_max + 1));
                phase_cursor += 1;
            }
            rt.cfg.crashed = crash_schedule
                .iter()
                .map(|&(rack, crash_at, recover_at)| CrashWindow {
                    rack,
                    crash_at,
                    recover_at,
                })
                .collect();
            rt.cfg.partitions = injector
                .drain_partition_schedule()
                .into_iter()
                .map(|(racks, start_at, heal_at)| PartitionWindow::new(racks, start_at, heal_at))
                .collect();
            rt.cfg.link_faults = link_schedule
                .iter()
                .map(|&(link, fail_at, restore_at)| LinkFaultWindow {
                    link,
                    fail_at,
                    restore_at,
                })
                .collect();
        }

        // 4. raise this round's pre-alerts
        let mut alerts: Vec<Alert> = if trace {
            cluster.predicted_alerts(&predictor, t)
        } else {
            cluster.fraction_alerts(spec.workload.alert_fraction, t)
        };
        // a crashed shim serves no alerts; the fabric models this itself
        // through its liveness ladder, the other runtimes need the
        // filter up front
        if !matches!(runtime, Loop::Fabric(_)) {
            alerts.retain(|a| !injector.shim_down(a.rack));
        }
        let true_alerts = if trace {
            alerts
                .iter()
                .filter(|a| match a.source {
                    AlertSource::Host(h) => cluster
                        .placement
                        .vms_on(h)
                        .iter()
                        .any(|&vm| cluster.profile_at(vm, t + 1).exceeds(threshold)),
                    _ => false,
                })
                .count()
        } else {
            alerts.len()
        };

        // 5. ALERT magnitudes per VM (PRIORITY's w = 1 ordering)
        let alert_values: Vec<f64> = if trace {
            cluster
                .placement
                .vm_ids()
                .map(|vm| {
                    let predicted = predictor.predict(&cluster.workloads[vm.index()], t);
                    alert_value(&predicted, threshold)
                })
                .collect()
        } else {
            cluster
                .placement
                .vm_ids()
                .map(|vm| cluster.placement.utilization(cluster.placement.host_of(vm)))
                .collect()
        };

        // 6. one management round through the Runtime trait
        let alert_count = alerts.len();
        let out = {
            let mut ctx = RunCtx {
                cluster: &mut cluster,
                metric: &metric,
                alerts: &alerts,
                alert_values: &alert_values,
                sink: &mut sink,
            };
            runtime.step(&mut ctx)
        };

        // 7. measure the post-round state
        let overloaded_hosts = (0..cluster.placement.host_count())
            .map(HostId::from_index)
            .filter(|&h| {
                cluster.placement.is_host_online(h) && cluster.placement.utilization(h) > threshold
            })
            .count();
        rounds.push(RoundStat {
            round: t,
            stddev_pct: cluster.utilization_stddev(),
            alerts: alert_count,
            true_alerts,
            moves: out.plan.moves.len(),
            cost: out.plan.total_cost,
            unplaced: out.plan.unplaced.len(),
            retries: out.retries,
            drops: out.drops,
            timeouts: out.timeouts,
            resends: out.resends,
            dedup_hits: out.dedup_hits,
            degraded_shims: out.degraded_shims,
            crashed_shims: out.crashed_shims,
            ticks: out.ticks,
            overloaded_hosts,
            evacuated: evac.moves.len(),
            audit_violations: out.audit.len(),
            txn_committed: out.txn_committed,
            txn_aborted: out.txn_aborted,
            recoveries: out.recoveries,
            takeovers: out.takeovers,
            fenced: out.fenced,
            partition_degraded: out.partition_degraded,
            reconciliations: out.reconciliations,
            transfers_started: out.transfers_started,
            transfers_completed: out.transfers_completed,
            transfer_reroutes: out.transfer_reroutes,
            transfer_p95_completion: out.transfer_p95_completion,
            bottleneck_serialized: out.bottleneck_serialized,
            transfer_stalls: out.transfer_stalls,
            transfer_retries: out.transfer_retries,
            transfer_failures: out.transfer_failures,
            resumed_bytes_saved: out.resumed_bytes_saved,
        });
    }

    Ok(SeedRun {
        seed,
        topology: topo.label(),
        initial_stddev_pct,
        rounds,
        counters: sink.counters,
        wall_nanos: start.elapsed().as_nanos() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    fn small_spec(extra: &str) -> ScenarioSpec {
        let src = format!(
            r#"
name = "test"
title = "test scenario"
rounds = 3
seeds = [7, 8]

[topology]
kind = "fat_tree"
pods = 4

[cluster]
vms_per_host = 2.0
skew = 3.0
{extra}
"#
        );
        ScenarioSpec::parse_str(&src).expect("spec parses")
    }

    #[test]
    fn serial_and_parallel_runs_are_identical() {
        let spec = small_spec("");
        let mut serial = ScenarioRunner::new(spec.clone());
        serial.parallel = false;
        let mut parallel = ScenarioRunner::new(spec);
        parallel.threads = 2;
        let a = serial.run().unwrap();
        let b = parallel.run().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.topology, y.topology);
            assert_eq!(x.rounds, y.rounds);
            assert_eq!(x.initial_stddev_pct, y.initial_stddev_pct);
            let xc: Vec<_> = x.counters.iter().collect();
            let yc: Vec<_> = y.counters.iter().collect();
            assert_eq!(xc, yc);
        }
    }

    #[test]
    fn rounds_reduce_imbalance() {
        let spec = small_spec("");
        let runs = ScenarioRunner::new(spec).run().unwrap();
        for run in &runs {
            let last = run.rounds.last().unwrap();
            assert!(
                last.stddev_pct < run.initial_stddev_pct,
                "seed {}: {} -> {}",
                run.seed,
                run.initial_stddev_pct,
                last.stddev_pct
            );
        }
    }

    #[test]
    fn host_failure_triggers_evacuation() {
        let spec = small_spec("\n[[fault]]\nround = 1\naction = \"fail_host\"\nhost = 0\n");
        let runs = ScenarioRunner::new(spec).run().unwrap();
        for run in &runs {
            // host 0 held VMs in these seeds; round 1 must evacuate them
            assert!(
                run.rounds[1].evacuated > 0,
                "seed {}: no evacuation recorded",
                run.seed
            );
            assert_eq!(run.counters.get("fault_injected"), 1);
        }
    }

    #[test]
    fn crashed_shim_suppresses_its_alerts() {
        // crash every shim: no alerts can be served at all
        let mut faults = String::new();
        for r in 0..16 {
            faults.push_str(&format!(
                "\n[[fault]]\nround = 0\naction = \"crash_shim\"\nrack = {r}\n"
            ));
        }
        let spec = small_spec(&faults);
        let runs = ScenarioRunner::new(spec).run().unwrap();
        for run in &runs {
            for rs in &run.rounds {
                assert_eq!(rs.moves, 0, "seed {}: moves under total crash", run.seed);
            }
        }
    }

    #[test]
    fn surge_subset_is_deterministic_and_sized() {
        let n = 10_000;
        let hits = (0..n).filter(|&vm| surge_hits(42, 0, vm, 0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "got {frac}");
        for vm in 0..100 {
            assert_eq!(
                surge_hits(42, 0, vm, 0.3),
                surge_hits(42, 0, vm, 0.3),
                "vm {vm} flapped"
            );
        }
    }
}

//! # sheriff-scenario
//!
//! Declarative scenario engine for the Sheriff reproduction: describe an
//! experiment — topology, cluster population, workload and surge
//! overlays, fault schedule, channel phases, runtime, seed sweep — in a
//! TOML (or JSON) file, validate it into a typed [`ScenarioSpec`], run
//! the sweep deterministically (serial or parallel, provably identical)
//! with [`ScenarioRunner`], and fold the per-seed outcomes into a
//! [`ScenarioReport`] whose JSON shape extends the `results/fig*.json`
//! tables.
//!
//! ```toml
//! name = "fig9_prealert"
//! rounds = 24
//! seeds = { base = 42, count = 4 }
//!
//! [topology]
//! kind = "fat_tree"
//! pods = 8
//!
//! [cluster]
//! vms_per_host = 2.5
//! skew = 4.0
//!
//! [runtime]
//! kind = "distributed"
//! ```
//!
//! The pipeline is three calls:
//!
//! ```no_run
//! use sheriff_scenario::{aggregate, ScenarioRunner, ScenarioSpec};
//! let spec = ScenarioSpec::load(std::path::Path::new("scenarios/fig9_prealert.toml"))?;
//! spec.validate()?;
//! let runs = ScenarioRunner::new(spec.clone()).run()?;
//! let report = aggregate(&spec, &runs);
//! println!("{}", report.to_json_pretty());
//! # Ok::<(), dcn_sim::SheriffError>(())
//! ```
//!
//! Determinism contract: a job is a pure function of (spec, topology,
//! seed). The parallel path chunks jobs over vendored crossbeam scoped
//! threads and re-assembles them in job order, so
//! [`ScenarioReport::canonical_json`] is byte-identical between serial
//! and parallel execution and across repeated runs of the same file —
//! property-tested in `tests/scenario_determinism.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod runner;
pub mod spec;
pub mod value;

pub use report::{aggregate, ScenarioReport, Stat};
pub use runner::{RoundStat, ScenarioRunner, SeedRun, TallySink};
pub use spec::{
    ChannelPhase, FaultAction, FaultEvent, PredictorKind, RuntimeSpec, ScenarioSpec, SurgeSpec,
    TopologySpec, TransferModelSpec, WorkloadSpec,
};
pub use value::Value;

// The error type is the workspace-wide one.
pub use dcn_sim::SheriffError;

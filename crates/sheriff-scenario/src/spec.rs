//! The typed scenario specification and its validation.
//!
//! A scenario file (TOML or JSON, parsed by [`crate::value`]) is checked
//! into a [`ScenarioSpec`]: unknown keys are errors, every field is
//! range-checked before any topology is built, and [`ScenarioSpec::validate`]
//! additionally returns *warnings* for spec smells that are legal but
//! probably unintended (a fault scheduled after the last round, channel
//! phases under a runtime that ignores the channel, ...). DESIGN.md §8
//! maps each section to the paper knob it drives.

use crate::value::Value;
use dcn_sim::engine::ClusterConfig;
use dcn_sim::{ChannelFaults, SheriffError, SimConfig};
use dcn_topology::bcube::{self, BCubeConfig};
use dcn_topology::dcell::{self, DCellConfig};
use dcn_topology::fattree::{self, FatTreeConfig};
use dcn_topology::vl2::{self, Vl2Config};
use dcn_topology::Dcn;
use std::collections::BTreeMap;
use std::path::Path;

fn invalid(reason: String) -> SheriffError {
    SheriffError::Invalid { reason }
}

/// Which DCN substrate a scenario variant runs on, plus its size knobs.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// `k`-pod Fat-Tree (paper Sec. VI-B; `pods` even, ≥ 2).
    FatTree {
        /// Pod count `k`.
        pods: usize,
        /// Servers per rack; defaults to the classical `k/2`.
        hosts_per_rack: Option<usize>,
    },
    /// BCube(n, 1) as in Fig. 10 (`n` ≥ 2).
    BCube {
        /// Switch port count / servers per BCube₀.
        n: usize,
    },
    /// DCell(n, k) extension topology (`n` ≥ 2).
    DCell {
        /// Servers per DCell₀.
        n: usize,
        /// Recursion level.
        k: usize,
    },
    /// VL2 Clos fabric extension (`d_a` even ≥ 4, `d_i` even ≥ 2).
    Vl2 {
        /// Aggregation-switch port count `D_A`.
        d_a: usize,
        /// Intermediate-switch port count `D_I`.
        d_i: usize,
    },
}

impl TopologySpec {
    /// A stable label for report columns, e.g. `fat_tree_8`.
    pub fn label(&self) -> String {
        match self {
            TopologySpec::FatTree { pods, .. } => format!("fat_tree_{pods}"),
            TopologySpec::BCube { n } => format!("bcube_{n}"),
            TopologySpec::DCell { n, k } => format!("dcell_{n}_{k}"),
            TopologySpec::Vl2 { d_a, d_i } => format!("vl2_{d_a}_{d_i}"),
        }
    }

    /// Check the size constraints the builders assert on.
    pub fn validate(&self) -> Result<(), SheriffError> {
        match *self {
            TopologySpec::FatTree {
                pods,
                hosts_per_rack,
            } => {
                if pods < 2 || pods % 2 != 0 {
                    return Err(invalid(format!(
                        "fat_tree pods must be even and >= 2, got {pods}"
                    )));
                }
                if hosts_per_rack == Some(0) {
                    return Err(invalid("fat_tree hosts_per_rack must be >= 1".into()));
                }
            }
            TopologySpec::BCube { n } => {
                if n < 2 {
                    return Err(invalid(format!("bcube n must be >= 2, got {n}")));
                }
            }
            TopologySpec::DCell { n, .. } => {
                if n < 2 {
                    return Err(invalid(format!("dcell n must be >= 2, got {n}")));
                }
            }
            TopologySpec::Vl2 { d_a, d_i } => {
                if d_a < 4 || d_a % 2 != 0 {
                    return Err(invalid(format!("vl2 d_a must be even and >= 4, got {d_a}")));
                }
                if d_i < 2 || d_i % 2 != 0 {
                    return Err(invalid(format!("vl2 d_i must be even and >= 2, got {d_i}")));
                }
            }
        }
        Ok(())
    }

    /// Build the network.
    pub fn build(&self) -> Dcn {
        match *self {
            TopologySpec::FatTree {
                pods,
                hosts_per_rack,
            } => {
                let mut cfg = FatTreeConfig::paper(pods);
                if let Some(h) = hosts_per_rack {
                    cfg.hosts_per_rack = h;
                }
                fattree::build(&cfg)
            }
            TopologySpec::BCube { n } => bcube::build(&BCubeConfig::paper(n)),
            TopologySpec::DCell { n, k } => dcell::build(&DCellConfig::paper(n, k)),
            TopologySpec::Vl2 { d_a, d_i } => vl2::build(&Vl2Config::paper(d_a, d_i)),
        }
    }
}

/// Which workload-profile predictor raises the pre-alerts (Sec. IV-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictorKind {
    /// Double exponential smoothing (Holt's method).
    Holt {
        /// Level smoothing factor.
        alpha: f64,
        /// Trend smoothing factor.
        beta: f64,
    },
    /// Naive last-value predictor.
    LastValue,
}

impl Default for PredictorKind {
    fn default() -> Self {
        PredictorKind::Holt {
            alpha: 0.5,
            beta: 0.2,
        }
    }
}

/// One surge/burst overlay multiplying a window of the workload traces —
/// the bursty scenarios motivated by the early-warning related work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurgeSpec {
    /// First affected round.
    pub start: usize,
    /// Window length in rounds.
    pub duration: usize,
    /// Multiplier applied to every workload feature (clamped to [0, 1]).
    pub factor: f64,
    /// Fraction of VMs hit by the surge (chosen deterministically).
    pub fraction: f64,
}

/// Workload / alert-generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Fraction of VMs alerting per round in trace-less mode (the
    /// Fig. 9–14 protocol; used when `cluster.workload_len == 0`).
    pub alert_fraction: f64,
    /// Predictor driving `predicted_alerts` in trace mode.
    pub predictor: PredictorKind,
    /// Surge overlays applied to the synthetic traces.
    pub surges: Vec<SurgeSpec>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            alert_fraction: 0.05,
            predictor: PredictorKind::default(),
            surges: Vec::new(),
        }
    }
}

/// Which management loop runs the rounds, via the `Runtime` trait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RuntimeSpec {
    /// Global manager baseline (Sec. VI-B).
    Centralized {
        /// Replan rounds for the global matching.
        max_rounds: usize,
    },
    /// Shared-lock threaded shims.
    Distributed {
        /// Replan rounds per shim after the first.
        max_retry: usize,
    },
    /// Message-passing rack agents.
    Sharded,
    /// Virtual-time fabric over a faulty channel.
    Fabric {
        /// Replan rounds per shim after the first.
        max_retry: usize,
        /// Optional migration transfer model (pre-copies stream over
        /// the core at finite bandwidth instead of committing
        /// instantly).
        transfer: Option<TransferModelSpec>,
    },
}

/// Migration transfer-model knobs for the fabric runtime — a `Copy`
/// mirror of [`sheriff_transfer::TransferConfig`] so [`RuntimeSpec`]
/// stays a plain value type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferModelSpec {
    /// Per-link migration bandwidth (capacity units per virtual tick).
    pub bandwidth: f64,
    /// Fabric-wide concurrent pre-copy cap (0 = unlimited).
    pub max_concurrent: usize,
    /// Route selection under QCN congestion feedback.
    pub route_strategy: sheriff_transfer::RouteStrategy,
    /// QCN severity above which the primary path is abandoned.
    pub reroute_threshold: f64,
    /// Bytes streamed per unit of VM capacity.
    pub bytes_per_capacity: f64,
    /// k-shortest-path candidates per transfer.
    pub k_paths: usize,
    /// Fraction of copied bytes re-dirtied when a stream resumes or
    /// re-routes after a link failure (0 = perfect checkpoint).
    pub dirty_rate: f64,
    /// Base of the stalled-stream retry backoff in ticks.
    pub stall_budget: u64,
    /// Retry attempts a stalled stream gets before it aborts.
    pub max_attempts: u32,
}

impl Default for TransferModelSpec {
    fn default() -> Self {
        let d = sheriff_transfer::TransferConfig::default();
        Self {
            bandwidth: d.link_bandwidth,
            max_concurrent: d.max_concurrent,
            route_strategy: d.route_strategy,
            reroute_threshold: d.reroute_threshold,
            bytes_per_capacity: d.bytes_per_capacity,
            k_paths: d.k_paths,
            dirty_rate: d.dirty_rate,
            stall_budget: d.stall_budget,
            max_attempts: d.max_attempts,
        }
    }
}

impl TransferModelSpec {
    /// The scheduler config these knobs describe.
    pub fn to_config(self) -> sheriff_transfer::TransferConfig {
        sheriff_transfer::TransferConfig {
            link_bandwidth: self.bandwidth,
            max_concurrent: self.max_concurrent,
            route_strategy: self.route_strategy,
            reroute_threshold: self.reroute_threshold,
            bytes_per_capacity: self.bytes_per_capacity,
            k_paths: self.k_paths,
            dirty_rate: self.dirty_rate,
            stall_budget: self.stall_budget,
            max_attempts: self.max_attempts,
        }
    }
}

impl Default for RuntimeSpec {
    fn default() -> Self {
        RuntimeSpec::Distributed { max_retry: 3 }
    }
}

impl RuntimeSpec {
    /// Stable runtime name matching `Runtime::name()`.
    pub fn name(&self) -> &'static str {
        match self {
            RuntimeSpec::Centralized { .. } => "centralized",
            RuntimeSpec::Distributed { .. } => "distributed",
            RuntimeSpec::Sharded => "sharded",
            RuntimeSpec::Fabric { .. } => "fabric",
        }
    }
}

/// A scheduled fault action (applied at the *start* of its round).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Kill one link by edge index. With the optional virtual-time
    /// fields the failure happens *mid-round* on the fabric runtime's
    /// transfer plane: the link dies at tick `fail_at` and — when
    /// `restore_at` is set — comes back within the same round. Omitting
    /// both keeps the whole-round, round-boundary semantics.
    FailLink {
        /// Edge index in the topology graph.
        link: usize,
        /// Virtual tick (within the round) at which the link dies;
        /// `None` means "down from tick 0" (round-boundary failure).
        fail_at: Option<u64>,
        /// Virtual tick at which the link comes back; `None` means it
        /// stays down until a `restore_link` action names it.
        restore_at: Option<u64>,
    },
    /// Restore a previously failed link.
    RestoreLink {
        /// Edge index in the topology graph.
        link: usize,
    },
    /// Fail a host; its VMs are evacuated by the backup system.
    FailHost {
        /// Host index.
        host: usize,
    },
    /// Bring a failed host back online.
    RestoreHost {
        /// Host index.
        host: usize,
    },
    /// Fail every host of a rack and crash its shim (ToR failure).
    FailRack {
        /// Rack index.
        rack: usize,
    },
    /// Restore a failed rack's hosts and recover its shim.
    RestoreRack {
        /// Rack index.
        rack: usize,
    },
    /// Crash a rack's shim process only (hosts keep running). With the
    /// optional virtual-time fields the crash happens *mid-round* on the
    /// fabric runtime: the shim dies at tick `crash_at` and — when
    /// `recover_at` is set — replays its intent journal and rejoins at
    /// that tick. Omitting both keeps the whole-round semantics.
    CrashShim {
        /// Rack index.
        rack: usize,
        /// Virtual tick (within the round) at which the shim dies;
        /// `None` means "down from tick 0".
        crash_at: Option<u64>,
        /// Virtual tick at which the shim recovers; `None` means it
        /// stays down into the following rounds.
        recover_at: Option<u64>,
    },
    /// Recover a crashed shim.
    RecoverShim {
        /// Rack index.
        rack: usize,
    },
    /// Cut a named set of racks off from the rest of the cluster in the
    /// fabric round's virtual time: traffic crossing the cut is silently
    /// swallowed from tick `start_at`. With `heal_at` set the cut heals
    /// within the same round; without it the partition stands across
    /// rounds until a `heal` action names it.
    Partition {
        /// Name the partition is later healed by.
        name: String,
        /// Rack indices on the minority side of the cut.
        racks: Vec<usize>,
        /// Virtual tick (within the round) the cut starts.
        start_at: u64,
        /// Virtual tick the cut heals, if within this round.
        heal_at: Option<u64>,
    },
    /// Heal a standing named partition at tick `heal_at` of the round.
    HealPartition {
        /// Name given to the earlier `partition` action.
        name: String,
        /// Virtual tick (within the round) the cut heals.
        heal_at: u64,
    },
}

/// One entry of the fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Round at whose start the action fires.
    pub round: usize,
    /// What happens.
    pub action: FaultAction,
}

/// A channel-fault phase: from `round` on, the fabric's control channel
/// behaves per `faults` (until a later phase replaces it).
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelPhase {
    /// First round the phase applies to.
    pub round: usize,
    /// The channel fault model during the phase.
    pub faults: ChannelFaults,
}

/// A fully-validated scenario: everything a sweep needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Report id (also the default output file stem).
    pub name: String,
    /// Human-readable title.
    pub title: String,
    /// Management rounds per seed.
    pub rounds: usize,
    /// Seed sweep; one independent system per seed.
    pub seeds: Vec<u64>,
    /// Topology variants (more than one = comparison scenario).
    pub topologies: Vec<TopologySpec>,
    /// Cluster population parameters (seed is overridden per sweep seed).
    pub cluster: ClusterConfig,
    /// Workload / alert generation.
    pub workload: WorkloadSpec,
    /// Management loop choice.
    pub runtime: RuntimeSpec,
    /// Simulation parameters (thresholds, cost weights, channel).
    pub sim: SimConfig,
    /// Scheduled faults, sorted by round.
    pub faults: Vec<FaultEvent>,
    /// Channel fault phases, sorted by round.
    pub channel_phases: Vec<ChannelPhase>,
}

// -------------------------------------------------------- value helpers

fn check_keys(
    table: &BTreeMap<String, Value>,
    allowed: &[&str],
    section: &str,
) -> Result<(), SheriffError> {
    for key in table.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(invalid(format!(
                "unknown key {key:?} in {section} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn want_table<'v>(v: &'v Value, what: &str) -> Result<&'v BTreeMap<String, Value>, SheriffError> {
    v.as_table()
        .ok_or_else(|| invalid(format!("{what} must be a table, got {}", v.type_name())))
}

fn get_f64(
    t: &BTreeMap<String, Value>,
    key: &str,
    section: &str,
) -> Result<Option<f64>, SheriffError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| invalid(format!("{section}.{key} must be a number"))),
    }
}

fn get_usize(
    t: &BTreeMap<String, Value>,
    key: &str,
    section: &str,
) -> Result<Option<usize>, SheriffError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => {
            let i = v
                .as_i64()
                .ok_or_else(|| invalid(format!("{section}.{key} must be an integer")))?;
            usize::try_from(i)
                .map(Some)
                .map_err(|_| invalid(format!("{section}.{key} must be >= 0, got {i}")))
        }
    }
}

fn get_u64(
    t: &BTreeMap<String, Value>,
    key: &str,
    section: &str,
) -> Result<Option<u64>, SheriffError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => {
            let i = v
                .as_i64()
                .ok_or_else(|| invalid(format!("{section}.{key} must be an integer")))?;
            u64::try_from(i)
                .map(Some)
                .map_err(|_| invalid(format!("{section}.{key} must be >= 0, got {i}")))
        }
    }
}

fn get_str<'t>(
    t: &'t BTreeMap<String, Value>,
    key: &str,
    section: &str,
) -> Result<Option<&'t str>, SheriffError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| invalid(format!("{section}.{key} must be a string"))),
    }
}

fn get_usize_list(
    t: &BTreeMap<String, Value>,
    key: &str,
    section: &str,
) -> Result<Option<Vec<usize>>, SheriffError> {
    match t.get(key) {
        None => Ok(None),
        Some(Value::Array(a)) => a
            .iter()
            .map(|v| {
                let i = v
                    .as_i64()
                    .ok_or_else(|| invalid(format!("{section}.{key} must be integers")))?;
                usize::try_from(i)
                    .map_err(|_| invalid(format!("{section}.{key} entries must be >= 0, got {i}")))
            })
            .collect::<Result<Vec<usize>, SheriffError>>()
            .map(Some),
        Some(v) => Err(invalid(format!(
            "{section}.{key} must be an array, got {}",
            v.type_name()
        ))),
    }
}

fn get_pair(
    t: &BTreeMap<String, Value>,
    key: &str,
    section: &str,
) -> Result<Option<(f64, f64)>, SheriffError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => {
            let a = v
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| invalid(format!("{section}.{key} must be a [lo, hi] pair")))?;
            let lo = a[0]
                .as_f64()
                .ok_or_else(|| invalid(format!("{section}.{key}[0] must be a number")))?;
            let hi = a[1]
                .as_f64()
                .ok_or_else(|| invalid(format!("{section}.{key}[1] must be a number")))?;
            Ok(Some((lo, hi)))
        }
    }
}

// -------------------------------------------------------- section parsers

fn parse_topology(v: &Value) -> Result<TopologySpec, SheriffError> {
    let t = want_table(v, "topology")?;
    let kind = get_str(t, "kind", "topology")?
        .ok_or_else(|| invalid("topology.kind is required".into()))?;
    let spec = match kind {
        "fat_tree" | "fattree" => {
            check_keys(t, &["kind", "pods", "hosts_per_rack"], "topology")?;
            TopologySpec::FatTree {
                pods: get_usize(t, "pods", "topology")?
                    .ok_or_else(|| invalid("topology.pods is required for fat_tree".into()))?,
                hosts_per_rack: get_usize(t, "hosts_per_rack", "topology")?,
            }
        }
        "bcube" => {
            check_keys(t, &["kind", "n"], "topology")?;
            TopologySpec::BCube {
                n: get_usize(t, "n", "topology")?
                    .ok_or_else(|| invalid("topology.n is required for bcube".into()))?,
            }
        }
        "dcell" => {
            check_keys(t, &["kind", "n", "k"], "topology")?;
            TopologySpec::DCell {
                n: get_usize(t, "n", "topology")?
                    .ok_or_else(|| invalid("topology.n is required for dcell".into()))?,
                k: get_usize(t, "k", "topology")?.unwrap_or(1),
            }
        }
        "vl2" => {
            check_keys(t, &["kind", "d_a", "d_i"], "topology")?;
            TopologySpec::Vl2 {
                d_a: get_usize(t, "d_a", "topology")?
                    .ok_or_else(|| invalid("topology.d_a is required for vl2".into()))?,
                d_i: get_usize(t, "d_i", "topology")?
                    .ok_or_else(|| invalid("topology.d_i is required for vl2".into()))?,
            }
        }
        other => {
            return Err(invalid(format!(
                "unknown topology.kind {other:?} (fat_tree, bcube, dcell, vl2)"
            )))
        }
    };
    spec.validate()?;
    Ok(spec)
}

fn parse_cluster(v: &Value) -> Result<ClusterConfig, SheriffError> {
    let t = want_table(v, "cluster")?;
    if t.contains_key("seed") {
        return Err(invalid(
            "cluster.seed is not allowed: the sweep's `seeds` list drives the RNG".into(),
        ));
    }
    check_keys(
        t,
        &[
            "vms_per_host",
            "vm_capacity",
            "vm_value",
            "delay_sensitive_fraction",
            "dependency_degree",
            "workload_len",
            "skew",
        ],
        "cluster",
    )?;
    let mut cfg = ClusterConfig::default();
    if let Some(x) = get_f64(t, "vms_per_host", "cluster")? {
        cfg.vms_per_host = x;
    }
    if let Some(p) = get_pair(t, "vm_capacity", "cluster")? {
        cfg.vm_capacity_range = p;
    }
    if let Some(p) = get_pair(t, "vm_value", "cluster")? {
        cfg.vm_value_range = p;
    }
    if let Some(x) = get_f64(t, "delay_sensitive_fraction", "cluster")? {
        cfg.delay_sensitive_fraction = x;
    }
    if let Some(x) = get_f64(t, "dependency_degree", "cluster")? {
        cfg.dependency_degree = x;
    }
    if let Some(x) = get_usize(t, "workload_len", "cluster")? {
        cfg.workload_len = x;
    }
    if let Some(x) = get_f64(t, "skew", "cluster")? {
        cfg.skew = x;
    }
    Ok(cfg)
}

fn parse_predictor(v: &Value) -> Result<PredictorKind, SheriffError> {
    let t = want_table(v, "workload.predictor")?;
    check_keys(t, &["kind", "alpha", "beta"], "workload.predictor")?;
    match get_str(t, "kind", "workload.predictor")? {
        Some("holt") | None => {
            let PredictorKind::Holt { alpha, beta } = PredictorKind::default() else {
                unreachable!("default predictor is Holt");
            };
            Ok(PredictorKind::Holt {
                alpha: get_f64(t, "alpha", "workload.predictor")?.unwrap_or(alpha),
                beta: get_f64(t, "beta", "workload.predictor")?.unwrap_or(beta),
            })
        }
        Some("last_value") => Ok(PredictorKind::LastValue),
        Some(other) => Err(invalid(format!(
            "unknown predictor.kind {other:?} (holt, last_value)"
        ))),
    }
}

fn parse_surge(v: &Value) -> Result<SurgeSpec, SheriffError> {
    let t = want_table(v, "surge")?;
    check_keys(t, &["start", "duration", "factor", "fraction"], "surge")?;
    Ok(SurgeSpec {
        start: get_usize(t, "start", "surge")?
            .ok_or_else(|| invalid("surge.start is required".into()))?,
        duration: get_usize(t, "duration", "surge")?
            .ok_or_else(|| invalid("surge.duration is required".into()))?,
        factor: get_f64(t, "factor", "surge")?
            .ok_or_else(|| invalid("surge.factor is required".into()))?,
        fraction: get_f64(t, "fraction", "surge")?.unwrap_or(1.0),
    })
}

fn parse_workload(v: &Value) -> Result<WorkloadSpec, SheriffError> {
    let t = want_table(v, "workload")?;
    check_keys(t, &["alert_fraction", "predictor", "surge"], "workload")?;
    let mut spec = WorkloadSpec::default();
    if let Some(x) = get_f64(t, "alert_fraction", "workload")? {
        spec.alert_fraction = x;
    }
    if let Some(p) = t.get("predictor") {
        spec.predictor = parse_predictor(p)?;
    }
    if let Some(s) = t.get("surge") {
        let arr = s
            .as_array()
            .ok_or_else(|| invalid("workload.surge must be an array of tables".into()))?;
        spec.surges = arr.iter().map(parse_surge).collect::<Result<_, _>>()?;
    }
    Ok(spec)
}

fn parse_runtime(v: &Value) -> Result<RuntimeSpec, SheriffError> {
    let t = want_table(v, "runtime")?;
    let kind =
        get_str(t, "kind", "runtime")?.ok_or_else(|| invalid("runtime.kind is required".into()))?;
    match kind {
        "centralized" => {
            check_keys(t, &["kind", "max_rounds"], "runtime")?;
            Ok(RuntimeSpec::Centralized {
                max_rounds: get_usize(t, "max_rounds", "runtime")?.unwrap_or(3),
            })
        }
        "distributed" => {
            check_keys(t, &["kind", "max_retry"], "runtime")?;
            Ok(RuntimeSpec::Distributed {
                max_retry: get_usize(t, "max_retry", "runtime")?.unwrap_or(3),
            })
        }
        "sharded" => {
            check_keys(t, &["kind"], "runtime")?;
            Ok(RuntimeSpec::Sharded)
        }
        "fabric" => {
            check_keys(
                t,
                &[
                    "kind",
                    "max_retry",
                    "transfer_bandwidth",
                    "transfer_max_concurrent",
                    "transfer_route_strategy",
                    "transfer_reroute_threshold",
                    "transfer_bytes_per_capacity",
                    "transfer_k_paths",
                    "transfer_dirty_rate",
                    "transfer_stall_budget",
                    "transfer_max_attempts",
                ],
                "runtime",
            )?;
            Ok(RuntimeSpec::Fabric {
                max_retry: get_usize(t, "max_retry", "runtime")?.unwrap_or(3),
                transfer: parse_transfer_model(t)?,
            })
        }
        other => Err(invalid(format!(
            "unknown runtime.kind {other:?} (centralized, distributed, sharded, fabric)"
        ))),
    }
}

/// The fabric runtime's optional `transfer_*` keys. Present ⇒ the
/// transfer model is on; absent keys fall back to the scheduler's
/// defaults.
fn parse_transfer_model(
    t: &BTreeMap<String, Value>,
) -> Result<Option<TransferModelSpec>, SheriffError> {
    let any = t.keys().any(|k| k.starts_with("transfer_"));
    if !any {
        return Ok(None);
    }
    let mut spec = TransferModelSpec::default();
    if let Some(bw) = get_f64(t, "transfer_bandwidth", "runtime")? {
        if bw.is_nan() || bw <= 0.0 {
            return Err(invalid(format!(
                "runtime.transfer_bandwidth must be positive, got {bw}"
            )));
        }
        spec.bandwidth = bw;
    }
    if let Some(cap) = get_usize(t, "transfer_max_concurrent", "runtime")? {
        spec.max_concurrent = cap;
    }
    if let Some(s) = get_str(t, "transfer_route_strategy", "runtime")? {
        spec.route_strategy = match s {
            "shortest" => sheriff_transfer::RouteStrategy::Shortest,
            "least_loaded" => sheriff_transfer::RouteStrategy::LeastLoaded,
            other => {
                return Err(invalid(format!(
                    "unknown runtime.transfer_route_strategy {other:?} (shortest, least_loaded)"
                )))
            }
        };
    }
    if let Some(thr) = get_f64(t, "transfer_reroute_threshold", "runtime")? {
        if !(0.0..=1.0).contains(&thr) {
            return Err(invalid(format!(
                "runtime.transfer_reroute_threshold must be in [0, 1], got {thr}"
            )));
        }
        spec.reroute_threshold = thr;
    }
    if let Some(bpc) = get_f64(t, "transfer_bytes_per_capacity", "runtime")? {
        if bpc.is_nan() || bpc <= 0.0 {
            return Err(invalid(format!(
                "runtime.transfer_bytes_per_capacity must be positive, got {bpc}"
            )));
        }
        spec.bytes_per_capacity = bpc;
    }
    if let Some(k) = get_usize(t, "transfer_k_paths", "runtime")? {
        if k == 0 {
            return Err(invalid(
                "runtime.transfer_k_paths must be at least 1".into(),
            ));
        }
        spec.k_paths = k;
    }
    if let Some(d) = get_f64(t, "transfer_dirty_rate", "runtime")? {
        if !(0.0..=1.0).contains(&d) {
            return Err(invalid(format!(
                "runtime.transfer_dirty_rate must be in [0, 1], got {d}"
            )));
        }
        spec.dirty_rate = d;
    }
    if let Some(b) = get_u64(t, "transfer_stall_budget", "runtime")? {
        if b == 0 {
            return Err(invalid(
                "runtime.transfer_stall_budget must be at least 1".into(),
            ));
        }
        spec.stall_budget = b;
    }
    if let Some(a) = get_u64(t, "transfer_max_attempts", "runtime")? {
        if a == 0 {
            return Err(invalid(
                "runtime.transfer_max_attempts must be at least 1".into(),
            ));
        }
        spec.max_attempts = u32::try_from(a).unwrap_or(u32::MAX);
    }
    Ok(Some(spec))
}

fn parse_channel(
    t: &BTreeMap<String, Value>,
    section: &str,
) -> Result<ChannelFaults, SheriffError> {
    check_keys(
        t,
        &[
            "round",
            "drop",
            "duplicate",
            "reorder",
            "delay_min",
            "delay_max",
        ],
        section,
    )?;
    let mut ch = ChannelFaults::reliable();
    if let Some(x) = get_f64(t, "drop", section)? {
        ch.drop = x;
    }
    if let Some(x) = get_f64(t, "duplicate", section)? {
        ch.duplicate = x;
    }
    if let Some(x) = get_f64(t, "reorder", section)? {
        ch.reorder = x;
    }
    if let Some(x) = get_u64(t, "delay_min", section)? {
        ch.delay_min = x;
    }
    if let Some(x) = get_u64(t, "delay_max", section)? {
        ch.delay_max = x;
    }
    ch.validate()?;
    Ok(ch)
}

fn parse_sim(v: &Value) -> Result<SimConfig, SheriffError> {
    let t = want_table(v, "sim")?;
    check_keys(
        t,
        &[
            "c_r",
            "delta",
            "eta",
            "c_d",
            "vm_capacity_max",
            "bandwidth_threshold",
            "alert_threshold",
            "alpha",
            "beta",
            "period_secs",
            "load_balance_weight",
            "region_hops",
            "reroute_paths",
            "channel",
        ],
        "sim",
    )?;
    let mut cfg = SimConfig::paper();
    {
        let fields: [(&str, &mut f64); 11] = [
            ("c_r", &mut cfg.c_r),
            ("delta", &mut cfg.delta),
            ("eta", &mut cfg.eta),
            ("c_d", &mut cfg.c_d),
            ("vm_capacity_max", &mut cfg.vm_capacity_max),
            ("bandwidth_threshold", &mut cfg.bandwidth_threshold),
            ("alert_threshold", &mut cfg.alert_threshold),
            ("alpha", &mut cfg.alpha),
            ("beta", &mut cfg.beta),
            ("period_secs", &mut cfg.period_secs),
            ("load_balance_weight", &mut cfg.load_balance_weight),
        ];
        for (key, slot) in fields {
            if let Some(x) = get_f64(t, key, "sim")? {
                *slot = x;
            }
        }
    }
    if let Some(x) = get_usize(t, "region_hops", "sim")? {
        cfg.region_hops = x;
    }
    if let Some(x) = get_usize(t, "reroute_paths", "sim")? {
        cfg.reroute_paths = x;
    }
    if let Some(ch) = t.get("channel") {
        cfg.channel = parse_channel(want_table(ch, "sim.channel")?, "sim.channel")?;
    }
    Ok(cfg)
}

fn parse_fault(v: &Value) -> Result<FaultEvent, SheriffError> {
    let t = want_table(v, "fault")?;
    check_keys(
        t,
        &[
            "round",
            "action",
            "link",
            "host",
            "rack",
            "crash_at",
            "recover_at",
            "fail_at",
            "restore_at",
            "name",
            "racks",
            "start_at",
            "heal_at",
        ],
        "fault",
    )?;
    let round =
        get_usize(t, "round", "fault")?.ok_or_else(|| invalid("fault.round is required".into()))?;
    let action =
        get_str(t, "action", "fault")?.ok_or_else(|| invalid("fault.action is required".into()))?;
    let need = |key: &str| -> Result<usize, SheriffError> {
        get_usize(t, key, "fault")?
            .ok_or_else(|| invalid(format!("fault.{key} is required for action {action:?}")))
    };
    let action = match action {
        "fail_link" => FaultAction::FailLink {
            link: need("link")?,
            fail_at: get_u64(t, "fail_at", "fault")?,
            restore_at: get_u64(t, "restore_at", "fault")?,
        },
        "restore_link" => FaultAction::RestoreLink {
            link: need("link")?,
        },
        "fail_host" => FaultAction::FailHost {
            host: need("host")?,
        },
        "restore_host" => FaultAction::RestoreHost {
            host: need("host")?,
        },
        "fail_rack" => FaultAction::FailRack {
            rack: need("rack")?,
        },
        "restore_rack" => FaultAction::RestoreRack {
            rack: need("rack")?,
        },
        "crash_shim" => FaultAction::CrashShim {
            rack: need("rack")?,
            crash_at: get_u64(t, "crash_at", "fault")?,
            recover_at: get_u64(t, "recover_at", "fault")?,
        },
        "recover_shim" => FaultAction::RecoverShim {
            rack: need("rack")?,
        },
        "partition" => {
            let name = get_str(t, "name", "fault")?
                .ok_or_else(|| invalid("fault.name is required for action \"partition\"".into()))?
                .to_owned();
            let racks = get_usize_list(t, "racks", "fault")?.ok_or_else(|| {
                invalid("fault.racks is required for action \"partition\"".into())
            })?;
            if racks.is_empty() {
                return Err(invalid("fault.racks must not be empty".into()));
            }
            FaultAction::Partition {
                name,
                racks,
                start_at: get_u64(t, "start_at", "fault")?.unwrap_or(0),
                heal_at: get_u64(t, "heal_at", "fault")?,
            }
        }
        "heal" => FaultAction::HealPartition {
            name: get_str(t, "name", "fault")?
                .ok_or_else(|| invalid("fault.name is required for action \"heal\"".into()))?
                .to_owned(),
            heal_at: get_u64(t, "heal_at", "fault")?
                .ok_or_else(|| invalid("fault.heal_at is required for action \"heal\"".into()))?,
        },
        other => {
            return Err(invalid(format!(
                "unknown fault.action {other:?} (fail_link, restore_link, fail_host, \
                 restore_host, fail_rack, restore_rack, crash_shim, recover_shim, \
                 partition, heal)"
            )))
        }
    };
    if !matches!(action, FaultAction::CrashShim { .. })
        && (t.contains_key("crash_at") || t.contains_key("recover_at"))
    {
        return Err(invalid(
            "fault.crash_at / fault.recover_at only apply to action \"crash_shim\"".into(),
        ));
    }
    if !matches!(action, FaultAction::FailLink { .. })
        && (t.contains_key("fail_at") || t.contains_key("restore_at"))
    {
        return Err(invalid(
            "fault.fail_at / fault.restore_at only apply to action \"fail_link\"".into(),
        ));
    }
    if let FaultAction::FailLink {
        fail_at,
        restore_at: Some(r),
        ..
    } = &action
    {
        if *r <= fail_at.unwrap_or(0) {
            return Err(invalid(format!(
                "fault.restore_at {r} must be after fail_at {}",
                fail_at.unwrap_or(0)
            )));
        }
    }
    if !matches!(
        action,
        FaultAction::Partition { .. } | FaultAction::HealPartition { .. }
    ) && (t.contains_key("name")
        || t.contains_key("racks")
        || t.contains_key("start_at")
        || t.contains_key("heal_at"))
    {
        return Err(invalid(
            "fault.name / fault.racks / fault.start_at / fault.heal_at only apply to \
             actions \"partition\" and \"heal\""
                .into(),
        ));
    }
    if let FaultAction::Partition {
        start_at,
        heal_at: Some(h),
        ..
    } = &action
    {
        if *h <= *start_at {
            return Err(invalid(format!(
                "fault.heal_at {h} must be after start_at {start_at}"
            )));
        }
    }
    Ok(FaultEvent { round, action })
}

fn parse_seeds(v: &Value) -> Result<Vec<u64>, SheriffError> {
    match v {
        Value::Array(a) => a
            .iter()
            .map(|x| {
                x.as_i64()
                    .and_then(|i| u64::try_from(i).ok())
                    .ok_or_else(|| invalid("seeds entries must be non-negative integers".into()))
            })
            .collect(),
        Value::Table(t) => {
            check_keys(t, &["base", "count"], "seeds")?;
            let base = get_u64(t, "base", "seeds")?.unwrap_or(1);
            let count = get_u64(t, "count", "seeds")?
                .ok_or_else(|| invalid("seeds.count is required".into()))?;
            Ok((0..count).map(|i| base + i).collect())
        }
        other => Err(invalid(format!(
            "seeds must be an array or {{base, count}}, got {}",
            other.type_name()
        ))),
    }
}

impl ScenarioSpec {
    /// Parse and range-check a document already loaded into a [`Value`].
    pub fn from_value(v: &Value) -> Result<Self, SheriffError> {
        let t = want_table(v, "scenario")?;
        check_keys(
            t,
            &[
                "name",
                "title",
                "rounds",
                "seeds",
                "topology",
                "cluster",
                "workload",
                "runtime",
                "sim",
                "fault",
                "channel_phase",
            ],
            "scenario",
        )?;
        let name = get_str(t, "name", "scenario")?
            .ok_or_else(|| invalid("scenario.name is required".into()))?
            .to_string();
        let title = get_str(t, "title", "scenario")?
            .unwrap_or(&name)
            .to_string();
        let rounds = get_usize(t, "rounds", "scenario")?
            .ok_or_else(|| invalid("scenario.rounds is required".into()))?;
        let seeds = match t.get("seeds") {
            Some(v) => parse_seeds(v)?,
            None => vec![1],
        };
        let topologies = match t.get("topology") {
            Some(Value::Array(a)) => a.iter().map(parse_topology).collect::<Result<_, _>>()?,
            Some(single) => vec![parse_topology(single)?],
            None => return Err(invalid("a [topology] section is required".into())),
        };
        let cluster = match t.get("cluster") {
            Some(v) => parse_cluster(v)?,
            None => ClusterConfig::default(),
        };
        let workload = match t.get("workload") {
            Some(v) => parse_workload(v)?,
            None => WorkloadSpec::default(),
        };
        let runtime = match t.get("runtime") {
            Some(v) => parse_runtime(v)?,
            None => RuntimeSpec::default(),
        };
        let sim = match t.get("sim") {
            Some(v) => parse_sim(v)?,
            None => SimConfig::paper(),
        };
        let mut faults: Vec<FaultEvent> = match t.get("fault") {
            Some(v) => v
                .as_array()
                .ok_or_else(|| invalid("fault must be an array of tables ([[fault]])".into()))?
                .iter()
                .map(parse_fault)
                .collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        faults.sort_by_key(|f| f.round);
        let mut channel_phases: Vec<ChannelPhase> = match t.get("channel_phase") {
            Some(v) => v
                .as_array()
                .ok_or_else(|| {
                    invalid("channel_phase must be an array of tables ([[channel_phase]])".into())
                })?
                .iter()
                .map(|p| {
                    let pt = want_table(p, "channel_phase")?;
                    let round = get_usize(pt, "round", "channel_phase")?
                        .ok_or_else(|| invalid("channel_phase.round is required".into()))?;
                    Ok(ChannelPhase {
                        round,
                        faults: parse_channel(pt, "channel_phase")?,
                    })
                })
                .collect::<Result<_, SheriffError>>()?,
            None => Vec::new(),
        };
        channel_phases.sort_by_key(|p| p.round);
        Ok(Self {
            name,
            title,
            rounds,
            seeds,
            topologies,
            cluster,
            workload,
            runtime,
            sim,
            faults,
            channel_phases,
        })
    }

    /// Parse a TOML or JSON source string (dispatch on shape).
    pub fn parse_str(src: &str) -> Result<Self, SheriffError> {
        Self::from_value(&Value::parse(src)?)
    }

    /// Load and parse a scenario file.
    pub fn load(path: &Path) -> Result<Self, SheriffError> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| invalid(format!("cannot read {}: {e}", path.display())))?;
        Self::parse_str(&src).map_err(|e| invalid(format!("{}: {e}", path.display())))
    }

    /// Whether the scenario runs in trace mode (synthetic workloads and
    /// predicted alerts) rather than the Fig. 9–14 fraction protocol.
    pub fn trace_mode(&self) -> bool {
        self.cluster.workload_len > 0
    }

    /// Full semantic validation. Errors make the scenario unrunnable;
    /// the returned strings are *warnings* — legal but suspicious specs
    /// (`--check` treats them as errors).
    pub fn validate(&self) -> Result<Vec<String>, SheriffError> {
        if self.name.is_empty() {
            return Err(invalid("scenario.name must be non-empty".into()));
        }
        if self.rounds == 0 {
            return Err(invalid("scenario.rounds must be >= 1".into()));
        }
        if self.seeds.is_empty() {
            return Err(invalid(
                "the seed sweep must contain at least one seed".into(),
            ));
        }
        if self.topologies.is_empty() {
            return Err(invalid("at least one topology is required".into()));
        }
        for topo in &self.topologies {
            topo.validate()?;
        }
        self.cluster.validate()?;
        self.sim.validate()?;
        let f = self.workload.alert_fraction;
        if !f.is_finite() || !(0.0..=1.0).contains(&f) || f == 0.0 {
            return Err(invalid(format!(
                "workload.alert_fraction must be in (0, 1], got {f}"
            )));
        }
        if let PredictorKind::Holt { alpha, beta } = self.workload.predictor {
            for (name, v) in [("alpha", alpha), ("beta", beta)] {
                if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                    return Err(invalid(format!(
                        "predictor.{name} must be in [0, 1], got {v}"
                    )));
                }
            }
        }
        for s in &self.workload.surges {
            if s.duration == 0 {
                return Err(invalid("surge.duration must be >= 1".into()));
            }
            if !s.factor.is_finite() || s.factor <= 0.0 {
                return Err(invalid(format!(
                    "surge.factor must be finite and > 0, got {}",
                    s.factor
                )));
            }
            if !s.fraction.is_finite() || !(0.0..=1.0).contains(&s.fraction) {
                return Err(invalid(format!(
                    "surge.fraction must be in [0, 1], got {}",
                    s.fraction
                )));
            }
        }
        if let RuntimeSpec::Centralized { max_rounds: 0 } = self.runtime {
            return Err(invalid("runtime.max_rounds must be >= 1".into()));
        }
        for p in &self.channel_phases {
            p.faults.validate()?;
        }
        // per-topology structural checks for fault targets
        if !self.faults.is_empty() {
            for topo in &self.topologies {
                let dcn = topo.build();
                let (links, hosts, racks) = (
                    dcn.graph.edge_count(),
                    dcn.inventory.host_count(),
                    dcn.inventory.rack_count(),
                );
                for f in &self.faults {
                    let (kind, id, bound) = match &f.action {
                        FaultAction::FailLink { link, .. } | FaultAction::RestoreLink { link } => {
                            ("link", *link, links)
                        }
                        FaultAction::FailHost { host } | FaultAction::RestoreHost { host } => {
                            ("host", *host, hosts)
                        }
                        FaultAction::FailRack { rack }
                        | FaultAction::RestoreRack { rack }
                        | FaultAction::CrashShim { rack, .. }
                        | FaultAction::RecoverShim { rack } => ("rack", *rack, racks),
                        FaultAction::Partition { racks: members, .. } => {
                            match members.iter().find(|&&r| r >= racks) {
                                Some(&bad) => ("rack", bad, racks),
                                None => continue,
                            }
                        }
                        FaultAction::HealPartition { .. } => continue,
                    };
                    if id >= bound {
                        return Err(invalid(format!(
                            "fault {kind} {id} out of range for topology {} ({kind} count {bound})",
                            topo.label()
                        )));
                    }
                }
            }
        }

        // warnings: legal but probably unintended
        let mut warnings = Vec::new();
        let mut sorted = self.seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != self.seeds.len() {
            warnings.push("duplicate seeds in the sweep: repeated runs skew the aggregates".into());
        }
        for fevent in &self.faults {
            if fevent.round >= self.rounds {
                warnings.push(format!(
                    "fault at round {} never fires (rounds = {})",
                    fevent.round, self.rounds
                ));
            }
            if let FaultAction::Partition { name, heal_at, .. } = &fevent.action {
                if heal_at.is_none()
                    && !self.faults.iter().any(|g| {
                        matches!(&g.action, FaultAction::HealPartition { name: n, .. } if n == name)
                    })
                {
                    warnings.push(format!(
                        "partition {name:?} is never healed: it stands for the rest of the run"
                    ));
                }
                if !matches!(self.runtime, RuntimeSpec::Fabric { .. }) {
                    warnings.push(format!(
                        "partitions need virtual time: the {} runtime ignores them",
                        self.runtime.name()
                    ));
                }
            }
            if let FaultAction::HealPartition { name, .. } = &fevent.action {
                if !self.faults.iter().any(|g| {
                    matches!(&g.action, FaultAction::Partition { name: n, heal_at: None, .. }
                        if n == name)
                        && g.round < fevent.round
                }) {
                    warnings.push(format!(
                        "heal of partition {name:?} has no standing partition of that name \
                         in an earlier round"
                    ));
                }
            }
            if let FaultAction::CrashShim {
                crash_at,
                recover_at,
                ..
            } = fevent.action
            {
                if let Some(r) = recover_at {
                    if r <= crash_at.unwrap_or(0) {
                        return Err(invalid(format!(
                            "fault.recover_at {} must be after crash_at {}",
                            r,
                            crash_at.unwrap_or(0)
                        )));
                    }
                }
                if (crash_at.is_some() || recover_at.is_some())
                    && !matches!(self.runtime, RuntimeSpec::Fabric { .. })
                {
                    warnings.push(format!(
                        "crash_at/recover_at need virtual time: the {} runtime treats the \
                         crash as whole-round",
                        self.runtime.name()
                    ));
                }
            }
        }
        for p in &self.channel_phases {
            if p.round >= self.rounds {
                warnings.push(format!(
                    "channel_phase at round {} never applies (rounds = {})",
                    p.round, self.rounds
                ));
            }
        }
        if !matches!(self.runtime, RuntimeSpec::Fabric { .. }) {
            if !self.channel_phases.is_empty() {
                warnings.push(format!(
                    "channel_phase entries are ignored by the {} runtime (only fabric uses the channel)",
                    self.runtime.name()
                ));
            }
            if !self.sim.channel.is_reliable() {
                warnings.push(format!(
                    "sim.channel faults are ignored by the {} runtime (only fabric uses the channel)",
                    self.runtime.name()
                ));
            }
        }
        if !self.workload.surges.is_empty() && !self.trace_mode() {
            warnings.push(
                "surge overlays need trace mode: set cluster.workload_len > 0 or drop [[workload.surge]]"
                    .into(),
            );
        }
        if self.trace_mode() && self.cluster.workload_len < self.rounds + 1 {
            warnings.push(format!(
                "cluster.workload_len {} is shorter than rounds {} + 1: the trace clamps at its end",
                self.cluster.workload_len, self.rounds
            ));
        }
        Ok(warnings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
        name = "mini"
        rounds = 4
        seeds = [1, 2]

        [topology]
        kind = "fat_tree"
        pods = 4
    "#;

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let spec = ScenarioSpec::parse_str(MINIMAL).unwrap();
        assert_eq!(spec.name, "mini");
        assert_eq!(spec.title, "mini");
        assert_eq!(spec.rounds, 4);
        assert_eq!(spec.seeds, vec![1, 2]);
        assert_eq!(
            spec.topologies,
            vec![TopologySpec::FatTree {
                pods: 4,
                hosts_per_rack: None
            }]
        );
        assert_eq!(spec.runtime, RuntimeSpec::Distributed { max_retry: 3 });
        assert!(!spec.trace_mode());
        assert!(spec.validate().unwrap().is_empty());
    }

    #[test]
    fn full_spec_parses_every_section() {
        let spec = ScenarioSpec::parse_str(
            r#"
            name = "full"
            title = "everything"
            rounds = 6
            seeds = { base = 10, count = 3 }

            [[topology]]
            kind = "fat_tree"
            pods = 4

            [[topology]]
            kind = "bcube"
            n = 4

            [cluster]
            vms_per_host = 2.0
            vm_capacity = [5.0, 20.0]
            workload_len = 40
            skew = 3.0

            [workload]
            alert_fraction = 0.1
            predictor = { kind = "holt", alpha = 0.4, beta = 0.1 }

            [[workload.surge]]
            start = 2
            duration = 3
            factor = 1.8
            fraction = 0.5

            [runtime]
            kind = "fabric"
            max_retry = 2

            [sim]
            alert_threshold = 0.85
            region_hops = 2

            [sim.channel]
            drop = 0.05
            delay_max = 3

            [[fault]]
            round = 1
            action = "fail_link"
            link = 0

            [[fault]]
            round = 3
            action = "restore_link"
            link = 0

            [[channel_phase]]
            round = 2
            drop = 0.2
            delay_max = 4
            "#,
        )
        .unwrap();
        assert_eq!(spec.seeds, vec![10, 11, 12]);
        assert_eq!(spec.topologies.len(), 2);
        assert_eq!(spec.cluster.workload_len, 40);
        assert!(spec.trace_mode());
        assert_eq!(
            spec.workload.predictor,
            PredictorKind::Holt {
                alpha: 0.4,
                beta: 0.1
            }
        );
        assert_eq!(spec.workload.surges.len(), 1);
        assert_eq!(
            spec.runtime,
            RuntimeSpec::Fabric {
                max_retry: 2,
                transfer: None
            }
        );
        assert_eq!(spec.sim.alert_threshold, 0.85);
        assert_eq!(spec.sim.channel.drop, 0.05);
        assert_eq!(spec.faults.len(), 2);
        assert_eq!(spec.channel_phases[0].faults.drop, 0.2);
        let warnings = spec.validate().unwrap();
        assert!(warnings.is_empty(), "unexpected warnings: {warnings:?}");
    }

    #[test]
    fn json_spec_parses_too() {
        let spec = ScenarioSpec::parse_str(
            r#"{"name": "j", "rounds": 2, "seeds": [7],
                "topology": {"kind": "vl2", "d_a": 4, "d_i": 2},
                "runtime": {"kind": "sharded"}}"#,
        )
        .unwrap();
        assert_eq!(spec.topologies, vec![TopologySpec::Vl2 { d_a: 4, d_i: 2 }]);
        assert_eq!(spec.runtime, RuntimeSpec::Sharded);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let err = ScenarioSpec::parse_str(&format!("{MINIMAL}\ntypo_key = 3")).unwrap_err();
        assert!(err.to_string().contains("typo_key"), "{err}");
        let err = ScenarioSpec::parse_str(
            r#"
            name = "x"
            rounds = 1
            [topology]
            kind = "fat_tree"
            pods = 4
            extra = 1
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("extra"), "{err}");
    }

    #[test]
    fn cluster_seed_is_rejected() {
        let err = ScenarioSpec::parse_str(
            r#"
            name = "x"
            rounds = 1
            [topology]
            kind = "fat_tree"
            pods = 4
            [cluster]
            seed = 3
            "#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("seeds"), "{err}");
    }

    #[test]
    fn size_constraints_are_enforced() {
        for (kind, body) in [
            ("fat_tree odd pods", "kind = \"fat_tree\"\npods = 5"),
            ("bcube n 1", "kind = \"bcube\"\nn = 1"),
            ("vl2 odd d_a", "kind = \"vl2\"\nd_a = 5\nd_i = 2"),
        ] {
            let src = format!("name = \"x\"\nrounds = 1\n[topology]\n{body}\n");
            assert!(ScenarioSpec::parse_str(&src).is_err(), "{kind} accepted");
        }
    }

    #[test]
    fn fault_bounds_checked_per_topology() {
        let spec = ScenarioSpec::parse_str(
            r#"
            name = "x"
            rounds = 4
            [topology]
            kind = "fat_tree"
            pods = 4
            [[fault]]
            round = 0
            action = "fail_host"
            host = 100000
            "#,
        )
        .unwrap();
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn warnings_flag_suspicious_specs() {
        let spec = ScenarioSpec::parse_str(
            r#"
            name = "x"
            rounds = 2
            seeds = [1, 1]
            [topology]
            kind = "fat_tree"
            pods = 4
            [runtime]
            kind = "distributed"
            [[channel_phase]]
            round = 9
            drop = 0.5
            "#,
        )
        .unwrap();
        let warnings = spec.validate().unwrap();
        assert!(warnings.iter().any(|w| w.contains("duplicate seeds")));
        assert!(warnings.iter().any(|w| w.contains("never applies")));
        assert!(warnings
            .iter()
            .any(|w| w.contains("ignored by the distributed runtime")));
    }

    #[test]
    fn bad_probability_in_channel_phase_is_an_error() {
        let err = ScenarioSpec::parse_str(
            r#"
            name = "x"
            rounds = 2
            [topology]
            kind = "fat_tree"
            pods = 4
            [[channel_phase]]
            round = 0
            drop = 1.5
            "#,
        )
        .unwrap_err();
        assert!(
            matches!(err, SheriffError::InvalidProbability { .. }),
            "{err:?}"
        );
    }
}

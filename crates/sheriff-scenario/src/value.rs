//! A minimal self-describing value tree with hand-rolled TOML and JSON
//! readers.
//!
//! The workspace builds offline against vendored stand-ins, and the
//! vendored `serde_json` is a stub — so the scenario engine parses its
//! own input. Only the subset of TOML that scenario files need is
//! supported: comments, `[table]` / `[[array-of-tables]]` headers with
//! dotted paths, `key = value` pairs (bare or quoted keys, dotted
//! paths), strings with escapes, integers, floats, booleans, arrays
//! (single- or multi-line) and inline tables. JSON is full recursive
//! descent minus `null` (a scenario field is either present or absent).

use dcn_sim::SheriffError;
use std::collections::BTreeMap;

/// One node of a parsed scenario document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// An integer (TOML integer / JSON number without fraction).
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key → value table with stable (sorted) key order.
    Table(BTreeMap<String, Value>),
}

fn invalid(reason: String) -> SheriffError {
    SheriffError::Invalid { reason }
}

impl Value {
    /// A short name of the variant for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Borrow as a float; integers widen losslessly enough for configs.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Borrow as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a table.
    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// Look up a key in a table value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_table().and_then(|t| t.get(key))
    }

    /// Parse a document, dispatching on shape: a leading `{` means JSON,
    /// anything else is treated as TOML.
    pub fn parse(src: &str) -> Result<Value, SheriffError> {
        if src.trim_start().starts_with('{') {
            Value::from_json(src)
        } else {
            Value::from_toml(src)
        }
    }

    /// Parse a TOML document (the subset described in the module docs).
    pub fn from_toml(src: &str) -> Result<Value, SheriffError> {
        toml_parse(src)
    }

    /// Parse a JSON document.
    pub fn from_json(src: &str) -> Result<Value, SheriffError> {
        let mut p = Cursor::new(src);
        p.skip_ws();
        let v = p.json_value()?;
        p.skip_ws();
        if !p.at_end() {
            return Err(invalid(format!(
                "trailing content after JSON document at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------- cursor

/// Byte cursor over a document; shared by the JSON reader and the TOML
/// value reader.
struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Skip spaces, tabs, newlines *and* `#` comments — TOML's
    /// inter-token whitespace inside multi-line arrays.
    fn skip_ws_and_comments(&mut self) {
        loop {
            self.skip_ws();
            if self.peek() == Some(b'#') {
                while let Some(b) = self.peek() {
                    if b == b'\n' {
                        break;
                    }
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    /// The byte slice `start..end`, clamped to the document — keeps the
    /// cursor arithmetic free of panicking index ops (PANIC01).
    fn slice(&self, start: usize, end: usize) -> &'a [u8] {
        self.src.get(start..end.min(self.src.len())).unwrap_or(&[])
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), SheriffError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(invalid(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    /// Parse a quoted string starting at the opening `"`.
    fn quoted_string(&mut self) -> Result<String, SheriffError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(invalid("unterminated string".into())),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| invalid("bad \\u escape".into()))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| invalid("bad \\u code point".into()))?,
                        );
                    }
                    other => {
                        return Err(invalid(format!(
                            "unsupported escape \\{:?}",
                            other.map(|c| c as char)
                        )))
                    }
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // re-assemble a UTF-8 sequence: back up and decode
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = std::str::from_utf8(self.slice(start, start + width))
                        .map_err(|_| invalid("invalid UTF-8 in string".into()))?;
                    let ch = chunk
                        .chars()
                        .next()
                        .ok_or_else(|| invalid("invalid UTF-8 in string".into()))?;
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    /// Parse a number token (shared by TOML and JSON: optional sign,
    /// digits with `_` separators in TOML, optional fraction/exponent).
    fn number(&mut self) -> Result<Value, SheriffError> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'+' | b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'+' | b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let raw: String = std::str::from_utf8(self.slice(start, self.pos))
            .map_err(|_| invalid("invalid number".into()))?
            .chars()
            .filter(|&c| c != '_')
            .collect();
        if raw.is_empty() || raw == "+" || raw == "-" {
            return Err(invalid(format!("expected a number at byte {start}")));
        }
        if is_float {
            raw.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| invalid(format!("invalid float literal {raw:?}")))
        } else {
            raw.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| invalid(format!("invalid integer literal {raw:?}")))
        }
    }

    // ------------------------------------------------------------- JSON

    fn json_value(&mut self) -> Result<Value, SheriffError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.json_object(),
            Some(b'[') => self.json_array(),
            Some(b'"') => Ok(Value::Str(self.quoted_string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(_) => self.number(),
            None => Err(invalid("unexpected end of JSON document".into())),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, SheriffError> {
        if self
            .slice(self.pos, self.src.len())
            .starts_with(word.as_bytes())
        {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(invalid(format!("expected `{word}` at byte {}", self.pos)))
        }
    }

    fn json_object(&mut self) -> Result<Value, SheriffError> {
        self.expect_byte(b'{')?;
        let mut table = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Table(table));
        }
        loop {
            self.skip_ws();
            let key = self.quoted_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let v = self.json_value()?;
            if table.insert(key.clone(), v).is_some() {
                return Err(invalid(format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Table(table)),
                _ => return Err(invalid("expected ',' or '}' in object".into())),
            }
        }
    }

    fn json_array(&mut self) -> Result<Value, SheriffError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.json_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(invalid("expected ',' or ']' in array".into())),
            }
        }
    }

    // ------------------------------------------------------------- TOML

    /// A TOML value: string, number, bool, array, or inline table.
    fn toml_value(&mut self) -> Result<Value, SheriffError> {
        self.skip_ws_and_comments();
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.quoted_string()?)),
            Some(b'[') => {
                self.expect_byte(b'[')?;
                let mut items = Vec::new();
                loop {
                    self.skip_ws_and_comments();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    items.push(self.toml_value()?);
                    self.skip_ws_and_comments();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(invalid("expected ',' or ']' in array".into())),
                    }
                }
            }
            Some(b'{') => {
                self.expect_byte(b'{')?;
                let mut table = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Table(table));
                }
                loop {
                    self.skip_ws();
                    let key = self.toml_key()?;
                    self.skip_ws();
                    self.expect_byte(b'=')?;
                    let v = self.toml_value()?;
                    if table.insert(key.clone(), v).is_some() {
                        return Err(invalid(format!("duplicate key {key:?}")));
                    }
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Value::Table(table)),
                        _ => return Err(invalid("expected ',' or '}' in inline table".into())),
                    }
                }
            }
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(_) => self.number(),
            None => Err(invalid("expected a TOML value".into())),
        }
    }

    /// One key segment: bare (`[A-Za-z0-9_-]+`) or quoted.
    fn toml_key(&mut self) -> Result<String, SheriffError> {
        if self.peek() == Some(b'"') {
            return self.quoted_string();
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(invalid(format!("expected a key at byte {start}")));
        }
        Ok(std::str::from_utf8(self.slice(start, self.pos))
            .map_err(|_| invalid("invalid key".into()))?
            .to_string())
    }

    /// A dotted key path (`a.b."c d"`).
    fn toml_key_path(&mut self) -> Result<Vec<String>, SheriffError> {
        let mut path = vec![self.toml_key()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(b'.') {
                self.pos += 1;
                self.skip_ws();
                path.push(self.toml_key()?);
            } else {
                return Ok(path);
            }
        }
    }
}

/// Walk/create the table at `path` under `root`, descending into the
/// *last element* of any array-of-tables met on the way (TOML's rule).
fn descend<'t>(
    root: &'t mut BTreeMap<String, Value>,
    path: &[String],
) -> Result<&'t mut BTreeMap<String, Value>, SheriffError> {
    let mut cur = root;
    for seg in path {
        let entry = cur
            .entry(seg.clone())
            .or_insert_with(|| Value::Table(BTreeMap::new()));
        cur = match entry {
            Value::Table(t) => t,
            Value::Array(a) => match a.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return Err(invalid(format!("key {seg:?} is not a table"))),
            },
            other => {
                return Err(invalid(format!(
                    "key {seg:?} already holds a {}",
                    other.type_name()
                )))
            }
        };
    }
    Ok(cur)
}

fn toml_parse(src: &str) -> Result<Value, SheriffError> {
    let mut root: BTreeMap<String, Value> = BTreeMap::new();
    // path of the currently open [table] / [[array-of-tables]] header
    let mut open: Vec<String> = Vec::new();

    let mut cursor = Cursor::new(src);
    loop {
        cursor.skip_ws_and_comments();
        if cursor.at_end() {
            break;
        }
        if cursor.peek() == Some(b'[') {
            cursor.pos += 1;
            let is_array = cursor.peek() == Some(b'[');
            if is_array {
                cursor.pos += 1;
            }
            cursor.skip_ws();
            let path = cursor.toml_key_path()?;
            cursor.skip_ws();
            cursor.expect_byte(b']')?;
            if is_array {
                cursor.expect_byte(b']')?;
            }
            if is_array {
                let Some((leaf, parents)) = path.split_last() else {
                    return Err(invalid("empty key path".to_string()));
                };
                let parent = descend(&mut root, parents)?;
                let slot = parent
                    .entry(leaf.clone())
                    .or_insert_with(|| Value::Array(Vec::new()));
                match slot {
                    Value::Array(a) => a.push(Value::Table(BTreeMap::new())),
                    other => {
                        return Err(invalid(format!(
                            "[[{leaf}]] conflicts with existing {}",
                            other.type_name()
                        )))
                    }
                }
            } else {
                // materialise the table so empty sections still exist
                descend(&mut root, &path)?;
            }
            open = path;
            continue;
        }
        // key = value
        let path = cursor.toml_key_path()?;
        cursor.skip_ws();
        cursor.expect_byte(b'=')?;
        let value = cursor.toml_value()?;
        let Some((leaf, parents)) = path.split_last() else {
            return Err(invalid("empty key path".to_string()));
        };
        let mut full = open.clone();
        full.extend_from_slice(parents);
        let table = descend(&mut root, &full)?;
        let leaf = leaf.clone();
        if table.insert(leaf.clone(), value).is_some() {
            return Err(invalid(format!("duplicate key {leaf:?}")));
        }
    }
    Ok(Value::Table(root))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_sections() {
        let v = Value::from_toml(
            r#"
            # a comment
            name = "fig9"
            rounds = 24
            fraction = 0.05
            enabled = true

            [cluster]
            vms_per_host = 2.5
            seed-less = "yes"
            "#,
        )
        .unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("fig9"));
        assert_eq!(v.get("rounds").unwrap().as_i64(), Some(24));
        assert_eq!(v.get("fraction").unwrap().as_f64(), Some(0.05));
        assert_eq!(v.get("enabled").unwrap().as_bool(), Some(true));
        let cluster = v.get("cluster").unwrap();
        assert_eq!(cluster.get("vms_per_host").unwrap().as_f64(), Some(2.5));
        assert_eq!(cluster.get("seed-less").unwrap().as_str(), Some("yes"));
    }

    #[test]
    fn parses_arrays_inline_tables_and_multiline() {
        let v = Value::from_toml(
            r#"
            seeds = [1, 2, 3]
            pair = { a = 1, b = "x" }
            grid = [
                [1, 2],  # inner comment
                [3, 4],
            ]
            "#,
        )
        .unwrap();
        let seeds: Vec<i64> = v
            .get("seeds")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x.as_i64().unwrap())
            .collect();
        assert_eq!(seeds, vec![1, 2, 3]);
        assert_eq!(v.get("pair").unwrap().get("a").unwrap().as_i64(), Some(1));
        let grid = v.get("grid").unwrap().as_array().unwrap();
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[1].as_array().unwrap()[0].as_i64(), Some(3));
    }

    #[test]
    fn parses_array_of_tables() {
        let v = Value::from_toml(
            r#"
            [[fault]]
            round = 3
            action = "fail_link"

            [[fault]]
            round = 7
            action = "restore_link"

            [fault_meta]
            note = "two faults"
            "#,
        )
        .unwrap();
        let faults = v.get("fault").unwrap().as_array().unwrap();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].get("round").unwrap().as_i64(), Some(3));
        assert_eq!(
            faults[1].get("action").unwrap().as_str(),
            Some("restore_link")
        );
        assert!(v.get("fault_meta").is_some());
    }

    #[test]
    fn nested_array_of_tables_descends_into_last() {
        let v = Value::from_toml(
            r#"
            [[workload.surge]]
            start = 5
            [[workload.surge]]
            start = 9
            factor = 1.5
            "#,
        )
        .unwrap();
        let surges = v
            .get("workload")
            .unwrap()
            .get("surge")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(surges.len(), 2);
        assert_eq!(surges[1].get("factor").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn dotted_keys_and_subtable_headers() {
        let v = Value::from_toml(
            r#"
            [sim]
            alert_threshold = 0.9
            channel.drop = 0.1

            [sim.channel]
            delay_max = 3
            "#,
        )
        .unwrap();
        let ch = v.get("sim").unwrap().get("channel").unwrap();
        assert_eq!(ch.get("drop").unwrap().as_f64(), Some(0.1));
        assert_eq!(ch.get("delay_max").unwrap().as_i64(), Some(3));
    }

    #[test]
    fn rejects_duplicates_and_garbage() {
        assert!(Value::from_toml("a = 1\na = 2").is_err());
        assert!(Value::from_toml("a = ").is_err());
        assert!(Value::from_toml("= 3").is_err());
        assert!(Value::from_toml("a = [1, 2").is_err());
    }

    #[test]
    fn negative_numbers_and_underscores() {
        let v = Value::from_toml("a = -3\nb = 1_000\nc = -0.5\nd = 1e3").unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(-3));
        assert_eq!(v.get("b").unwrap().as_i64(), Some(1000));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(-0.5));
        assert_eq!(v.get("d").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn json_documents_roundtrip_the_same_tree() {
        let toml = Value::from_toml(
            r#"
            name = "x"
            rounds = 2
            [runtime]
            kind = "distributed"
            "#,
        )
        .unwrap();
        let json =
            Value::parse(r#"{"name": "x", "rounds": 2, "runtime": {"kind": "distributed"}}"#)
                .unwrap();
        assert_eq!(toml, json);
    }

    #[test]
    fn json_arrays_nested() {
        let v =
            Value::from_json(r#"{"rows": [[0, 1.5], [1, -2e1]], "ok": [true, false]}"#).unwrap();
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[1].as_array().unwrap()[1].as_f64(), Some(-20.0));
        assert_eq!(v.get("ok").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn json_string_escapes() {
        let v = Value::from_json(r#"{"s": "a\"b\ncA"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\ncA"));
    }

    #[test]
    fn json_rejects_trailing_garbage() {
        assert!(Value::from_json(r#"{"a": 1} extra"#).is_err());
        assert!(Value::from_json(r#"{"a": }"#).is_err());
    }

    #[test]
    fn unicode_in_toml_strings() {
        let v = Value::from_toml("title = \"Sheriff — ICPP'15 ✓\"").unwrap();
        assert_eq!(
            v.get("title").unwrap().as_str(),
            Some("Sheriff — ICPP'15 ✓")
        );
    }
}

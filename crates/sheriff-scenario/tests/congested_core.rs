//! Acceptance for the migration transfer model through the scenario
//! engine: `scenarios/congested_core.toml` must show real contention —
//! a p95 pre-copy completion strictly above the uncontended baseline,
//! at least one QCN-driven reroute, and bottleneck serialization.

use sheriff_scenario::{aggregate, RuntimeSpec, ScenarioRunner, ScenarioSpec, Stat};

fn load_spec() -> ScenarioSpec {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/congested_core.toml"
    );
    let src = std::fs::read_to_string(path).expect("scenario file exists");
    ScenarioSpec::parse_str(&src).expect("scenario parses")
}

fn metric(report: &sheriff_scenario::ScenarioReport, key: &str) -> Stat {
    report
        .metrics
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("metric {key} missing"))
        .1
}

#[test]
fn congested_core_spec_parses_with_transfer_model() {
    let spec = load_spec();
    let RuntimeSpec::Fabric {
        max_retry,
        transfer: Some(t),
    } = spec.runtime
    else {
        panic!("congested_core must run the fabric runtime with transfers on");
    };
    assert_eq!(max_retry, 3);
    assert_eq!(t.bandwidth, 1.0);
    assert_eq!(t.max_concurrent, 3);
    assert_eq!(t.reroute_threshold, 0.02);
    assert_eq!(t.bytes_per_capacity, 16.0);
    assert_eq!(t.k_paths, 4);
    assert!(spec.validate().expect("valid").is_empty());
}

#[test]
fn congested_core_shows_contention_against_uncontended_baseline() {
    let spec = load_spec();

    // uncontended twin: same workload and routes, but effectively
    // infinite migration bandwidth and rerouting disabled
    let mut uncontended = spec.clone();
    let RuntimeSpec::Fabric {
        transfer: Some(t), ..
    } = &mut uncontended.runtime
    else {
        panic!("fabric runtime expected");
    };
    t.bandwidth = 1e9;
    t.reroute_threshold = 1.0;

    let congested_runs = ScenarioRunner::new(spec.clone()).run().expect("runs");
    let congested = aggregate(&spec, &congested_runs);
    let baseline_runs = ScenarioRunner::new(uncontended.clone())
        .run()
        .expect("baseline runs");
    let baseline = aggregate(&uncontended, &baseline_runs);

    let started = metric(&congested, "transfers_started_total");
    let completed = metric(&congested, "transfers_completed_total");
    assert!(started.mean > 0.0, "pre-copies must be admitted");
    assert!(completed.mean > 0.0, "pre-copies must stream to completion");

    let p95 = metric(&congested, "transfer_p95_completion");
    let p95_base = metric(&baseline, "transfer_p95_completion");
    assert!(
        p95.mean > p95_base.mean,
        "contention must stretch p95 completion: congested {} vs uncontended {}",
        p95.mean,
        p95_base.mean
    );

    let reroutes = metric(&congested, "transfer_reroutes_total");
    assert!(
        reroutes.mean >= 1.0,
        "QCN pressure on the shared core must force at least one reroute, got {}",
        reroutes.mean
    );

    let serialized = metric(&congested, "bottleneck_serialization_rounds");
    assert!(
        serialized.mean >= 1.0,
        "shared links must carry concurrent pre-copies in some round"
    );

    // invariants survive the congestion
    assert_eq!(metric(&congested, "audit_violations_total").mean, 0.0);
}

//! Acceptance for fault-tolerant migration transfers through the
//! scenario engine: `scenarios/flaky_spine.toml` must show real
//! recovery — streams stalled by the mid-round spine outage, at least
//! one checkpointed resume that saved bytes versus a restart from
//! zero, and a clean invariant audit throughout.

use sheriff_scenario::{aggregate, RuntimeSpec, ScenarioRunner, ScenarioSpec, Stat};

fn load_spec() -> ScenarioSpec {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/flaky_spine.toml"
    );
    let src = std::fs::read_to_string(path).expect("scenario file exists");
    ScenarioSpec::parse_str(&src).expect("scenario parses")
}

fn metric(report: &sheriff_scenario::ScenarioReport, key: &str) -> Stat {
    report
        .metrics
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("metric {key} missing"))
        .1
}

#[test]
fn flaky_spine_spec_parses_with_recovery_knobs() {
    let spec = load_spec();
    let RuntimeSpec::Fabric {
        max_retry,
        transfer: Some(t),
    } = spec.runtime
    else {
        panic!("flaky_spine must run the fabric runtime with transfers on");
    };
    assert_eq!(max_retry, 3);
    assert_eq!(t.k_paths, 1, "a single candidate guarantees stalls");
    assert_eq!(t.dirty_rate, 0.25);
    assert_eq!(t.stall_budget, 8);
    assert_eq!(t.max_attempts, 4);
    assert!(spec.validate().expect("valid").is_empty());
}

#[test]
fn flaky_spine_stalls_then_resumes_from_checkpoint() {
    let spec = load_spec();
    let runs = ScenarioRunner::new(spec.clone()).run().expect("runs");
    let report = aggregate(&spec, &runs);

    let started = metric(&report, "transfers_started_total");
    let completed = metric(&report, "transfers_completed_total");
    assert!(started.mean > 0.0, "pre-copies must be admitted");
    assert!(completed.mean > 0.0, "pre-copies must stream to completion");

    let stalls = metric(&report, "transfer_stalls_total");
    assert!(
        stalls.mean >= 1.0,
        "the spine outage must stall at least one mid-copy stream, got {}",
        stalls.mean
    );

    let retries = metric(&report, "transfer_retries_total");
    assert!(
        retries.mean >= 1.0,
        "stalled streams must attempt backoff retries during the outage, got {}",
        retries.mean
    );

    let saved = metric(&report, "resumed_bytes_saved_total");
    assert!(
        saved.mean > 0.0,
        "checkpointed resumes must save bytes versus restart-from-zero, got {}",
        saved.mean
    );

    // the outage heals within each round, so nothing exhausts its
    // retry budget: every admitted stream still completes and the
    // invariants survive
    assert_eq!(
        metric(&report, "transfer_failures_total").mean,
        0.0,
        "the 40-tick outage must end before any retry budget exhausts"
    );
    assert_eq!(started.mean, completed.mean, "every stream completes");
    assert_eq!(metric(&report, "audit_violations_total").mean, 0.0);
}

//! Criterion micro-benchmarks for the performance-critical kernels:
//! forecasting (ARIMA fit/forecast, NARNET training), the O(n³)
//! Kuhn–Munkres matching, k-median local search, shortest-path
//! construction, topology builders, and a full Sheriff management round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dcn_sim::engine::{Cluster, ClusterConfig};
use dcn_sim::{RackMetric, SimConfig};
use dcn_topology::fattree::{self, FatTreeConfig};
use dcn_topology::path::{distance_cost, PathCosts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sheriff_core::kmedian::{local_search, KMedianInstance};
use sheriff_core::{min_cost_assignment, Sheriff};
use timeseries::arima::{ArimaModel, ArimaSpec};
use timeseries::generator::{weekly_traffic_trace, TraceConfig};
use timeseries::narnet::{Narnet, NarnetConfig};

fn bench_forecasting(c: &mut Criterion) {
    let cfg = TraceConfig {
        len: 504,
        samples_per_day: 72,
        seed: 1,
    };
    let y = weekly_traffic_trace(&cfg);

    c.bench_function("arima_fit_111_n504", |b| {
        b.iter(|| ArimaModel::fit(black_box(&y), ArimaSpec::new(1, 1, 1)).unwrap())
    });

    let model = ArimaModel::fit(&y, ArimaSpec::new(1, 1, 1)).unwrap();
    c.bench_function("arima_forecast_12step", |b| {
        b.iter(|| model.forecast(black_box(&y), 12))
    });

    c.bench_function("narnet_train_n300_h10", |b| {
        b.iter(|| {
            Narnet::fit(
                black_box(&y[..300]),
                NarnetConfig {
                    lags: 6,
                    hidden: 10,
                    epochs: 50,
                    patience: 10,
                    ..NarnetConfig::default()
                },
            )
        })
    });

    let nn = Narnet::fit(
        &y,
        NarnetConfig {
            lags: 8,
            hidden: 20,
            epochs: 50,
            patience: 10,
            ..NarnetConfig::default()
        },
    );
    c.bench_function("narnet_predict_next", |b| {
        b.iter(|| nn.predict_next(black_box(&y)))
    });
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for &n in &[16usize, 64, 128] {
        let mut rng = StdRng::seed_from_u64(7);
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n * 2).map(|_| rng.gen_range(0.0..100.0)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cost, |b, cost| {
            b.iter(|| min_cost_assignment(black_box(cost)))
        });
    }
    group.finish();
}

fn bench_kmedian(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let clients = 40;
    let facilities = 20;
    let cost: Vec<Vec<f64>> = (0..clients)
        .map(|_| (0..facilities).map(|_| rng.gen_range(0.0..50.0)).collect())
        .collect();
    let inst = KMedianInstance::new(cost, 5);
    let mut group = c.benchmark_group("kmedian_local_search");
    for p in [1usize, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| local_search(black_box(&inst), p, 1000))
        });
    }
    group.finish();
}

fn bench_seasonal(c: &mut Criterion) {
    use timeseries::holtwinters::{HoltWinters, HwConfig};
    use timeseries::sarima::{SarimaModel, SarimaSpec};
    let cfg = TraceConfig {
        len: 7 * 48,
        samples_per_day: 48,
        seed: 2,
    };
    let y = weekly_traffic_trace(&cfg);
    c.bench_function("sarima_fit_s48", |b| {
        b.iter(|| SarimaModel::fit(black_box(&y), SarimaSpec::new(1, 0, 1, 1, 1, 1, 48)).unwrap())
    });
    c.bench_function("holtwinters_fit_s48", |b| {
        b.iter(|| HoltWinters::fit(black_box(&y), HwConfig::with_season(48)))
    });
}

fn bench_ksp(c: &mut Criterion) {
    use dcn_topology::ksp::k_shortest_paths;
    use dcn_topology::RackId;
    let dcn = fattree::build(&FatTreeConfig::paper(8));
    let src = dcn.rack_node(RackId(0));
    let dst = dcn.rack_node(RackId(17));
    let mut group = c.benchmark_group("yen_ksp_k8_crosspod");
    for k in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| k_shortest_paths(black_box(&dcn.graph), src, dst, k, distance_cost))
        });
    }
    group.finish();
}

fn bench_evacuation(c: &mut Criterion) {
    use dcn_topology::HostId;
    use sheriff_core::evacuate_host;
    use sheriff_core::vmmigration::MigrationContext;
    let dcn = fattree::build(&FatTreeConfig::paper(8));
    let cluster = Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.5,
            skew: 3.0,
            seed: 8,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    );
    let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
    let host = (0..cluster.placement.host_count())
        .map(HostId::from_index)
        .max_by_key(|&h| cluster.placement.vms_on(h).len())
        .unwrap();
    let rack = cluster.placement.rack_of_host(host);
    let region = cluster.dcn.neighbor_racks(rack, 2);
    c.bench_function("evacuate_busiest_host_k8", |b| {
        b.iter_batched(
            || cluster.clone(),
            |mut cl| {
                let mut ctx = MigrationContext {
                    placement: &mut cl.placement,
                    inventory: &cl.dcn.inventory,
                    deps: &cl.deps,
                    metric: &metric,
                    sim: &cl.sim,
                };
                evacuate_host(&mut ctx, host, &region, 5)
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_topology(c: &mut Criterion) {
    c.bench_function("fattree_build_k16", |b| {
        b.iter(|| fattree::build(black_box(&FatTreeConfig::paper(16))))
    });

    let dcn = fattree::build(&FatTreeConfig::paper(8));
    c.bench_function("dijkstra_apsp_k8", |b| {
        b.iter(|| PathCosts::dijkstra_all(black_box(&dcn.graph), distance_cost))
    });
    c.bench_function("floyd_warshall_k8", |b| {
        b.iter(|| PathCosts::floyd_warshall(black_box(&dcn.graph), distance_cost))
    });
    c.bench_function("rack_metric_build_k8", |b| {
        b.iter(|| RackMetric::build(black_box(&dcn), &SimConfig::paper()))
    });
}

fn bench_management_round(c: &mut Criterion) {
    let dcn = fattree::build(&FatTreeConfig::paper(8));
    let cluster = Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.5,
            skew: 4.0,
            seed: 5,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    );
    let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
    let sheriff = Sheriff::new(&cluster);
    c.bench_function("sheriff_round_k8_5pct", |b| {
        b.iter_batched(
            || cluster.clone(),
            |mut cl| {
                let alerts = cl.fraction_alerts(0.05, 0);
                let utils: Vec<f64> = cl
                    .placement
                    .vm_ids()
                    .map(|vm| cl.placement.utilization(cl.placement.host_of(vm)))
                    .collect();
                sheriff.round(&mut cl, &metric, None, &alerts, &|vm| utils[vm.index()])
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_forecasting,
    bench_seasonal,
    bench_matching,
    bench_kmedian,
    bench_ksp,
    bench_topology,
    bench_management_round,
    bench_evacuation
);
criterion_main!(benches);

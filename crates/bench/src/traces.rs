//! Fig. 3–5: the raw traces (CPU utilisation, disk-I/O rate, weekly
//! traffic). The paper plots proprietary ZopleCloud data; we emit the
//! synthetic substitutes with the same ranges and periodic structure
//! (DESIGN.md §1) plus their summary statistics.

use crate::report::Table;
use timeseries::generator::{cpu_trace, disk_io_trace, weekly_traffic_trace, TraceConfig};
use timeseries::stats::{acf, mean, variance};

fn summarize(t: &mut Table, id_note: &str, y: &[f64], samples_per_day: usize) {
    let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let daily_acf = if y.len() > samples_per_day {
        acf(y, samples_per_day)[samples_per_day]
    } else {
        0.0
    };
    t.note(format!(
        "{id_note}: n={}, range [{lo:.1}, {hi:.1}], mean {:.1}, std {:.1}, daily-lag ACF {daily_acf:.2}",
        y.len(),
        mean(y),
        variance(y).sqrt(),
    ));
}

/// Fig. 3 — raw CPU utilisation (24 h, percent).
pub fn fig3(seed: u64) -> Table {
    let cfg = TraceConfig {
        len: 24 * 6,
        samples_per_day: 24 * 6,
        seed,
    };
    let y = cpu_trace(&cfg);
    let mut t = Table::new("fig3", "Raw data of CPU utility (%)", &["t", "cpu_pct"]);
    for (i, v) in y.iter().enumerate() {
        t.push(vec![i as f64, *v]);
    }
    summarize(&mut t, "CPU", &y, cfg.samples_per_day);
    t
}

/// Fig. 4 — raw disk-I/O rate (24 h, MB).
pub fn fig4(seed: u64) -> Table {
    let cfg = TraceConfig {
        len: 24 * 6,
        samples_per_day: 24 * 6,
        seed,
    };
    let y = disk_io_trace(&cfg);
    let mut t = Table::new("fig4", "Raw data of disk I/O rate (MB)", &["t", "io_mb"]);
    for (i, v) in y.iter().enumerate() {
        t.push(vec![i as f64, *v]);
    }
    summarize(&mut t, "I/O", &y, cfg.samples_per_day);
    t
}

/// Fig. 5 — raw weekly switch traffic (7 days, MB).
pub fn fig5(seed: u64) -> Table {
    let cfg = TraceConfig {
        len: 7 * 72,
        samples_per_day: 72,
        seed,
    };
    let y = weekly_traffic_trace(&cfg);
    let mut t = Table::new(
        "fig5",
        "Raw data of weekly traffic (MB)",
        &["t", "traffic_mb"],
    );
    for (i, v) in y.iter().enumerate() {
        t.push(vec![i as f64, *v]);
    }
    summarize(&mut t, "traffic", &y, cfg.samples_per_day);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_have_expected_lengths_and_ranges() {
        let f3 = fig3(1);
        assert_eq!(f3.rows.len(), 144);
        assert!(f3.rows.iter().all(|r| (0.0..=100.0).contains(&r[1])));
        let f4 = fig4(1);
        assert!(f4.rows.iter().all(|r| (0.0..=1200.0).contains(&r[1])));
        let f5 = fig5(1);
        assert_eq!(f5.rows.len(), 7 * 72);
    }

    #[test]
    fn notes_record_periodicity() {
        let f5 = fig5(2);
        assert!(f5.notes[0].contains("daily-lag ACF"));
    }
}

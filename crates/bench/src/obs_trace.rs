//! `--trace` support: run one seeded full-system scenario with a
//! [`JsonLinesSink`] attached, so an experiment batch can ship a
//! structured event trace next to its figure tables.

use std::fs::{self, File};
use std::io::{self, BufWriter};
use std::path::Path;

use dcn_sim::engine::HoltPredictor;
use dcn_sim::flows::Flow;
use dcn_topology::fattree::{self, FatTreeConfig};
use dcn_topology::{RackId, VmId};
use sheriff_core::SystemBuilder;
use sheriff_obs::JsonLinesSink;

/// Step a seeded Fat-Tree system for `steps` rounds, streaming every
/// event to `<out>/trace.jsonl`. Returns the number of events written.
///
/// The scenario mirrors the `full_system` example: workload-driven host
/// alerts plus hot cross-rack elephants, so the trace exercises all
/// three alert sources and the REQUEST/ACK negotiation.
pub fn trace_run(out: &Path, seed: u64, steps: usize) -> io::Result<u64> {
    fs::create_dir_all(out)?;
    let path = out.join("trace.jsonl");
    let sink = JsonLinesSink::new(BufWriter::new(File::create(&path)?));

    let dcn = fattree::build(&FatTreeConfig::paper(4));
    let configured = |dcn| {
        SystemBuilder::new(dcn)
            .vms_per_host(2.0)
            .skew(2.0)
            .workload_len(200)
            .seed(seed)
    };
    let probe = configured(dcn.clone())
        .build()
        .map_err(|e| io::Error::other(e.to_string()))?;
    let vms_in = |rack: RackId| -> Vec<VmId> {
        probe
            .cluster
            .placement
            .vm_ids()
            .filter(|&vm| probe.cluster.placement.rack_of(vm) == rack)
            .collect()
    };
    let fat: Vec<RackId> = (0..probe.cluster.dcn.rack_count())
        .map(RackId::from_index)
        .filter(|&r| vms_in(r).len() >= 2)
        .collect();
    let mut flows = Vec::new();
    if fat.len() >= 2 {
        let (srcs, dsts) = (vms_in(fat[0]), vms_in(fat[1]));
        for i in 0..4 {
            flows.push(Flow {
                src: srcs[i % srcs.len()],
                dst: dsts[i % dsts.len()],
                rate: 0.5,
                delay_sensitive: false,
            });
        }
    }
    let mut system = configured(dcn)
        .flows(flows)
        .build_with_sink(sink)
        .map_err(|e| io::Error::other(e.to_string()))?;

    let predictor = HoltPredictor::default();
    for _ in 0..steps {
        system.step(&predictor);
    }
    let sink = system.into_sink();
    let events = sink.events_written();
    sink.finish()?;
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_run_writes_a_parsable_event_stream() {
        let dir = std::env::temp_dir().join("sheriff-bench-trace-test");
        let events = trace_run(&dir, 71, 10).expect("trace run");
        let text = fs::read_to_string(dir.join("trace.jsonl")).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        // every line beyond the events is a timing or the final summary
        let extra = lines
            .iter()
            .filter(|l| l.contains("\"ev\":\"timing\"") || l.contains("\"ev\":\"summary\""))
            .count();
        assert_eq!(lines.len() as u64, events + extra as u64);
        assert!(lines
            .iter()
            .all(|l| l.starts_with("{\"ev\":") && l.ends_with('}')));
        assert_eq!(
            text.lines()
                .filter(|l| l.contains("\"ev\":\"round_start\""))
                .count(),
            10
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Fig. 11–14: Sheriff (APP) vs the centralized global manager (OPT) as
//! the topology scales — total migration cost (Fig. 11/13) and matching
//! search space (Fig. 12/14), on Fat-Tree (pods 8..48) and BCube
//! (switches per level 8..48), with 5 % of VMs alerting (Sec. VI-B).

use crate::report::Table;
use dcn_sim::engine::{Cluster, ClusterConfig};
use dcn_sim::{AlertSource, RackMetric, SimConfig};
use dcn_topology::bcube::{self, BCubeConfig};
use dcn_topology::fattree::{self, FatTreeConfig};
use dcn_topology::{Dcn, VmId};
use sheriff_core::vmmigration::MigrationContext;
use sheriff_core::{centralized_migration_chunked, priority, Budget, Sheriff};

/// Which topology family a sweep runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topo {
    /// Fat-Tree, parameter = pods.
    FatTree,
    /// BCube(n, 1), parameter = switches per level (n).
    BCube,
}

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Size parameter (pods or switches/level).
    pub k: usize,
    /// Candidate VMs raised for migration.
    pub candidates: usize,
    /// Sheriff's total Eqn. 1 cost.
    pub sheriff_cost: f64,
    /// Centralized manager's total Eqn. 1 cost.
    pub central_cost: f64,
    /// Sheriff's summed search space (Σ per-shim |F_i| × |region hosts|).
    pub sheriff_space: usize,
    /// Centralized search space (|F| × |all hosts|).
    pub central_space: usize,
    /// Moves committed by Sheriff.
    pub sheriff_moves: usize,
    /// Moves committed by the centralized manager.
    pub central_moves: usize,
}

fn build_dcn(topo: Topo, k: usize) -> Dcn {
    match topo {
        Topo::FatTree => fattree::build(&FatTreeConfig {
            hosts_per_rack: 2,
            ..FatTreeConfig::paper(k)
        }),
        Topo::BCube => bcube::build(&BCubeConfig {
            hosts_per_rack: 2,
            ..BCubeConfig::paper(k)
        }),
    }
}

fn cluster_config(seed: u64) -> ClusterConfig {
    ClusterConfig {
        vms_per_host: 2.0,
        skew: 4.0,
        seed,
        ..ClusterConfig::default()
    }
}

/// The shared candidate set both managers must place: for each alerted
/// host (5 % of VMs protocol), the single highest-ALERT migratable VM —
/// exactly what Alg. 1's host-alert arm selects.
fn candidate_set(cluster: &Cluster, alert_values: &[f64]) -> Vec<VmId> {
    let alerts = cluster.fraction_alerts(0.05, 0);
    let mut out = Vec::new();
    for a in &alerts {
        if let AlertSource::Host(h) = a.source {
            out.extend(priority(
                cluster.placement.vms_on(h),
                &cluster.placement,
                |vm| alert_values[vm.index()],
                Budget::SingleMaxAlert,
            ));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Run one sweep point: identical clusters for both managers, identical
/// candidates.
pub fn run_point(topo: Topo, k: usize, seed: u64) -> ScalePoint {
    let sim = SimConfig::paper();
    let mut c_sheriff = Cluster::build(build_dcn(topo, k), &cluster_config(seed), sim.clone());
    let mut c_central = Cluster::build(build_dcn(topo, k), &cluster_config(seed), sim);
    let metric = RackMetric::build(&c_sheriff.dcn, &c_sheriff.sim);

    let alert_values: Vec<f64> = c_sheriff
        .placement
        .vm_ids()
        .map(|vm| {
            c_sheriff
                .placement
                .utilization(c_sheriff.placement.host_of(vm))
        })
        .collect();
    let candidates = candidate_set(&c_sheriff, &alert_values);

    // Sheriff: one management round over the host alerts
    let sheriff = Sheriff::new(&c_sheriff);
    let alerts = c_sheriff.fraction_alerts(0.05, 0);
    let report = sheriff.round(&mut c_sheriff, &metric, None, &alerts, &|vm| {
        alert_values[vm.index()]
    });

    // Centralized: the same candidates against every host
    let central = {
        let mut ctx = MigrationContext {
            placement: &mut c_central.placement,
            inventory: &c_central.dcn.inventory,
            deps: &c_central.deps,
            metric: &metric,
            sim: &c_central.sim,
        };
        centralized_migration_chunked(&mut ctx, &candidates, 64, 3)
    };

    ScalePoint {
        k,
        candidates: candidates.len(),
        sheriff_cost: report.plan.total_cost,
        central_cost: central.total_cost,
        sheriff_space: report.plan.search_space,
        central_space: central.search_space,
        sheriff_moves: report.plan.moves.len(),
        central_moves: central.moves.len(),
    }
}

/// Run the full sweep and emit the cost figure and the search-space
/// figure for the given topology.
pub fn sweep(topo: Topo, sizes: &[usize], seed: u64) -> (Table, Table) {
    let (cost_id, cost_title, space_id, space_title, xlabel) = match topo {
        Topo::FatTree => (
            "fig11",
            "Migration cost: Sheriff (APP) vs centralized optimal (OPT), Fat-Tree",
            "fig12",
            "Search space: Sheriff vs centralized manager, Fat-Tree",
            "pods",
        ),
        Topo::BCube => (
            "fig13",
            "Migration cost: Sheriff (APP) vs centralized optimal (OPT), BCube",
            "fig14",
            "Search space: Sheriff vs centralized manager, BCube",
            "n",
        ),
    };
    let mut cost = Table::new(
        cost_id,
        cost_title,
        &[
            xlabel,
            "candidates",
            "sheriff_cost",
            "central_cost",
            "sheriff_moves",
            "central_moves",
        ],
    );
    let mut space = Table::new(
        space_id,
        space_title,
        &[xlabel, "sheriff_space", "central_space", "ratio"],
    );
    for &k in sizes {
        let p = run_point(topo, k, seed);
        cost.push(vec![
            k as f64,
            p.candidates as f64,
            p.sheriff_cost,
            p.central_cost,
            p.sheriff_moves as f64,
            p.central_moves as f64,
        ]);
        space.push(vec![
            k as f64,
            p.sheriff_space as f64,
            p.central_space as f64,
            p.central_space as f64 / (p.sheriff_space.max(1)) as f64,
        ]);
    }
    // headline shape checks
    if let (Some(first), Some(last)) = (cost.rows.first(), cost.rows.last()) {
        cost.note(format!(
            "cost grows with scale: sheriff {:.0} -> {:.0}, central {:.0} -> {:.0}",
            first[2], last[2], first[3], last[3]
        ));
        let gap = cost
            .rows
            .iter()
            .map(|r| if r[3] > 0.0 { r[2] / r[3] } else { 1.0 })
            .fold(0.0, f64::max);
        cost.note(format!(
            "worst APP/OPT cost ratio across the sweep = {gap:.3} (paper: Sheriff close to optimal)"
        ));
    }
    if let Some(last) = space.rows.last() {
        space.note(format!(
            "at the largest size the centralized search space is {:.0}x Sheriff's",
            last[3]
        ));
    }
    (cost, space)
}

/// Paper sweep sizes (pods / switches-per-level 8..48).
pub const PAPER_SIZES: [usize; 6] = [8, 16, 24, 32, 40, 48];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fattree_point_has_sane_shape() {
        let p = run_point(Topo::FatTree, 4, 3);
        assert!(p.candidates > 0);
        assert!(p.central_space > p.sheriff_space);
        assert!(p.sheriff_moves > 0);
        assert!(p.central_moves >= p.sheriff_moves);
        assert!(p.sheriff_cost > 0.0);
    }

    #[test]
    fn bcube_point_has_sane_shape() {
        let p = run_point(Topo::BCube, 4, 3);
        assert!(p.candidates > 0);
        assert!(p.central_space > p.sheriff_space);
        assert!(p.central_moves > 0);
    }

    #[test]
    fn sweep_grows_with_size() {
        let (cost, space) = sweep(Topo::FatTree, &[4, 8], 1);
        assert_eq!(cost.rows.len(), 2);
        // more pods -> more candidates -> more cost and space
        assert!(cost.rows[1][2] > cost.rows[0][2], "{:?}", cost.rows);
        assert!(space.rows[1][2] > space.rows[0][2]);
        // centralized space gap widens with scale
        assert!(space.rows[1][3] >= space.rows[0][3] * 0.8);
    }
}

//! Extension experiment `prealert`: quantify the paper's motivating
//! claim (Sec. I, "Contingency vs Pre-Control") — acting on *predicted*
//! overload reduces the time devices spend overloaded, compared to the
//! classical react-after-detection scheme, on identical workloads.

use crate::report::Table;
use dcn_sim::engine::{Cluster, ClusterConfig, HoltPredictor};
use dcn_sim::ArimaProfilePredictor;
use dcn_sim::{RackMetric, SimConfig};
use dcn_topology::fattree::{self, FatTreeConfig};
use sheriff_core::{run_policy, AlertPolicy};

/// Run both policies over `trials` seeded clusters; report overload
/// exposure and migration effort for each.
pub fn prealert_experiment(trials: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "prealert",
        "Pre-alert (Sheriff) vs contingency (reactive) management",
        &[
            "trial",
            "reactive_exposure",
            "prealert_exposure",
            "arima_exposure",
            "oracle_exposure",
            "reactive_migrations",
            "prealert_migrations",
            "reduction_pct",
            "oracle_reduction_pct",
        ],
    );
    let mut sum_reactive = 0.0;
    let mut sum_prealert = 0.0;
    let mut sum_arima = 0.0;
    let mut sum_oracle = 0.0;
    let mut wins = 0usize;
    for trial in 0..trials {
        let build = || {
            // hosts sized so diurnal peaks actually flirt with overload —
            // the regime where alert timing matters
            let dcn = fattree::build(&FatTreeConfig {
                host_capacity: 30.0,
                ..FatTreeConfig::paper(4)
            });
            Cluster::build(
                dcn,
                &ClusterConfig {
                    vms_per_host: 1.5,
                    vm_capacity_range: (8.0, 16.0),
                    skew: 1.0,
                    workload_len: 300,
                    seed: seed + trial as u64,
                    ..ClusterConfig::default()
                },
                SimConfig {
                    alert_threshold: 0.55,
                    ..SimConfig::paper()
                },
            )
        };
        let mut reactive = build();
        let mut prealert = build();
        let mut arima = build();
        let mut oracle = build();
        let metric = RackMetric::build(&reactive.dcn, &reactive.sim);
        // damped trend: 4-step extrapolation on noisy traces overshoots
        // with the default gains and floods the system with false alarms
        let p = HoltPredictor {
            alpha: 0.35,
            beta: 0.05,
        };
        // pre-copy takes 3 simulation steps (Fig. 2's t1+t2 at trace scale)
        let r = run_policy(
            &mut reactive,
            &metric,
            &p,
            AlertPolicy::Reactive,
            50,
            250,
            3,
        );
        let a = run_policy(
            &mut prealert,
            &metric,
            &p,
            AlertPolicy::PreAlert,
            50,
            250,
            3,
        );
        // the full per-VM ARIMA background service (Sec. III-B.1)
        let arima_pred = ArimaProfilePredictor::new(50);
        let ar = run_policy(
            &mut arima,
            &metric,
            &arima_pred,
            AlertPolicy::PreAlert,
            50,
            250,
            3,
        );
        let o = run_policy(&mut oracle, &metric, &p, AlertPolicy::Oracle, 50, 250, 3);
        let pct = |x: f64| {
            if r.overload_integral > 0.0 {
                (1.0 - x / r.overload_integral) * 100.0
            } else {
                0.0
            }
        };
        let reduction = pct(a.overload_integral);
        let oracle_reduction = pct(o.overload_integral);
        sum_reactive += r.overload_integral;
        sum_prealert += a.overload_integral;
        sum_oracle += o.overload_integral;
        if a.overload_integral <= r.overload_integral {
            wins += 1;
        }
        sum_arima += ar.overload_integral;
        t.push(vec![
            trial as f64,
            r.overload_integral,
            a.overload_integral,
            ar.overload_integral,
            o.overload_integral,
            r.migrations as f64,
            a.migrations as f64,
            reduction,
            oracle_reduction,
        ]);
    }
    t.note(format!(
        "aggregate exposure: reactive {sum_reactive:.1}, pre-alert/Holt {sum_prealert:.1} ({:.1}% lower), pre-alert/ARIMA {sum_arima:.1} ({:.1}% lower), oracle {sum_oracle:.1} ({:.1}% lower); Holt pre-alert matched or won in {wins}/{trials} trials",
        (1.0 - sum_prealert / sum_reactive) * 100.0,
        (1.0 - sum_arima / sum_reactive) * 100.0,
        (1.0 - sum_oracle / sum_reactive) * 100.0
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prealert_wins_on_average() {
        let t = prealert_experiment(4, 7);
        let reactive: f64 = t.rows.iter().map(|r| r[1]).sum();
        let oracle: f64 = t.rows.iter().map(|r| r[4]).sum();
        assert!(
            oracle < reactive,
            "perfect foresight must reduce aggregate exposure: {oracle} vs {reactive}"
        );
    }

    #[test]
    fn both_policies_migrate() {
        let t = prealert_experiment(2, 11);
        for row in &t.rows {
            assert!(
                row[5] > 0.0 || row[1] == 0.0,
                "reactive idle despite overload"
            );
            assert!(
                row[6] > 0.0 || row[2] == 0.0,
                "prealert idle despite overload"
            );
        }
    }
}

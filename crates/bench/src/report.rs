//! Result containers and pretty-printing for the experiment harness.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// A generic experiment result: named columns of numbers plus free-form
/// notes, printable as an aligned table and serializable to JSON.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment id (e.g. "fig11").
    pub id: String,
    /// What the paper's artifact shows.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of values, one per x-point.
    pub rows: Vec<Vec<f64>>,
    /// Headline scalar findings ("ARIMA test MSE = …").
    pub notes: Vec<String>,
}

impl Table {
    /// New empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Append a headline note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.id, self.title));
        let width = 14usize;
        let mut header = String::new();
        for c in &self.columns {
            header.push_str(&format!("{c:>width$}"));
        }
        out.push_str(&header);
        out.push('\n');
        out.push_str(&"-".repeat(header.len()));
        out.push('\n');
        for row in &self.rows {
            for v in row {
                if v.fract() == 0.0 && v.abs() < 1e12 {
                    out.push_str(&format!("{:>width$}", *v as i64));
                } else {
                    out.push_str(&format!("{v:>width$.4}"));
                }
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  * {n}\n"));
        }
        out
    }

    /// Write the table as JSON into `dir/<id>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{}.json", self.id)))?;
        f.write_all(self.to_json_pretty().as_bytes())
    }

    /// Hand-rolled serialization: the offline `serde_json` polyfill cannot
    /// derive real output, and the shape is simple enough to emit directly.
    fn to_json_pretty(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        }
        let columns: Vec<String> = self.columns.iter().map(|c| esc(c)).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "[{}]",
                    r.iter().map(|v| num(*v)).collect::<Vec<_>>().join(", ")
                )
            })
            .collect();
        let notes: Vec<String> = self.notes.iter().map(|n| esc(n)).collect();
        format!(
            "{{\n  \"id\": {},\n  \"title\": {},\n  \"columns\": [{}],\n  \"rows\": [{}],\n  \"notes\": [{}]\n}}\n",
            esc(&self.id),
            esc(&self.title),
            columns.join(", "),
            rows.join(", "),
            notes.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_parts() {
        let mut t = Table::new("figX", "demo", &["k", "cost"]);
        t.push(vec![8.0, 123.456]);
        t.push(vec![16.0, 2.0]);
        t.note("shape holds");
        let s = t.render();
        assert!(s.contains("figX"));
        assert!(s.contains("cost"));
        assert!(s.contains("123.4560"));
        assert!(s.contains("16"));
        assert!(s.contains("shape holds"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("x", "y", &["a"]);
        t.push(vec![1.0, 2.0]);
    }

    #[test]
    fn json_roundtrip_to_disk() {
        let mut t = Table::new("figtest", "demo", &["a"]);
        t.push(vec![1.0]);
        let dir = std::env::temp_dir().join("sheriff-bench-test");
        t.write_json(&dir).unwrap();
        let body = std::fs::read_to_string(dir.join("figtest.json")).unwrap();
        assert!(body.contains("\"figtest\""));
    }
}

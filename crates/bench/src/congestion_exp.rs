//! Extension experiment `qcn`: the closed congestion-control loop —
//! elephant flows saturate edge links, switch queues build, QCN feedback
//! raises outer-switch alerts, the shims' FLOWREROUTE (Alg. 1 case 1)
//! drains the queues. Regenerates the timeline the paper's Sec. III-B
//! narrates.

use crate::report::Table;
use dcn_sim::congestion::{CongestionConfig, CongestionSim};
use dcn_sim::engine::{Cluster, ClusterConfig};
use dcn_sim::flows::{Flow, FlowNetwork};
use dcn_sim::{Alert, AlertSource};
use dcn_sim::{RackMetric, SimConfig};
use dcn_topology::fattree::{self, FatTreeConfig};
use dcn_topology::{RackId, VmId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sheriff_core::pre_alert_management;
use sheriff_core::vmmigration::MigrationContext;

/// Run the congestion loop for `steps` steps: heavy cross-pod flows, QCN
/// queues, and shims reacting through Alg. 1 at each alert. Reports the
/// worst queue per step and the cumulative reroutes.
pub fn qcn_experiment(steps: usize, seed: u64) -> Table {
    let dcn = fattree::build(&FatTreeConfig::paper(4));
    let mut cluster = Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.0,
            skew: 1.0,
            seed,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    );
    let metric = RackMetric::build(&cluster.dcn, &cluster.sim);

    // Congestion from *overlap*: pairs of medium flows between the same
    // rack pair initially share the one distance-shortest path (combined
    // 1.1 > the 0.85 service rate); rerouting separates them onto the
    // fabric's parallel paths, after which each link runs at 0.55 and
    // queues drain. A flow bigger than any single link could never be
    // healed by rerouting.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF10);
    let vms: Vec<VmId> = cluster.placement.vm_ids().collect();
    let vms_in_rack = |rack: RackId| -> Vec<VmId> {
        vms.iter()
            .copied()
            .filter(|&vm| cluster.placement.rack_of(vm) == rack)
            .collect()
    };
    // racks populous enough to source/sink two parallel flows
    let fat_racks: Vec<RackId> = (0..cluster.dcn.rack_count())
        .map(RackId::from_index)
        .filter(|&r| vms_in_rack(r).len() >= 2)
        .collect();
    let mut flow_list = Vec::new();
    for pair in fat_racks.chunks(2).take(2) {
        let [a, b] = pair else { continue };
        let srcs = vms_in_rack(*a);
        let dsts = vms_in_rack(*b);
        for i in 0..2 {
            flow_list.push(Flow {
                src: srcs[i],
                dst: dsts[i],
                rate: 0.55,
                delay_sensitive: false,
            });
        }
    }
    assert!(
        !flow_list.is_empty(),
        "cluster too sparse for the congestion scenario"
    );
    for _ in 0..4 {
        let src = vms[rng.gen_range(0..vms.len())];
        let dst = vms[rng.gen_range(0..vms.len())];
        if cluster.placement.rack_of(src) != cluster.placement.rack_of(dst) {
            flow_list.push(Flow {
                src,
                dst,
                rate: rng.gen_range(0.05..0.15),
                delay_sensitive: rng.gen_bool(0.2),
            });
        }
    }
    let mut flows = FlowNetwork::route(&cluster.dcn, &cluster.placement, flow_list);
    let mut qcn = CongestionSim::new(&cluster.dcn, CongestionConfig::default());

    let mut t = Table::new(
        "qcn",
        "Closed loop: QCN queues vs FLOWREROUTE reactions (extension)",
        &["step", "worst_queue", "alerts", "rerouted_cumulative"],
    );
    let mut rerouted_total = 0usize;
    let mut peak: f64 = 0.0;
    for step in 0..steps {
        let feedbacks = qcn.step(&cluster.dcn, &flows);
        peak = peak.max(qcn.worst_queue());
        // each feedback becomes an outer-switch alert delivered to the
        // shims whose racks source flows through the hot switch
        let mut alerts: Vec<Alert> = Vec::new();
        for (sw, _) in &feedbacks {
            let racks: std::collections::BTreeSet<RackId> = flows
                .flows_through_switch(&cluster.dcn, *sw)
                .into_iter()
                .map(|f| cluster.placement.rack_of(flows.flows()[f].src))
                .collect();
            for rack in racks {
                alerts.push(Alert {
                    rack,
                    source: AlertSource::OuterSwitch(*sw),
                    severity: qcn.severity(*sw).max(0.91),
                    time: step,
                });
            }
        }
        let alert_count = alerts.len();
        // racks handle their alerts in order (the sequential runtime)
        let mut racks: Vec<RackId> = alerts.iter().map(|a| a.rack).collect();
        racks.sort_unstable();
        racks.dedup();
        for rack in racks {
            let region = cluster.dcn.neighbor_racks(rack, cluster.sim.region_hops);
            let mut ctx = MigrationContext {
                placement: &mut cluster.placement,
                inventory: &cluster.dcn.inventory,
                deps: &cluster.deps,
                metric: &metric,
                sim: &cluster.sim,
            };
            let out = pre_alert_management(
                &mut ctx,
                &cluster.dcn,
                Some(&mut flows),
                rack,
                &region,
                &alerts,
                &|_| 0.95,
                3,
            );
            rerouted_total += out.reroutes.rerouted;
        }
        t.push(vec![
            step as f64,
            qcn.worst_queue(),
            alert_count as f64,
            rerouted_total as f64,
        ]);
    }
    let final_queue = qcn.worst_queue();
    t.note(format!(
        "peak queue {peak:.1} -> final {final_queue:.1} after {rerouted_total} reroutes"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_reroutes_and_drains() {
        let t = qcn_experiment(60, 5);
        assert_eq!(t.rows.len(), 60);
        let rerouted = t.rows.last().unwrap()[3];
        assert!(rerouted > 0.0, "no reroutes happened");
        // the final worst queue must sit below the peak
        let peak = t.rows.iter().map(|r| r[1]).fold(0.0, f64::max);
        let final_q = t.rows.last().unwrap()[1];
        assert!(final_q <= peak, "queue should not end at its peak");
    }

    #[test]
    fn reroute_counter_is_monotone() {
        let t = qcn_experiment(40, 9);
        for w in t.rows.windows(2) {
            assert!(w[1][3] >= w[0][3]);
        }
    }
}

//! Ablation studies for the design choices called out in DESIGN.md §4:
//! the knapsack PRIORITY vs a greedy picker, Kuhn–Munkres matching vs
//! first-fit placement, the p-swap depth of the k-median local search,
//! the forecasting model pool, and the size of the shim's dominating
//! region.

use crate::forecast::{mixed_series, paper_pool};
use crate::ratio::random_instance;
use crate::report::Table;
use dcn_sim::engine::{Cluster, ClusterConfig};
use dcn_sim::{RackMetric, SimConfig};
use dcn_topology::fattree::{self, FatTreeConfig};
use dcn_topology::{HostId, Inventory, Placement, VmId, VmSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sheriff_core::kmedian::{exact_optimal, local_search};
use sheriff_core::vmmigration::{vmmigration, MigrationContext};
use sheriff_core::{priority, request_migration, Budget, Sheriff};
use timeseries::metrics::mse;
use timeseries::selector::{DynamicSelector, Predictor};

/// Ablation 1 — victim selection: the Alg. 2 knapsack vs a greedy
/// lowest-value-first picker, over random candidate sets. Reports how
/// much capacity each releases within the same budget and at what value.
pub fn ablation_priority(trials: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(
        "ablation-priority",
        "Victim selection: knapsack (Alg. 2) vs greedy lowest-value-first",
        &[
            "trial",
            "budget",
            "knap_released",
            "knap_value",
            "greedy_released",
            "greedy_value",
        ],
    );
    let mut knap_wins = 0usize;
    for trial in 0..trials {
        // one big host of VMs
        let mut inv = Inventory::new();
        inv.add_rack(1, 100_000.0, 100_000.0);
        let mut p = Placement::new(&inv);
        let n = rng.gen_range(8..20);
        let mut ids = Vec::new();
        for _ in 0..n {
            let s = VmSpec {
                id: p.next_vm_id(),
                capacity: rng.gen_range(3.0..20.0_f64).round(),
                value: rng.gen_range(1.0..10.0),
                delay_sensitive: false,
            };
            match p.add_vm(s, HostId(0)) {
                Ok(id) => ids.push(id),
                Err(_) => continue,
            }
        }
        let budget = rng.gen_range(15.0..60.0_f64).floor();

        let knap = priority(&ids, &p, |_| 0.0, Budget::Capacity(budget));
        let (kr, kv) = footprint(&p, &knap);

        // greedy: lowest value first, take while it fits
        let mut sorted = ids.clone();
        sorted.sort_by(|&a, &b| p.spec(a).value.total_cmp(&p.spec(b).value));
        let mut greedy = Vec::new();
        let mut used = 0.0;
        for vm in sorted {
            let cap = p.spec(vm).capacity;
            if used + cap <= budget {
                used += cap;
                greedy.push(vm);
            }
        }
        let (gr, gv) = footprint(&p, &greedy);

        if kr > gr || (kr == gr && kv <= gv) {
            knap_wins += 1;
        }
        t.push(vec![trial as f64, budget, kr, kv, gr, gv]);
    }
    t.note(format!(
        "knapsack released >= greedy capacity (or tied at lower value) in {knap_wins}/{trials} trials"
    ));
    t
}

fn footprint(p: &Placement, vms: &[VmId]) -> (f64, f64) {
    (
        vms.iter().map(|&v| p.spec(v).capacity).sum(),
        vms.iter().map(|&v| p.spec(v).value).sum(),
    )
}

/// Ablation 2 — destination assignment: Kuhn–Munkres matching (Alg. 3)
/// vs sequential first-fit (each VM greedily takes its own cheapest
/// feasible host). Matching coordinates contention for cheap slots.
pub fn ablation_matching(seed: u64) -> Table {
    let mut t = Table::new(
        "ablation-matching",
        "Destination assignment: KM matching vs sequential first-fit",
        &["trial", "matching_cost", "firstfit_cost", "ratio"],
    );
    let mut worse = 0.0f64;
    for trial in 0..8u64 {
        let build = || {
            let dcn = fattree::build(&FatTreeConfig::paper(4));
            // weight 0 so both strategies optimise the identical Eqn. 1
            // objective and the comparison isolates the assignment rule
            let sim = SimConfig {
                load_balance_weight: 0.0,
                ..SimConfig::paper()
            };
            Cluster::build(
                dcn,
                &ClusterConfig {
                    vms_per_host: 3.0,
                    skew: 4.0,
                    seed: seed + trial,
                    ..ClusterConfig::default()
                },
                sim,
            )
        };
        let mut c1 = build();
        let mut c2 = build();
        let metric = RackMetric::build(&c1.dcn, &c1.sim);
        let candidates: Vec<VmId> = {
            let alerts = c1.fraction_alerts(0.15, 0);
            alerts
                .iter()
                .filter_map(|a| match a.source {
                    dcn_sim::AlertSource::Host(h) => c1
                        .placement
                        .vms_on(h)
                        .iter()
                        .copied()
                        .find(|&vm| !c1.placement.spec(vm).delay_sensitive),
                    _ => None,
                })
                .collect()
        };
        let region: Vec<_> = (0..c1.dcn.rack_count())
            .map(dcn_topology::RackId::from_index)
            .collect();

        let matching_cost = {
            let mut ctx = MigrationContext {
                placement: &mut c1.placement,
                inventory: &c1.dcn.inventory,
                deps: &c1.deps,
                metric: &metric,
                sim: &c1.sim,
            };
            vmmigration(&mut ctx, &candidates, &region, 5).total_cost
        };

        // first-fit: VMs in order, each takes its cheapest feasible host
        let firstfit_cost = {
            let mut total = 0.0;
            for &vm in &candidates {
                let from_rack = c2.placement.rack_of(vm);
                let spec_cap = c2.placement.spec(vm).capacity;
                let mut best: Option<(HostId, f64)> = None;
                for h in 0..c2.placement.host_count() {
                    let host = HostId::from_index(h);
                    if host == c2.placement.host_of(vm)
                        || c2.placement.free_capacity(host) < spec_cap
                        || c2.deps.conflicts_on_host(vm, host, &c2.placement)
                    {
                        continue;
                    }
                    let to_rack = c2.placement.rack_of_host(host);
                    let chi = c2.deps.chi(vm, to_rack, &c2.placement);
                    let cost = metric.migration_cost(&c2.sim, spec_cap, from_rack, to_rack, chi);
                    if best.is_none_or(|(_, bc)| cost < bc) {
                        best = Some((host, cost));
                    }
                }
                if let Some((host, cost)) = best {
                    if request_migration(&mut c2.placement, &c2.deps, vm, host).is_ack() {
                        total += cost;
                    }
                }
            }
            total
        };
        let ratio = if firstfit_cost > 0.0 {
            matching_cost / firstfit_cost
        } else {
            1.0
        };
        worse = worse.max(ratio);
        t.push(vec![trial as f64, matching_cost, firstfit_cost, ratio]);
    }
    t.note(format!(
        "matching/first-fit cost ratio <= {worse:.3} across trials (matching coordinates contention)"
    ));
    t
}

/// Ablation 3 — swap depth: k-median local-search cost vs `p`.
pub fn ablation_pswap(trials: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(
        "ablation-pswap",
        "k-median local search: solution cost vs swap depth p",
        &["p", "mean_cost", "mean_ratio_to_opt", "mean_iterations"],
    );
    let insts: Vec<_> = (0..trials)
        .map(|_| random_instance(&mut rng, 14, 9, 4))
        .collect();
    let opts: Vec<f64> = insts.iter().map(|i| exact_optimal(i).cost).collect();
    for p in 1..=3usize {
        let mut cost_sum = 0.0;
        let mut ratio_sum = 0.0;
        let mut iter_sum = 0usize;
        for (inst, &opt) in insts.iter().zip(&opts) {
            let sol = local_search(inst, p, 10_000);
            cost_sum += sol.cost;
            ratio_sum += if opt > 0.0 { sol.cost / opt } else { 1.0 };
            iter_sum += sol.iterations;
        }
        let n = insts.len() as f64;
        t.push(vec![
            p as f64,
            cost_sum / n,
            ratio_sum / n,
            iter_sum as f64 / n,
        ]);
    }
    t.note("deeper swaps trade iterations for solution quality".to_string());
    t
}

/// Ablation 4 — model pool: single-family forecasting vs the combined
/// selector on mixed linear+nonlinear data.
pub fn ablation_selector(seed: u64) -> Table {
    let y = mixed_series(900, seed);
    let split = y.len() / 2;
    let pool = paper_pool(&y[..split], seed);

    let mut t = Table::new(
        "ablation-selector",
        "Forecast MSE: single model families vs the combined pool",
        &["pool_size", "mse"],
    );
    // family subsets: ARIMA-only (first 2), NARNET-only (last 2), all
    let families: Vec<(String, Vec<usize>)> = vec![
        ("arima-only".into(), vec![0, 1]),
        ("narnet-only".into(), vec![2, 3]),
        ("combined".into(), vec![0, 1, 2, 3]),
    ];
    for (name, idxs) in families {
        let sub: Vec<Predictor> = idxs.iter().filter_map(|&i| pool.get(i).cloned()).collect();
        if sub.is_empty() {
            continue;
        }
        let size = sub.len();
        let mut sel = DynamicSelector::new(sub, 20);
        let (preds, _) = sel.run(&y, split);
        let m = mse(&preds, &y[split..]);
        t.push(vec![size as f64, m]);
        t.note(format!("{name}: MSE = {m:.3}"));
    }
    t
}

/// Ablation 5 — region size: migration cost, search space, and balance
/// quality vs the shim's dominating-region radius.
pub fn ablation_scope(seed: u64) -> Table {
    let mut t = Table::new(
        "ablation-scope",
        "Dominating-region radius: balance quality vs search space",
        &[
            "hops",
            "final_stddev",
            "total_cost",
            "search_space",
            "moves",
        ],
    );
    for hops in [2usize, 4, 6] {
        let dcn = fattree::build(&FatTreeConfig::paper(8));
        let sim = SimConfig {
            region_hops: hops,
            ..SimConfig::paper()
        };
        let mut cluster = Cluster::build(
            dcn,
            &ClusterConfig {
                vms_per_host: 2.5,
                skew: 4.0,
                seed,
                ..ClusterConfig::default()
            },
            sim,
        );
        let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
        let sheriff = Sheriff::new(&cluster);
        let (traj, plan) = sheriff.balance_trajectory(&mut cluster, &metric, 0.05, 12);
        t.push(vec![
            hops as f64,
            traj.last().copied().unwrap_or(f64::NAN),
            plan.total_cost,
            plan.search_space as f64,
            plan.moves.len() as f64,
        ]);
    }
    t.note("wider regions buy marginal balance at a superlinear search-space price".to_string());
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knapsack_never_loses_to_greedy() {
        let t = ablation_priority(10, 1);
        for row in &t.rows {
            let (kr, kv, gr, gv) = (row[2], row[3], row[4], row[5]);
            assert!(
                kr > gr || (kr == gr && kv <= gv + 1e-9),
                "knapsack ({kr},{kv}) lost to greedy ({gr},{gv})"
            );
        }
    }

    #[test]
    fn matching_no_worse_than_first_fit_overall() {
        let t = ablation_matching(3);
        let mean: f64 = t.rows.iter().map(|r| r[3]).sum::<f64>() / t.rows.len() as f64;
        assert!(mean <= 1.1, "matching should not lose on average: {mean}");
    }

    #[test]
    fn deeper_swaps_do_not_hurt() {
        let t = ablation_pswap(5, 2);
        let r1 = t.rows[0][2];
        let r3 = t.rows[2][2];
        assert!(r3 <= r1 + 1e-9, "p=3 ratio {r3} worse than p=1 {r1}");
    }

    #[test]
    fn scope_tradeoff_monotone_search_space() {
        let t = ablation_scope(3);
        assert!(t.rows[2][3] >= t.rows[0][3], "wider region, more space");
    }
}

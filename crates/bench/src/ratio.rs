//! Sec. VI-C: empirical approximation ratio of the Local Search k-median
//! algorithm (Alg. 5) against exhaustive optima, checked against the
//! `3 + 2/p` guarantee.

use crate::report::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sheriff_core::kmedian::{exact_optimal, local_search_from, KMedianInstance};
use sheriff_core::RatioPoint;

/// Random metric k-median instance: clients and facilities are points in
/// the unit square, costs are Euclidean distances (a metric, as required
/// by the Arya et al. guarantee).
pub fn random_instance(
    rng: &mut StdRng,
    clients: usize,
    facilities: usize,
    k: usize,
) -> KMedianInstance {
    let pt =
        |rng: &mut StdRng| -> (f64, f64) { (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)) };
    let cs: Vec<_> = (0..clients).map(|_| pt(rng)).collect();
    let fs: Vec<_> = (0..facilities).map(|_| pt(rng)).collect();
    let cost = cs
        .iter()
        .map(|c| {
            fs.iter()
                .map(|f| ((c.0 - f.0).powi(2) + (c.1 - f.1).powi(2)).sqrt())
                .collect()
        })
        .collect();
    KMedianInstance::new(cost, k)
}

/// Run `trials` random instances per swap size `p ∈ 1..=max_p`; record the
/// worst and mean empirical ratio per `p`.
pub fn ratio_experiment(trials: usize, max_p: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(
        "ratio",
        "Local-search k-median: empirical ratio vs 3 + 2/p bound",
        &["p", "mean_ratio", "worst_ratio", "bound", "within_bound"],
    );
    // instance shapes small enough for exhaustive optima
    let shapes = [(12usize, 8usize, 3usize), (15, 9, 4), (10, 10, 5)];
    for p in 1..=max_p {
        let mut worst: f64 = 1.0;
        let mut sum = 0.0;
        let mut n = 0usize;
        let mut all_within = true;
        for trial in 0..trials {
            let (c, f, k) = shapes[trial % shapes.len()];
            let inst = random_instance(&mut rng, c, f, k);
            let opt = exact_optimal(&inst);
            // Alg. 5 starts from "an arbitrary feasible solution"; probe
            // the worst local optimum reachable from random starts, which
            // is what the 3 + 2/p guarantee actually bounds
            for _start in 0..5 {
                let mut init: Vec<usize> = (0..f).collect();
                for i in (1..f).rev() {
                    init.swap(i, rng.gen_range(0..=i));
                }
                init.truncate(k);
                let ls = local_search_from(&inst, init, p, 10_000);
                let point = RatioPoint::new(p, ls.cost, opt.cost);
                worst = worst.max(point.ratio);
                sum += point.ratio;
                n += 1;
                all_within &= point.within_bound();
            }
        }
        let bound = 3.0 + 2.0 / p as f64;
        t.push(vec![
            p as f64,
            sum / n as f64,
            worst,
            bound,
            if all_within { 1.0 } else { 0.0 },
        ]);
    }
    t.note("within_bound = 1 means every trial respected the 3 + 2/p guarantee".to_string());
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_respect_theoretical_bound() {
        let t = ratio_experiment(6, 3, 42);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            assert_eq!(row[4], 1.0, "p = {} exceeded its bound", row[0]);
            assert!(row[1] <= row[2] + 1e-12, "mean must not exceed worst");
            assert!(row[2] <= row[3], "worst {} > bound {}", row[2], row[3]);
        }
    }

    #[test]
    fn larger_p_not_worse_on_average() {
        let t = ratio_experiment(9, 2, 7);
        let mean_p1 = t.rows[0][1];
        let mean_p2 = t.rows[1][1];
        assert!(mean_p2 <= mean_p1 + 0.05, "p=2 {mean_p2} vs p=1 {mean_p1}");
    }
}

//! Scenario driver: validate and run declarative scenario files.
//!
//! ```text
//! scenarios [--check] [--serial] [--threads N] [--out DIR] <file.toml>...
//!   --check      validate only (warnings are errors), then a truncated
//!                1-seed, <= 3-round smoke run per file — the CI job
//!   --serial     run jobs on one thread (bit-identical to parallel)
//!   --threads N  worker threads for the parallel path (default: auto)
//!   --out DIR    where report JSON lands (default: results/scenarios)
//! ```
//!
//! Each file produces `<out>/<name>.json` (full report, timings
//! included) where `<name>` is the spec's `name` field. Exit status is
//! non-zero on any parse/validation/run failure.

use sheriff_scenario::{aggregate, ScenarioRunner, ScenarioSpec};
use std::path::{Path, PathBuf};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: scenarios [--check] [--serial] [--threads N] [--out DIR] <file>...");
    std::process::exit(2)
}

fn main() {
    let mut check = false;
    let mut serial = false;
    let mut threads = 0usize;
    let mut out = PathBuf::from("results/scenarios");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--check" => check = true,
            "--serial" => serial = true,
            "--threads" => {
                threads = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs an integer"))
            }
            "--out" => {
                out = PathBuf::from(argv.next().unwrap_or_else(|| die("--out needs a path")))
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: scenarios [--check] [--serial] [--threads N] [--out DIR] <file>..."
                );
                std::process::exit(2);
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    if files.is_empty() {
        eprintln!("usage: scenarios [--check] [--serial] [--threads N] [--out DIR] <file>...");
        std::process::exit(2);
    }

    let mut failed = false;
    for file in &files {
        match run_one(file, check, serial, threads, &out) {
            Ok(summary) => println!("{}: {summary}", file.display()),
            Err(err) => {
                eprintln!("{}: ERROR: {err}", file.display());
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn run_one(
    file: &Path,
    check: bool,
    serial: bool,
    threads: usize,
    out: &Path,
) -> Result<String, String> {
    let mut spec = ScenarioSpec::load(file).map_err(|e| e.to_string())?;
    let warnings = spec.validate().map_err(|e| e.to_string())?;
    if check {
        // CI mode: a suspicious spec is a broken spec
        if !warnings.is_empty() {
            return Err(format!("validation warnings:\n  {}", warnings.join("\n  ")));
        }
        // truncated smoke run: 1 seed, at most 3 rounds
        spec.seeds.truncate(1);
        spec.rounds = spec.rounds.min(3);
    } else {
        for w in &warnings {
            eprintln!("{}: warning: {w}", file.display());
        }
    }

    let mut runner = ScenarioRunner::new(spec.clone());
    runner.parallel = !serial;
    runner.threads = threads;
    let runs = runner.run().map_err(|e| e.to_string())?;
    let report = aggregate(&spec, &runs);

    if check {
        return Ok(format!(
            "OK (validated; smoke ran {} round(s) x {} job(s))",
            spec.rounds,
            runs.len()
        ));
    }
    std::fs::create_dir_all(out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    let path = out.join(format!("{}.json", spec.name));
    std::fs::write(&path, report.to_json_pretty())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    let final_row = report
        .rows
        .last()
        .ok_or_else(|| "report has no rows (rounds = 0?)".to_string())?;
    Ok(format!(
        "{} seed(s) x {} topology variant(s), {} rounds; final mean std-dev {:.1}% -> {}",
        spec.seeds.len(),
        spec.topologies.len(),
        spec.rounds,
        final_row[1],
        path.display()
    ))
}

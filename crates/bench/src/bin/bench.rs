//! Fabric-runtime speed baseline: `bench --baseline` runs the fabric
//! runtime through the scenario engine on k=8 and k=16 Fat-Trees and
//! writes `BENCH_fabric.json` (rounds/sec, migrations/sec, peak RSS),
//! so performance claims about the management loop are checkable
//! against a committed number instead of folklore.
//!
//! ```text
//! bench --baseline [--rounds N] [--seed S] [--out FILE]
//!   --baseline   run the committed k=8 / k=16 Fat-Tree baseline
//!   --rounds N   management rounds per configuration (default 6)
//!   --seed S     sweep seed (default 1)
//!   --out FILE   output path (default BENCH_fabric.json)
//!
//! bench --check [--against FILE] [--tolerance PCT] [--rounds N] [--seed S]
//!   --check          re-run the baseline configs and diff rounds/sec
//!                    against the committed BENCH_fabric.json; exits 1
//!                    when any configuration regressed past tolerance
//!   --against FILE   baseline to diff against (default BENCH_fabric.json)
//!   --tolerance PCT  allowed rounds/sec regression (default 15)
//! ```
//!
//! Timings come from the runner's own `wall_nanos` (excluded from the
//! deterministic report, measured here on a serial run); peak RSS is
//! the process high-water mark (`VmHWM`), read after each
//! configuration. The k=8 run executes first so its reading is its own
//! peak, not the larger topology's.

use sheriff_scenario::{ScenarioRunner, ScenarioSpec};
use std::path::PathBuf;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: bench --baseline [--rounds N] [--seed S] [--out FILE]\n       \
         bench --check [--against FILE] [--tolerance PCT] [--rounds N] [--seed S]"
    );
    std::process::exit(2)
}

/// `(k, rounds_per_sec)` pairs from a committed `BENCH_fabric.json`.
/// The file is the hand-rolled JSON this tool writes, so a line scan
/// over the two keys (which appear once per config, in order) is exact.
fn parse_baseline(path: &std::path::Path) -> Vec<(usize, f64)> {
    let src = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", path.display())));
    let field = |line: &str, key: &str| -> Option<String> {
        let rest = line.trim().strip_prefix(&format!("\"{key}\":"))?;
        Some(rest.trim().trim_end_matches(',').to_string())
    };
    let mut pairs = Vec::new();
    let mut k: Option<usize> = None;
    for line in src.lines() {
        if let Some(v) = field(line, "k") {
            k = v.parse().ok();
        } else if let Some(v) = field(line, "rounds_per_sec") {
            let Some(kk) = k.take() else {
                die(&format!("{}: rounds_per_sec before its k", path.display()));
            };
            let Ok(rps) = v.parse::<f64>() else {
                die(&format!("{}: bad rounds_per_sec {v}", path.display()));
            };
            pairs.push((kk, rps));
        }
    }
    if pairs.is_empty() {
        die(&format!(
            "{}: no (k, rounds_per_sec) entries found",
            path.display()
        ));
    }
    pairs
}

/// Re-run each committed configuration and compare rounds/sec; returns
/// the process exit code (0 = within tolerance, 1 = regressed).
fn check(against: &std::path::Path, tolerance: f64, rounds: usize, seed: u64) -> i32 {
    let mut code = 0;
    for (k, base_rps) in parse_baseline(against) {
        let r = run_config(k, rounds, seed);
        let secs = r.wall_nanos as f64 / 1e9;
        let rps = r.rounds as f64 / secs;
        let delta_pct = (base_rps - rps) / base_rps * 100.0;
        let verdict = if delta_pct > tolerance {
            code = 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "k={k}: {rps:.1} rounds/s vs baseline {base_rps:.1} ({delta_pct:+.1}% slower, \
             tolerance {tolerance:.0}%) {verdict}"
        );
    }
    code
}

/// Process peak resident set (`VmHWM`) in kilobytes; 0 where
/// `/proc/self/status` is unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

fn spec_for(pods: usize, rounds: usize, seed: u64) -> ScenarioSpec {
    let toml = format!(
        r#"
name = "bench_fabric_k{pods}"
title = "Fabric baseline, k={pods} Fat-Tree"
rounds = {rounds}
seeds = [{seed}]

[topology]
kind = "fat_tree"
pods = {pods}

[cluster]
vms_per_host = 2.5
skew = 4.0

[workload]
alert_fraction = 0.3

[runtime]
kind = "fabric"
max_retry = 3
"#
    );
    match ScenarioSpec::parse_str(&toml) {
        Ok(spec) => spec,
        Err(e) => die(&format!("internal baseline spec invalid: {e}")),
    }
}

struct ConfigResult {
    pods: usize,
    hosts: usize,
    vms: usize,
    rounds: usize,
    migrations: usize,
    wall_nanos: u64,
    peak_rss_kb: u64,
}

fn run_config(pods: usize, rounds: usize, seed: u64) -> ConfigResult {
    let spec = spec_for(pods, rounds, seed);
    let mut runner = ScenarioRunner::new(spec);
    runner.parallel = false; // serial: timings measure the loop, not the pool
    let runs = match runner.run() {
        Ok(r) => r,
        Err(e) => die(&format!("k={pods} baseline run failed: {e}")),
    };
    let migrations: usize = runs
        .iter()
        .flat_map(|r| r.rounds.iter())
        .map(|s| s.moves)
        .sum();
    let total_rounds: usize = runs.iter().map(|r| r.rounds.len()).sum();
    let wall_nanos: u64 = runs.iter().map(|r| r.wall_nanos).sum();
    // k²/2 racks × k/2 hosts; the paper's classic Fat-Tree sizing
    let hosts = pods * pods * pods / 4;
    ConfigResult {
        pods,
        hosts,
        vms: (hosts as f64 * 2.5) as usize,
        rounds: total_rounds,
        migrations,
        wall_nanos,
        peak_rss_kb: peak_rss_kb(),
    }
}

fn main() {
    let mut baseline = false;
    let mut check_mode = false;
    let mut rounds = 6usize;
    let mut seed = 1u64;
    let mut out = PathBuf::from("BENCH_fabric.json");
    let mut against = PathBuf::from("BENCH_fabric.json");
    let mut tolerance = 15.0f64;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--baseline" => baseline = true,
            "--check" => check_mode = true,
            "--rounds" => {
                rounds = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--rounds needs an integer"))
            }
            "--seed" => {
                seed = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"))
            }
            "--out" => {
                out = PathBuf::from(argv.next().unwrap_or_else(|| die("--out needs a path")))
            }
            "--against" => {
                against =
                    PathBuf::from(argv.next().unwrap_or_else(|| die("--against needs a path")))
            }
            "--tolerance" => {
                tolerance = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--tolerance needs a number"))
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    if check_mode {
        std::process::exit(check(&against, tolerance, rounds, seed));
    }
    if !baseline {
        die("nothing to do: pass --baseline or --check");
    }

    let mut configs = Vec::new();
    for pods in [8usize, 16] {
        let r = run_config(pods, rounds, seed);
        let secs = r.wall_nanos as f64 / 1e9;
        println!(
            "k={}: {} hosts, {} rounds in {:.2}s ({:.1} rounds/s, {} migrations, {:.1} migrations/s, peak RSS {} kB)",
            r.pods,
            r.hosts,
            r.rounds,
            secs,
            r.rounds as f64 / secs,
            r.migrations,
            r.migrations as f64 / secs,
            r.peak_rss_kb
        );
        configs.push(r);
    }

    let mut body = String::with_capacity(1024);
    body.push_str("{\n");
    body.push_str("  \"bench\": \"fabric_baseline\",\n");
    body.push_str(
        "  \"cmd\": \"cargo run --release -p sheriff-bench --bin bench -- --baseline\",\n",
    );
    body.push_str(&format!("  \"rounds_per_config\": {rounds},\n"));
    body.push_str(&format!("  \"seed\": {seed},\n"));
    body.push_str("  \"configs\": [\n");
    for (i, r) in configs.iter().enumerate() {
        let secs = r.wall_nanos as f64 / 1e9;
        body.push_str("    {\n");
        body.push_str(&format!("      \"topology\": \"fat_tree_{}\",\n", r.pods));
        body.push_str(&format!("      \"k\": {},\n", r.pods));
        body.push_str(&format!("      \"hosts\": {},\n", r.hosts));
        body.push_str(&format!("      \"vms\": {},\n", r.vms));
        body.push_str(&format!("      \"rounds\": {},\n", r.rounds));
        body.push_str(&format!(
            "      \"wall_ms\": {:.0},\n",
            r.wall_nanos as f64 / 1e6
        ));
        body.push_str(&format!(
            "      \"rounds_per_sec\": {:.2},\n",
            r.rounds as f64 / secs
        ));
        body.push_str(&format!("      \"migrations\": {},\n", r.migrations));
        body.push_str(&format!(
            "      \"migrations_per_sec\": {:.2},\n",
            r.migrations as f64 / secs
        ));
        body.push_str(&format!("      \"peak_rss_kb\": {}\n", r.peak_rss_kb));
        body.push_str(if i + 1 == configs.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    body.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, body) {
        die(&format!("cannot write {}: {e}", out.display()));
    }
    println!("wrote {}", out.display());
}

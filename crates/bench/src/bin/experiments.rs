//! Experiment harness: regenerates every figure of the paper's
//! evaluation (Sec. VI).
//!
//! ```text
//! experiments <id|all> [--seed N] [--out DIR] [--quick] [--trace]
//!   ids: fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 ratio
//!   --seed N   RNG seed (default 42)
//!   --out DIR  also write each table as JSON (default: results/)
//!   --quick    smaller sweeps for fast smoke runs
//!   --trace    also stream a full-system event trace to DIR/trace.jsonl
//! ```
//!
//! `fig11`/`fig12` share one Fat-Tree sweep and `fig13`/`fig14` one BCube
//! sweep; requesting either id runs the sweep and prints the requested
//! table.

use sheriff_bench::scale::{sweep, Topo, PAPER_SIZES};
use sheriff_bench::{balance, forecast, ratio, traces, Table};
use std::path::PathBuf;

struct Args {
    ids: Vec<String>,
    seed: u64,
    out: PathBuf,
    quick: bool,
    trace: bool,
}

fn parse_args() -> Args {
    let mut ids = Vec::new();
    let mut seed = 42u64;
    let mut out = PathBuf::from("results");
    let mut quick = false;
    let mut trace = false;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--seed" => {
                seed = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                out = PathBuf::from(argv.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--quick" => quick = true,
            "--trace" => trace = true,
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        ids.push("all".to_string());
    }
    Args {
        ids,
        seed,
        out,
        quick,
        trace,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    print_usage();
    std::process::exit(2)
}

fn print_usage() {
    eprintln!(
        "usage: experiments <id|all>... [--seed N] [--out DIR] [--quick] [--trace]\n       ids: fig3..fig14, ratio, prealert, dcell, vl2, qcn"
    );
}

const ALL_IDS: [&str; 17] = [
    "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "fig14", "ratio", "prealert", "dcell", "vl2", "qcn",
];

fn main() {
    let args = parse_args();
    let mut wanted: Vec<String> = Vec::new();
    for id in &args.ids {
        if id == "all" {
            wanted.extend(ALL_IDS.iter().map(|s| s.to_string()));
        } else if ALL_IDS.contains(&id.as_str()) {
            wanted.push(id.clone());
        } else {
            die(&format!("unknown experiment id {id}"));
        }
    }
    wanted.dedup();

    let sizes: Vec<usize> = if args.quick {
        vec![4, 8, 12]
    } else {
        PAPER_SIZES.to_vec()
    };

    // sweeps are shared between figure pairs; compute lazily
    let mut fattree_sweep: Option<(Table, Table)> = None;
    let mut bcube_sweep: Option<(Table, Table)> = None;

    let mut emitted = Vec::new();
    for id in &wanted {
        let table = match id.as_str() {
            "fig3" => traces::fig3(args.seed),
            "fig4" => traces::fig4(args.seed),
            "fig5" => traces::fig5(args.seed),
            "fig6" => forecast::fig6(args.seed)
                .unwrap_or_else(|e| die(&format!("fig6: ARIMA fit failed: {e}"))),
            "fig7" => forecast::fig7(args.seed)
                .unwrap_or_else(|e| die(&format!("fig7: ARIMA fit failed: {e}"))),
            "fig8" => forecast::fig8(args.seed),
            "fig9" => balance::fig9(args.seed),
            "fig10" => balance::fig10(args.seed),
            "dcell" => balance::dcell_balance(args.seed),
            "vl2" => balance::vl2_balance(args.seed),
            "qcn" => {
                let steps = if args.quick { 40 } else { 80 };
                sheriff_bench::congestion_exp::qcn_experiment(steps, args.seed)
            }
            "fig11" | "fig12" => {
                let pair =
                    fattree_sweep.get_or_insert_with(|| sweep(Topo::FatTree, &sizes, args.seed));
                if id == "fig11" {
                    pair.0.clone()
                } else {
                    pair.1.clone()
                }
            }
            "fig13" | "fig14" => {
                let pair = bcube_sweep.get_or_insert_with(|| sweep(Topo::BCube, &sizes, args.seed));
                if id == "fig13" {
                    pair.0.clone()
                } else {
                    pair.1.clone()
                }
            }
            "ratio" => {
                let (trials, max_p) = if args.quick { (4, 2) } else { (12, 4) };
                ratio::ratio_experiment(trials, max_p, args.seed)
            }
            "prealert" => {
                let trials = if args.quick { 3 } else { 12 };
                sheriff_bench::prealert::prealert_experiment(trials, args.seed)
            }
            _ => unreachable!("validated above"),
        };
        // raw trace/forecast tables are long; print their summaries only
        let long = table.rows.len() > 40;
        if long {
            let mut short = table.clone();
            short.rows.truncate(8);
            let mut rendered = short.render();
            rendered.push_str(&format!(
                "  … ({} rows total, full data in JSON)\n",
                table.rows.len()
            ));
            println!("{rendered}");
        } else {
            println!("{}", table.render());
        }
        if let Err(e) = table.write_json(&args.out) {
            eprintln!(
                "warning: could not write {}/{}.json: {e}",
                args.out.display(),
                table.id
            );
        }
        emitted.push(table.id.clone());
    }
    println!(
        "wrote {} result file(s) to {}/: {}",
        emitted.len(),
        args.out.display(),
        emitted.join(", ")
    );

    if args.trace {
        let steps = if args.quick { 20 } else { 60 };
        match sheriff_bench::obs_trace::trace_run(&args.out, args.seed, steps) {
            Ok(events) => println!(
                "streamed {events} events over {steps} rounds to {}/trace.jsonl",
                args.out.display()
            ),
            Err(e) => eprintln!("warning: trace run failed: {e}"),
        }
    }
}

//! Ablation harness for the design choices documented in DESIGN.md §4.
//!
//! ```text
//! ablations [all|priority|matching|pswap|selector|scope] [--seed N] [--out DIR]
//! ```

use sheriff_bench::ablation;
use std::path::PathBuf;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: ablations [all|priority|matching|pswap|selector|scope] [--seed N] [--out DIR]"
    );
    std::process::exit(2)
}

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut seed = 42u64;
    let mut out = PathBuf::from("results");
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--seed" => {
                seed = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"))
            }
            "--out" => {
                out = PathBuf::from(argv.next().unwrap_or_else(|| die("--out needs a path")))
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = ["priority", "matching", "pswap", "selector", "scope"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    for id in &ids {
        let table = match id.as_str() {
            "priority" => ablation::ablation_priority(12, seed),
            "matching" => ablation::ablation_matching(seed),
            "pswap" => ablation::ablation_pswap(8, seed),
            "selector" => ablation::ablation_selector(seed),
            "scope" => ablation::ablation_scope(seed),
            other => {
                eprintln!("unknown ablation {other}");
                std::process::exit(2);
            }
        };
        println!("{}", table.render());
        if let Err(e) = table.write_json(&out) {
            eprintln!("warning: could not write JSON: {e}");
        }
    }
}

//! # sheriff-bench
//!
//! Experiment harness regenerating every figure of the paper's evaluation
//! (Sec. VI): the raw traces (Fig. 3–5), the forecasting study
//! (Fig. 6–8), the balance trajectories (Fig. 9/10), the APP-vs-OPT scale
//! sweeps (Fig. 11–14), and the approximation-ratio check (Sec. VI-C).
//! Run them with `cargo run --release -p sheriff-bench --bin experiments`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod balance;
pub mod congestion_exp;
pub mod forecast;
pub mod obs_trace;
pub mod prealert;
pub mod ratio;
pub mod report;
pub mod scale;
pub mod traces;

pub use report::Table;

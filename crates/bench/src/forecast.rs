//! Fig. 6–8: prediction accuracy of ARIMA, NARNET, and the combined
//! (dynamic-selection) model.
//!
//! * Fig. 6 — ARIMA(1,1,1), 50 % train / 50 % test on the weekly traffic
//!   trace, one-step-ahead predictions and bias.
//! * Fig. 7 — NARNET with 20 hidden neurons, 70 % train / 30 % test, on a
//!   nonlinear series where linear models fail.
//! * Fig. 8 — the rolling-MSE selector over an {ARIMA×2, NARNET×2} pool
//!   on mixed data; its MSE should undercut each single model.

use crate::report::Table;
use timeseries::arima::{ArimaModel, ArimaSpec, FitError};
use timeseries::generator::{nonlinear_trace, weekly_traffic_trace, TraceConfig};
use timeseries::metrics::{mae, mse};
use timeseries::narnet::{Narnet, NarnetConfig};
use timeseries::selector::{DynamicSelector, Predictor};

/// Fig. 6 — ARIMA on the weekly traffic trace.
///
/// Errors if the generated trace is too short or degenerate for the
/// ARIMA fit — a seed-dependent condition the CLI reports instead of
/// panicking on.
pub fn fig6(seed: u64) -> Result<Table, FitError> {
    let cfg = TraceConfig {
        len: 7 * 72,
        samples_per_day: 72,
        seed,
    };
    let y = weekly_traffic_trace(&cfg);
    let split = y.len() / 2;
    let model = ArimaModel::fit(&y[..split], ArimaSpec::new(1, 1, 1))?;

    // in-sample one-step (training output) and out-of-sample (test output)
    let warmup = model.spec.d + 5;
    let train_pred = model.rolling_one_step(&y[..split], warmup);
    let train_actual = &y[warmup..split];
    let test_pred = model.rolling_one_step(&y, split);
    let test_actual = &y[split..];

    let mut t = Table::new(
        "fig6",
        "ARIMA(1,1,1) predicting switch traffic (train 50% / test 50%)",
        &["t", "actual", "predicted", "bias"],
    );
    for (i, (p, a)) in test_pred.iter().zip(test_actual).enumerate() {
        t.push(vec![(split + i) as f64, *a, *p, p - a]);
    }
    let train_mse = mse(&train_pred, train_actual);
    let test_mse = mse(&test_pred, test_actual);
    t.note(format!(
        "train MSE = {train_mse:.3}, test MSE = {test_mse:.3}"
    ));
    t.note(format!(
        "test MAE = {:.3} on series with std {:.3}",
        mae(&test_pred, test_actual),
        timeseries::stats::variance(test_actual).sqrt()
    ));
    // naive (last-value) baseline for context
    let naive: Vec<f64> = (split..y.len()).map(|i| y[i - 1]).collect();
    t.note(format!(
        "naive last-value test MSE = {:.3} (ARIMA should beat this)",
        mse(&naive, test_actual)
    ));
    Ok(t)
}

/// Standard NARNET config used by the figure experiments (20 hidden
/// neurons per the paper).
pub fn paper_narnet(seed: u64) -> NarnetConfig {
    NarnetConfig {
        lags: 8,
        hidden: 20,
        epochs: 300,
        patience: 25,
        seed,
        ..NarnetConfig::default()
    }
}

/// Fig. 7 — NARNET on a nonlinear series (70 % train / 30 % test).
///
/// Errors if the ARIMA comparator cannot be fit on the generated
/// series.
pub fn fig7(seed: u64) -> Result<Table, FitError> {
    let y = nonlinear_trace(900, seed);
    let split = y.len() * 7 / 10;
    let nn = Narnet::fit(&y[..split], paper_narnet(seed));
    let preds = nn.rolling_one_step(&y, split);
    let actual = &y[split..];

    let mut t = Table::new(
        "fig7",
        "NARNET (20 hidden) predicting a nonlinear series (train 70% / test 30%)",
        &["t", "actual", "predicted", "bias"],
    );
    for (i, (p, a)) in preds.iter().zip(actual).enumerate() {
        t.push(vec![(split + i) as f64, *a, *p, p - a]);
    }
    let nn_mse = mse(&preds, actual);
    t.note(format!("NARNET test MSE = {nn_mse:.5}"));
    // the linear comparator the paper motivates NARNET against
    let ar = ArimaModel::fit(&y[..split], ArimaSpec::new(2, 0, 1))?;
    let ar_preds = ar.rolling_one_step(&y, split);
    let ar_mse = mse(&ar_preds, actual);
    t.note(format!(
        "ARIMA(2,0,1) on the same nonlinear data: test MSE = {ar_mse:.5} (NARNET should win)"
    ));
    Ok(t)
}

/// Build the four-model pool the paper describes (two ARIMA, two NARNET).
pub fn paper_pool(train: &[f64], seed: u64) -> Vec<Predictor> {
    let mut pool = Vec::new();
    for spec in [ArimaSpec::new(1, 1, 1), ArimaSpec::new(2, 0, 2)] {
        if let Ok(m) = ArimaModel::fit(train, spec) {
            pool.push(Predictor::Arima(m));
        }
    }
    for (lags, hidden) in [(6usize, 12usize), (10, 20)] {
        pool.push(Predictor::Narnet(Narnet::fit(
            train,
            NarnetConfig {
                lags,
                hidden,
                epochs: 250,
                patience: 25,
                seed: seed ^ (lags as u64),
                ..NarnetConfig::default()
            },
        )));
    }
    pool
}

/// A series mixing a linear periodic regime with a nonlinear regime so
/// that neither model family wins everywhere.
pub fn mixed_series(len: usize, seed: u64) -> Vec<f64> {
    let cfg = TraceConfig {
        len: len / 2,
        samples_per_day: 36,
        seed,
    };
    let mut y = weekly_traffic_trace(&cfg);
    // rescale the nonlinear half into the traffic range and append
    let nl = nonlinear_trace(len - y.len(), seed);
    let base = y.last().copied().unwrap_or(0.0);
    y.extend(nl.iter().map(|v| base + 25.0 * v));
    y
}

/// Fig. 8 — the combined model on mixed data.
pub fn fig8(seed: u64) -> Table {
    let y = mixed_series(900, seed);
    let split = y.len() / 2;
    let pool = paper_pool(&y[..split], seed);
    let labels: Vec<String> = pool.iter().map(Predictor::label).collect();

    // individual model errors
    let singles: Vec<f64> = pool
        .iter()
        .map(|m| {
            let preds: Vec<f64> = (split..y.len()).map(|t| m.predict_next(&y[..t])).collect();
            mse(&preds, &y[split..])
        })
        .collect();

    let mut sel = DynamicSelector::new(pool, 20);
    let (preds, used) = sel.run(&y, split);
    let combined = mse(&preds, &y[split..]);

    let mut t = Table::new(
        "fig8",
        "Combined (dynamic-selection) model on mixed linear+nonlinear data",
        &["t", "actual", "predicted", "model_used"],
    );
    for (i, (p, u)) in preds.iter().zip(&used).enumerate() {
        t.push(vec![(split + i) as f64, y[split + i], *p, *u as f64]);
    }
    for (label, m) in labels.iter().zip(&singles) {
        t.note(format!("{label} alone: test MSE = {m:.3}"));
    }
    let best_single = singles.iter().cloned().fold(f64::INFINITY, f64::min);
    t.note(format!(
        "combined model: test MSE = {combined:.3} (best single = {best_single:.3})"
    ));
    let switches = used.windows(2).filter(|w| w[0] != w[1]).count();
    t.note(format!("selector switched models {switches} times"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_arima_beats_naive() {
        let t = fig6(1).expect("fits");
        let test_mse: f64 = parse_note_value(&t.notes[0], "test MSE = ");
        let naive: f64 = parse_note_value(&t.notes[2], "test MSE = ");
        assert!(test_mse < naive, "ARIMA {test_mse} vs naive {naive}");
    }

    #[test]
    fn fig7_narnet_beats_linear_on_nonlinear_data() {
        let t = fig7(1).expect("fits");
        let nn: f64 = parse_note_value(&t.notes[0], "MSE = ");
        let ar: f64 = parse_note_value(&t.notes[1], "MSE = ");
        assert!(nn < ar, "NARNET {nn} vs ARIMA {ar}");
    }

    #[test]
    fn fig8_combined_close_to_best_single() {
        let t = fig8(1);
        let last = t.notes.iter().rev().nth(1).unwrap();
        let combined: f64 = parse_note_value(last, "test MSE = ");
        let best: f64 = parse_note_value(last, "best single = ");
        assert!(
            combined <= best * 1.25,
            "combined {combined} should be competitive with best single {best}"
        );
    }

    fn parse_note_value(note: &str, key: &str) -> f64 {
        let start = note.find(key).expect("key present") + key.len();
        let rest = &note[start..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(rest.len());
        rest[..end].parse().expect("number parses")
    }
}

//! Fig. 9/10: workload-percentage standard deviation across all servers
//! over 24 migration rounds, on Fat-Tree and BCube, with 5 % of VMs
//! raising alerts per round (Sec. VI-B).

use crate::report::Table;
use dcn_sim::engine::{Cluster, ClusterConfig};
use dcn_sim::{RackMetric, SimConfig};
use dcn_topology::bcube::{self, BCubeConfig};
use dcn_topology::dcell::{self, DCellConfig};
use dcn_topology::fattree::{self, FatTreeConfig};
use dcn_topology::vl2::{self, Vl2Config};
use sheriff_core::Sheriff;

/// The cluster population used by the balance experiments: scattered
/// hotspots (skew 4) so round 0 shows the paper's ~45 % imbalance scale.
pub fn balance_cluster_config(seed: u64) -> ClusterConfig {
    ClusterConfig {
        vms_per_host: 2.5,
        skew: 4.0,
        seed,
        ..ClusterConfig::default()
    }
}

fn run_balance(id: &str, title: &str, cluster: &mut Cluster, rounds: usize) -> Table {
    let metric = RackMetric::build(&cluster.dcn, &cluster.sim);
    let sheriff = Sheriff::new(cluster);
    let (traj, plan) = sheriff.balance_trajectory(cluster, &metric, 0.05, rounds);
    let mut t = Table::new(id, title, &["round", "stddev_pct"]);
    for (i, v) in traj.iter().enumerate() {
        t.push(vec![i as f64, *v]);
    }
    let drop = (traj[0] - traj[rounds]) / traj[0] * 100.0;
    t.note(format!(
        "std-dev {:.1}% -> {:.1}% over {rounds} rounds ({drop:.0}% drop); {} migrations, total cost {:.0}",
        traj[0],
        traj[rounds],
        plan.moves.len(),
        plan.total_cost
    ));
    t
}

/// Fig. 9 — Sheriff on an 8-pod Fat-Tree, 24 migration rounds.
pub fn fig9(seed: u64) -> Table {
    let dcn = fattree::build(&FatTreeConfig::paper(8));
    let mut cluster = Cluster::build(dcn, &balance_cluster_config(seed), SimConfig::paper());
    run_balance(
        "fig9",
        "Sheriff on Fat-Tree: workload std-dev vs migration round",
        &mut cluster,
        24,
    )
}

/// Fig. 10 — Sheriff on BCube(8, 1), 24 migration rounds.
pub fn fig10(seed: u64) -> Table {
    let dcn = bcube::build(&BCubeConfig::paper(8));
    let mut cluster = Cluster::build(dcn, &balance_cluster_config(seed), SimConfig::paper());
    run_balance(
        "fig10",
        "Sheriff on BCube: workload std-dev vs migration round",
        &mut cluster,
        24,
    )
}

/// Extension: Sheriff on DCell(4, 1) — the paper claims the design
/// "can be easily implemented in other DCN topologies" (Sec. II-A); this
/// regenerates the Fig. 9/10 protocol on a third, recursively-defined
/// topology.
pub fn dcell_balance(seed: u64) -> Table {
    let dcn = dcell::build(&DCellConfig {
        hosts_per_rack: 2,
        ..DCellConfig::paper(4, 1)
    });
    let mut cluster = Cluster::build(dcn, &balance_cluster_config(seed), SimConfig::paper());
    run_balance(
        "dcell",
        "Sheriff on DCell(4,1): workload std-dev vs migration round (extension)",
        &mut cluster,
        24,
    )
}

/// Extension: Sheriff on VL2(D_A=8, D_I=8) — the Clos fabric of the
/// paper's ref. \[3\], fourth topology family.
pub fn vl2_balance(seed: u64) -> Table {
    let dcn = vl2::build(&Vl2Config::paper(8, 8));
    let mut cluster = Cluster::build(dcn, &balance_cluster_config(seed), SimConfig::paper());
    run_balance(
        "vl2",
        "Sheriff on VL2: workload std-dev vs migration round (extension)",
        &mut cluster,
        24,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sheriff_core::Series;

    #[test]
    fn fig9_stddev_declines_substantially() {
        let t = fig9(1);
        assert_eq!(t.rows.len(), 25);
        let y: Vec<f64> = t.rows.iter().map(|r| r[1]).collect();
        let s = Series {
            label: "fig9".into(),
            x: vec![],
            y,
        };
        assert!(s.total_drop() > 0.35, "drop = {}", s.total_drop());
        assert!(s.is_decreasing(1.0), "should be near-monotone");
    }

    #[test]
    fn dcell_extension_balances_too() {
        let t = dcell_balance(1);
        let y: Vec<f64> = t.rows.iter().map(|r| r[1]).collect();
        assert!(
            *y.last().unwrap() < y[0] * 0.8,
            "DCell should balance: {y:?}"
        );
    }

    #[test]
    fn vl2_extension_balances_too() {
        let t = vl2_balance(1);
        let y: Vec<f64> = t.rows.iter().map(|r| r[1]).collect();
        assert!(*y.last().unwrap() < y[0] * 0.8, "VL2 should balance: {y:?}");
    }

    #[test]
    fn fig10_stddev_declines_substantially() {
        let t = fig10(1);
        let y: Vec<f64> = t.rows.iter().map(|r| r[1]).collect();
        let first = y[0];
        let last = *y.last().unwrap();
        assert!(last < first * 0.7, "{first} -> {last}");
    }
}

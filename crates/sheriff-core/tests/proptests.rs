//! Property-based tests over the management algorithms.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sheriff_core::kmedian::{exact_optimal, local_search, local_search_from, KMedianInstance};
use sheriff_core::matching::{min_cost_assignment_padded, FORBIDDEN};

fn metric_instance(seed: u64, clients: usize, facilities: usize, k: usize) -> KMedianInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let cx: Vec<(f64, f64)> = (0..clients)
        .map(|_| (rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
        .collect();
    let fx: Vec<(f64, f64)> = (0..facilities)
        .map(|_| (rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
        .collect();
    let cost = cx
        .iter()
        .map(|c| {
            fx.iter()
                .map(|f| ((c.0 - f.0).powi(2) + (c.1 - f.1).powi(2)).sqrt())
                .collect()
        })
        .collect();
    KMedianInstance::new(cost, k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Local search never beats the exact optimum and always respects the
    /// 3 + 2/p bound, from any random start.
    #[test]
    fn local_search_bounded_by_theory(
        seed in 0u64..300,
        clients in 4usize..10,
        facilities in 4usize..8,
        p in 1usize..3,
    ) {
        let k = facilities / 2;
        prop_assume!(k >= 1);
        let inst = metric_instance(seed, clients, facilities, k);
        let opt = exact_optimal(&inst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00);
        let mut init: Vec<usize> = (0..facilities).collect();
        for i in (1..facilities).rev() {
            init.swap(i, rng.gen_range(0..=i));
        }
        init.truncate(k);
        let ls = local_search_from(&inst, init, p, 10_000);
        prop_assert!(ls.cost >= opt.cost - 1e-9, "beat the optimum?!");
        let bound = 3.0 + 2.0 / p as f64;
        prop_assert!(
            ls.cost <= bound * opt.cost + 1e-9,
            "ratio {} over bound {bound}",
            ls.cost / opt.cost.max(1e-12)
        );
        // a local optimum has no improving 1-swap: re-running from it is a fixpoint
        let again = local_search_from(&inst, ls.open.clone(), 1, 10_000);
        prop_assert!(again.cost <= ls.cost + 1e-9);
    }

    /// The greedy-started local search is deterministic and no worse than
    /// its own greedy initialisation.
    #[test]
    fn local_search_improves_on_greedy(seed in 0u64..200) {
        let inst = metric_instance(seed, 10, 7, 3);
        let greedy = sheriff_core::kmedian::greedy_init(&inst);
        let greedy_cost = inst.solution_cost(&greedy);
        let ls = local_search(&inst, 2, 1000);
        prop_assert!(ls.cost <= greedy_cost + 1e-9);
        let ls2 = local_search(&inst, 2, 1000);
        prop_assert_eq!(ls.open, ls2.open);
    }

    /// Padded matching: every row assigned at most once, columns unique,
    /// and the assignment cost is minimal versus 200 random permutations
    /// (a cheap lower-confidence optimality check on top of the exact
    /// brute-force test in the unit suite).
    #[test]
    fn matching_beats_random_assignments(
        seed in 0u64..300,
        rows in 1usize..6,
        cols in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cost: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..cols).map(|_| {
                if rng.gen_bool(0.15) { FORBIDDEN } else { rng.gen_range(0.0..50.0) }
            }).collect())
            .collect();
        let (assign, total) = min_cost_assignment_padded(&cost);
        // validity
        let mut used = std::collections::HashSet::new();
        for (i, a) in assign.iter().enumerate() {
            if let Some(j) = a {
                prop_assert!(used.insert(*j));
                prop_assert!(cost[i][*j] < FORBIDDEN / 2.0);
            }
        }
        // sampled optimality: no random valid assignment does better
        for _ in 0..200 {
            let mut colperm: Vec<usize> = (0..cols).collect();
            for i in (1..cols).rev() {
                colperm.swap(i, rng.gen_range(0..=i));
            }
            let mut t = 0.0;
            let mut assigned = 0usize;
            for (i, &j) in colperm.iter().take(rows).enumerate() {
                if cost[i][j] < FORBIDDEN / 2.0 {
                    t += cost[i][j];
                    assigned += 1;
                }
            }
            let matched = assign.iter().filter(|a| a.is_some()).count();
            // only compare samples that match at least as many pairs
            if assigned >= matched {
                prop_assert!(total <= t + 1e-9, "random beat hungarian: {t} < {total}");
            }
        }
    }
}

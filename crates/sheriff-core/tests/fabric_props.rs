//! Property-based tests for the message-passing shim fabric: under *any*
//! seeded combination of channel faults (loss, duplication, reordering,
//! delay) and shim crashes, a fabric round must terminate, never exceed
//! host capacity (Eqn. 8), never co-locate dependent VMs (Eqn. 7), and
//! apply every ACKed migration exactly once.

use dcn_sim::engine::{Cluster, ClusterConfig};
use dcn_sim::{ChannelFaults, RackMetric, SimConfig};
use dcn_topology::fattree::{self, FatTreeConfig};
use dcn_topology::HostId;
use proptest::prelude::*;
use sheriff_core::{CrashWindow, FabricConfig, FabricRuntime, RunCtx, Runtime};
use sheriff_obs::NullSink;

fn small_cluster(seed: u64) -> Cluster {
    let dcn = fattree::build(&FatTreeConfig::paper(4));
    Cluster::build(
        dcn,
        &ClusterConfig {
            vms_per_host: 2.5,
            skew: 3.0,
            seed,
            ..ClusterConfig::default()
        },
        SimConfig::paper(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Safety under arbitrary fault mixes: capacity and dependency
    /// invariants hold, the round terminates, and replaying the ACKed
    /// moves from the initial placement reproduces the final placement —
    /// i.e. each ACK was applied exactly once, despite duplicates,
    /// retransmissions and losses.
    #[test]
    fn fabric_round_is_safe_under_any_faults(
        cluster_seed in 0u64..6,
        net_seed in 0u64..1000,
        drop in 0.0f64..0.35,
        duplicate in 0.0f64..0.35,
        reorder in 0.0f64..0.35,
        delay_spread in 0u64..3,
        crash_first in any::<bool>(),
        crash_at in 0u64..24,
        recover_delay in 0u64..32,
    ) {
        let mut c = small_cluster(cluster_seed);
        let initial = c.placement.clone();
        let metric = RackMetric::build(&c.dcn, &c.sim);
        let alerts = c.fraction_alerts(0.15, 0);
        prop_assume!(!alerts.is_empty());
        let vals: Vec<f64> = c
            .placement
            .vm_ids()
            .map(|vm| c.placement.utilization(c.placement.host_of(vm)))
            .collect();

        // crash_first now exercises mid-round crashes too: crash_at == 0
        // with no recovery is the old whole-round semantics, anything else
        // is a timed window; recover_delay == 0 means the shim stays down
        let crashed = if crash_first {
            vec![CrashWindow {
                rack: alerts[0].rack,
                crash_at,
                recover_at: (recover_delay > 0).then(|| crash_at + recover_delay),
            }]
        } else {
            Vec::new()
        };
        let cfg = FabricConfig {
            faults: ChannelFaults {
                drop,
                duplicate,
                reorder,
                delay_min: 1,
                delay_max: 1 + delay_spread,
            },
            seed: net_seed,
            crashed,
            ..FabricConfig::default()
        };
        let report = FabricRuntime::with_config(cfg.clone()).step(&mut RunCtx {
            cluster: &mut c,
            metric: &metric,
            alerts: &alerts,
            alert_values: &vals,
            sink: &mut NullSink,
        });

        // termination: bounded rounds x bounded retries x bounded backoff
        prop_assert!(report.ticks <= cfg.max_ticks);

        // Eqn. 8: no host over capacity, ever
        for h in 0..c.placement.host_count() {
            let h = HostId::from_index(h);
            prop_assert!(
                c.placement.used_capacity(h) <= c.placement.host_capacity(h) + 1e-9,
                "host {h} over capacity"
            );
        }

        // Eqn. 7: no dependent pair co-located
        for vm in c.placement.vm_ids() {
            let host = c.placement.host_of(vm);
            for &other in c.placement.vms_on(host) {
                prop_assert!(
                    other == vm || !c.deps.dependent(vm, other),
                    "dependent VMs {vm}/{other} share {host}"
                );
            }
        }

        // exactly-once: chaining the recorded moves from the initial
        // placement lands exactly on the final one (order-insensitive:
        // each VM migrates at most once per round)
        let mut loc: std::collections::HashMap<_, _> =
            c.placement.vm_ids().map(|vm| (vm, initial.host_of(vm))).collect();
        for m in &report.plan.moves {
            prop_assert_eq!(loc[&m.vm], m.from, "stale or doubled move for {}", m.vm);
            loc.insert(m.vm, m.to);
        }
        for vm in c.placement.vm_ids() {
            prop_assert_eq!(loc[&vm], c.placement.host_of(vm));
        }

        // accounting sanity
        let sum: f64 = report.plan.moves.iter().map(|m| m.cost).sum();
        prop_assert!((report.plan.total_cost - sum).abs() < 1e-9);
        prop_assert!(report.resends <= report.timeouts);

        // the always-on auditor agrees: nothing lost, duplicated, over
        // capacity, co-located, landed offline, or left half-committed
        prop_assert!(report.audit.is_clean(), "{}", report.audit);
        prop_assert_eq!(report.txn_committed + report.txn_aborted, report.txn_prepared,
            "a prepared transaction neither committed nor aborted");
    }
}
